#ifndef HSIS_COMMON_RESULT_H_
#define HSIS_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hsis {

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// This is the library's StatusOr: fallible functions that produce a value
/// return `Result<T>`. Accessing the value of an errored result aborts the
/// process (there are no exceptions), so call sites must check `ok()` first
/// or use `HSIS_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Constructs from a success value.
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs from an error status. Aborts if `status.ok()` — an OK
  /// status carries no value and would leave the result in a bogus state.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      std::cerr << "Result<T> constructed from OK status" << std::endl;
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the error status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Value accessors; abort on error (check `ok()` first).
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result<T> accessed with error: "
                << std::get<Status>(data_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace hsis

/// Evaluates `expr` (a `Result<T>`); on error returns the status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define HSIS_ASSIGN_OR_RETURN(lhs, expr)                        \
  HSIS_ASSIGN_OR_RETURN_IMPL(                                   \
      HSIS_RESULT_CONCAT(_hsis_result_, __LINE__), lhs, expr)

#define HSIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define HSIS_RESULT_CONCAT(a, b) HSIS_RESULT_CONCAT_IMPL(a, b)
#define HSIS_RESULT_CONCAT_IMPL(a, b) a##b

#endif  // HSIS_COMMON_RESULT_H_

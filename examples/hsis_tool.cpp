// hsis_tool — a small command-line front end to the library.
//
//   hsis_tool design <B> <F> [--frequency f | --penalty P]
//       Mechanism design: thresholds and recommendations for the given
//       economics (Observations 2 & 3).
//
//   hsis_tool sweep <figure1|figure2|figure3|figure4> <out.csv>
//       Regenerate one of the paper's figure landscapes as CSV.
//
//   hsis_tool demo
//       Run a miniature audited exchange end to end.
//
// Build & run:  ./build/examples/hsis_tool demo

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "core/honest_sharing_session.h"
#include "core/mechanism_designer.h"
#include "game/report.h"

using namespace hsis;

namespace {

int Usage() {
  std::printf(
      "usage:\n"
      "  hsis_tool design <B> <F> [--frequency f | --penalty P]\n"
      "  hsis_tool sweep <figure1|figure2|figure3|figure4> <out.csv>\n"
      "  hsis_tool demo\n");
  return 2;
}

int RunDesign(int argc, char** argv) {
  if (argc < 4) return Usage();
  double benefit = std::atof(argv[2]);
  double cheat_gain = std::atof(argv[3]);
  Result<core::MechanismDesigner> designer =
      core::MechanismDesigner::Create(benefit, cheat_gain);
  if (!designer.ok()) {
    std::printf("error: %s\n", designer.status().ToString().c_str());
    return 1;
  }
  std::printf("economics: B = %g, F = %g (net temptation %g)\n", benefit,
              cheat_gain, cheat_gain - benefit);
  std::printf("zero-penalty frequency (F-B)/F = %.4f\n",
              designer->ZeroPenaltyFrequency());

  if (argc >= 6 && std::strcmp(argv[4], "--frequency") == 0) {
    double f = std::atof(argv[5]);
    Result<double> p = designer->MinPenalty(f);
    if (!p.ok()) {
      std::printf("error: %s\n", p.status().ToString().c_str());
      return 1;
    }
    std::printf("at f = %.4f: minimum penalty P = %.4f  (device: %s)\n", f,
                *p, game::DeviceEffectivenessName(designer->Classify(f, *p)));
  } else if (argc >= 6 && std::strcmp(argv[4], "--penalty") == 0) {
    double p = std::atof(argv[5]);
    double f = designer->MinFrequency(p);
    std::printf("at P = %.4f: minimum frequency f = %.4f  (device: %s)\n", p,
                f, game::DeviceEffectivenessName(designer->Classify(f, p)));
  } else {
    std::printf("pass --frequency f or --penalty P for a recommendation\n");
  }
  return 0;
}

int RunSweep(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string which = argv[2];
  std::string out_path = argv[3];
  const double kB = 10, kF = 25, kL = 8;

  std::string csv;
  if (which == "figure1") {
    csv = game::FrequencySweepToCsv(
        game::SweepFrequency(kB, kF, kL, 40, 201).value());
  } else if (which == "figure2") {
    csv = game::PenaltySweepToCsv(
        game::SweepPenalty(kB, kF, kL, 0.2, 120, 201).value());
  } else if (which == "figure3") {
    game::TwoPlayerGameParams params;
    params.player1 = {10, 30};
    params.player2 = {6, 20};
    params.loss_to_1 = 4;
    params.loss_to_2 = 9;
    params.audit1 = {0, 20};
    params.audit2 = {0, 15};
    csv = game::AsymmetricGridToCsv(
        game::SweepAsymmetricGrid(params, 41).value());
  } else if (which == "figure4") {
    game::NPlayerHonestyGame::Params params;
    params.n = 8;
    params.benefit = kB;
    params.gain = game::LinearGain(20, 2);
    params.frequency = 0.3;
    params.uniform_loss = 4;
    double top =
        game::NPlayerPenaltyBound(kB, params.gain, 0.3, params.n - 1);
    csv = game::NPlayerBandsToCsv(
        game::SweepNPlayerPenalty(params, top * 1.2, 201).value());
  } else {
    return Usage();
  }
  Status status = WriteFile(out_path, csv);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int RunDemo() {
  core::SessionConfig config;
  config.audit_frequency = 0.5;
  config.penalty = 40;
  config.seed = 1;
  core::HonestSharingSession session =
      std::move(core::HonestSharingSession::Create(config).value());
  session.AddParty("alice");
  session.AddParty("bob");
  session.IssueTuples("alice", {"x", "y", "z"});
  session.IssueTuples("bob", {"y", "z", "w"});

  core::ExchangeResult honest = session.RunExchange("alice", "bob").value();
  std::printf("honest exchange -> %zu common tuples, detections: %d/%d\n",
              honest.a.intersection_size, honest.a.detected,
              honest.b.detected);

  core::CheatPlan cheat;
  cheat.fabricate = {"w"};
  core::ExchangeResult probed =
      session.RunExchange("alice", "bob", cheat, {}).value();
  std::printf("alice probes for 'w' -> hit: %zu, audited: %d, caught: %d, "
              "fine: %.0f\n",
              probed.a.probe_hits, probed.a.audited, probed.a.detected,
              probed.a.penalty_paid);
  std::printf("alice's total fines so far: %.0f\n",
              session.TotalPenalties("alice"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "design") == 0) return RunDesign(argc, argv);
  if (std::strcmp(argv[1], "sweep") == 0) return RunSweep(argc, argv);
  if (std::strcmp(argv[1], "demo") == 0) return RunDemo();
  return Usage();
}

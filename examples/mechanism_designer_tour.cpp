// Mechanism-designer tour: turning the paper's observations into
// operating decisions.
//
// "The above observations provide the game-designer the chance to
//  decide, based on estimations of the players' losses and gains, the
//  minimum checking frequencies or penalty amounts that can guarantee
//  the desired level of honesty in the system."  (Section 4.1)
//
// Build & run:  ./build/examples/mechanism_designer_tour

#include <cstdio>

#include "core/mechanism_designer.h"
#include "game/thresholds.h"

using namespace hsis;

int main() {
  const double kB = 10, kF = 25;
  core::MechanismDesigner designer =
      std::move(core::MechanismDesigner::Create(kB, kF).value());

  std::printf("Economics: B = %.0f (honest benefit), F = %.0f (cheating gain)\n\n",
              kB, kF);

  std::printf("--- Q1: audits are cheap, fines capped. How often must I check? ---\n");
  std::printf("  penalty P   min frequency f*   (Observation 2: (F-B)/(P+F))\n");
  for (double p : {0.0, 10.0, 25.0, 50.0, 100.0, 500.0}) {
    std::printf("  %-11.0f %.4f\n", p, designer.MinFrequency(p));
  }

  std::printf("\n--- Q2: audits are expensive. What fine lets me audit rarely? ---\n");
  std::printf("  frequency f   min penalty P*   (Observation 3: ((1-f)F-B)/f)\n");
  for (double f : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    std::printf("  %-13.2f %.2f\n", f, designer.MinPenalty(f).value());
  }
  std::printf("  Above f = %.2f no penalty is needed at all: frequent checks\n"
              "  alone push the expected cheating gain below B.\n",
              designer.ZeroPenaltyFrequency());

  std::printf("\n--- Q3: each audit costs 100. Cheapest transformative point? ---\n");
  for (double max_penalty : {25.0, 100.0, 1000.0}) {
    core::OperatingPoint point =
        designer.CheapestTransformative(/*audit_cost=*/100, max_penalty)
            .value();
    std::printf("  max fine %-7.0f -> audit %.2f%% of exchanges, expected "
                "audit cost %.2f/round\n",
                max_penalty, 100 * point.frequency,
                point.expected_audit_cost);
  }

  std::printf("\n--- Q4: the consortium is growing. How do penalties scale? ---\n");
  game::GainFunction gain = game::LinearGain(kF, 1.5);
  std::printf("  (gain function F(x) = 25 + 1.5x: each honest peer is one\n"
              "   more victim to exploit)\n");
  std::printf("  members n   min penalty (Proposition 1)\n");
  for (int n : {2, 5, 10, 25, 50, 100}) {
    std::printf("  %-11d %.2f\n", n,
                designer.MinPenaltyNPlayer(n, gain, 0.3).value());
  }

  std::printf("\n--- Q5: classify an arbitrary operating point ---\n");
  struct Point { double f, p; };
  double boundary = game::CriticalFrequency(kB, kF, /*penalty=*/0);
  for (Point pt : {Point{0.1, 10}, Point{0.3, 40}, Point{0.65, 0},
                   Point{boundary, 0}}) {
    std::printf("  f = %.2f, P = %-5.0f -> %s\n", pt.f, pt.p,
                game::DeviceEffectivenessName(designer.Classify(pt.f, pt.p)));
  }
  return 0;
}

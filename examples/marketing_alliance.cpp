// The Rowi & Colie story from Section 3 of the paper, end to end.
//
// Two successful competitors want to jointly market to their common
// customers. We (1) build their game and show why, without enforcement,
// both rationally cheat; (2) add the auditing device at the paper's
// thresholds; (3) run the real system — customer workload, tuple
// generators, sovereign intersection, Bernoulli audits — and compare the
// realized economics of honesty vs cheating.
//
// Build & run:  ./build/examples/marketing_alliance

#include <cstdio>

#include "core/honest_sharing_session.h"
#include "core/mechanism_designer.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"
#include "sim/workload.h"

using namespace hsis;

namespace {

constexpr double kBenefit = 10;    // B: value of joint marketing
constexpr double kCheatGain = 25;  // F: value of stealing private customers
constexpr double kLoss = 8;        // L: damage from the peer's cheating

void PrintEquilibria(const game::NormalFormGame& g, const char* title) {
  std::printf("%s\n%s", title,
              game::FormatPayoffMatrix(g, "Rowi", "Colie").c_str());
  std::printf("Nash equilibria:");
  for (const auto& ne : game::PureNashEquilibria(g)) {
    std::printf(" (%s,%s)", game::ActionName(ne[0]), game::ActionName(ne[1]));
  }
  auto dse = game::DominantStrategyEquilibrium(g);
  if (dse.has_value()) {
    std::printf("   DSE: (%s,%s)", game::ActionName((*dse)[0]),
                game::ActionName((*dse)[1]));
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("=== 1. The dilemma (Table 1: no auditing) ===\n\n");
  game::NormalFormGame no_audit =
      std::move(game::MakeNoAuditGame(kBenefit, kCheatGain, kLoss).value());
  PrintEquilibria(no_audit, "Payoffs (B=10, F=25, L=8):");
  std::printf("Observation 1: (C,C) is the only equilibrium — rational\n"
              "players cheat even though (H,H) would pay both more than\n"
              "(C,C) does (10 vs %.0f).\n\n", kCheatGain - kLoss);

  std::printf("=== 2. Designing the auditing device ===\n\n");
  core::MechanismDesigner designer =
      std::move(core::MechanismDesigner::Create(kBenefit, kCheatGain).value());
  const double f = 0.4;
  const double penalty = designer.MinPenalty(f).value();
  std::printf("At audit frequency f = %.2f the minimum penalty is P = %.2f\n",
              f, penalty);
  std::printf("(Observation 3: P* = ((1-f)F - B)/f = %.2f; zero penalty\n"
              " suffices once f > (F-B)/F = %.2f.)\n\n",
              game::CriticalPenalty(kBenefit, kCheatGain, f),
              designer.ZeroPenaltyFrequency());

  game::NormalFormGame audited = std::move(
      game::MakeSymmetricAuditedGame(kBenefit, kCheatGain, kLoss, f, penalty)
          .value());
  PrintEquilibria(audited, "Payoffs with auditing (Table 2 instance):");

  std::printf("=== 3. Running the real system ===\n\n");
  Rng rng(7);
  sim::TwoFirmWorkload workload =
      sim::MakeTwoFirmWorkload(/*a_private=*/60, /*b_private=*/40,
                               /*common=*/25, rng);

  core::SessionConfig config;
  config.audit_frequency = f;
  config.penalty = penalty;
  config.seed = 11;
  core::HonestSharingSession session =
      std::move(core::HonestSharingSession::Create(config).value());
  session.AddParty("rowi");
  session.AddParty("colie");
  session.IssueTuples("rowi", workload.firm_a);
  session.IssueTuples("colie", workload.firm_b);

  core::ExchangeResult honest = session.RunExchange("rowi", "colie").value();
  std::printf("Honest exchange: both learn the %zu common customers;\n"
              "audits pass (rowi detected=%d, colie detected=%d).\n\n",
              honest.a.intersection_size, honest.a.detected,
              honest.b.detected);

  // Rowi tries the Section 1 attack across many campaigns: probe lists
  // guessing Colie's private customers.
  const int kRounds = 200;
  double cheat_units = 0;  // accumulated in units of the game's payoffs
  int caught = 0;
  size_t stolen = 0;
  for (int i = 0; i < kRounds; ++i) {
    core::CheatPlan plan;
    plan.fabricate = sim::MakeProbeList(workload.b_private, 10, 0.5, rng);
    core::ExchangeResult r =
        session.RunExchange("rowi", "colie", plan, {}).value();
    stolen += r.a.probe_hits;
    caught += r.a.detected;
    cheat_units += r.a.detected ? -penalty : kCheatGain;
  }
  std::printf("Cheating for %d campaigns: probed 10 names each time,\n"
              "stole %zu private customers, but was caught %d times.\n",
              kRounds, stolen, caught);
  std::printf("Average cheating payoff: %.2f per round vs honest %.2f —\n"
              "the device made honesty the better strategy, as designed.\n",
              cheat_units / kRounds, kBenefit);
  std::printf("Total fines charged to Rowi: %.0f\n",
              session.TotalPenalties("rowi"));
  return 0;
}

// Sweep-service daemon: serves time-bounded shard leases of one
// landscape sweep to pull-based workers over TCP (hsis-sweepd-v1,
// common/sweep_service.h), then merges the drained directory into the
// serial-identical CSV.
//
//   1. Start the daemon (plans the sweep if DIR has no plan yet):
//        sweep_service --out=DIR --sweep=figure1 --shards=8
//                      [--host=A --port=P] [--lease-ms=T] [--max-retries=R]
//                      [--port-file=FILE] [--events=FILE] [--csv=FILE]
//   2. Point any number of workers at it, on any host that shares DIR:
//        sweep_client --connect=HOST:PORT --out=DIR [--threads=N]
//   3. The daemon exits 0 once every shard is committed and the merged
//      CSV — byte-identical to the serial run — is written.
//
// Restarting the daemon over the same DIR resumes: committed shards
// are never recomputed. --port defaults to 0 (kernel-assigned); the
// bound port is printed and written to --port-file (default
// DIR/sweepd.port) for scripted handshakes. Every lease-table state
// transition is appended to --events (default DIR/events.log). See
// docs/SWEEP_SERVICE.md for the operator runbook and wire contract.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "common/file.h"
#include "common/shard.h"
#include "common/sweep_service.h"
#include "core/campaign_shards.h"
#include "game/landscape_shards.h"

using namespace hsis;
using namespace hsis::game;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sweep_service --out=DIR [--sweep=NAME --shards=K]\n"
      "                [--host=A] [--port=P] [--lease-ms=T]\n"
      "                [--max-retries=R] [--retry-ms=T]\n"
      "                [--port-file=FILE] [--events=FILE] [--csv=FILE]\n"
      "                [--linger-ms=T]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

// Serializes event lines from the daemon's service threads onto one
// append-only log (and stdout), flushed per line so a SIGKILLed daemon
// loses at most the line in flight.
class EventLog {
 public:
  ~EventLog() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Open(const std::string& path) {
    file_ = std::fopen(path.c_str(), "a");
    if (file_ == nullptr) {
      return Status::Internal("cannot open event log " + path);
    }
    return Status::OK();
  }

  void Write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    std::printf("[sweepd] %s\n", line.c_str());
    std::fflush(stdout);
    if (file_ != nullptr) {
      std::fprintf(file_, "%s\n", line.c_str());
      std::fflush(file_);
    }
  }

 private:
  std::mutex mu_;
  FILE* file_ = nullptr;
};

int PlanIfMissing(const std::string& sweep, int shards,
                  const std::string& out) {
  if (FileExists(common::ShardPlanPath(out))) return 0;
  if (sweep.empty()) {
    std::fprintf(stderr,
                 "no plan in %s and no --sweep to plan one; pass "
                 "--sweep=NAME --shards=K\n",
                 out.c_str());
    return 2;
  }
  auto spec = LandscapeSweepSpec(sweep);
  if (!spec.ok()) return Fail(spec.status());
  auto plan = common::ShardPlan::Create(spec->total, shards);
  if (!plan.ok()) return Fail(plan.status());
  if (Status s = CreateDirectories(out); !s.ok()) return Fail(s);
  if (Status s = common::WriteShardPlan(*spec, *plan, out); !s.ok()) {
    return Fail(s);
  }
  std::printf("planned sweep '%s': %zu indices in %d shards -> %s\n",
              sweep.c_str(), spec->total, shards,
              common::ShardPlanPath(out).c_str());
  return 0;
}

int Merge(const std::string& out, std::string csv_path) {
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  auto merged = common::MergeShards(out, info->sweep);
  if (!merged.ok()) return Fail(merged.status());
  auto header = LandscapeCsvHeader(info->sweep);
  if (!header.ok()) return Fail(header.status());
  if (csv_path.empty()) {
    csv_path = out + "/" + LandscapeCsvFilename(info->sweep).value();
  }
  std::string csv = *header + BytesToString(*merged);
  if (Status s = WriteFile(csv_path, csv); !s.ok()) return Fail(s);
  std::printf("merged %d shards of '%s' -> %s\n", info->shards,
              info->sweep.c_str(), csv_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (Status s = RegisterHeterogeneousDesignSweeps(); !s.ok()) return Fail(s);
  if (Status s = core::RegisterCampaignEnsembleSweep(); !s.ok()) return Fail(s);

  std::string sweep, out, csv, host = "127.0.0.1", port_file, events_path;
  int shards = 1, port = 0, max_retries = 2;
  int64_t lease_ms = 30000, retry_ms = 200, linger_ms = 1000;
  auto parse_int = [](const char* value, int64_t* result) {
    char* end = nullptr;
    *result = std::strtol(value, &end, 10);
    return end != value && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t value = 0;
    if (std::strncmp(arg, "--sweep=", 8) == 0) {
      sweep = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      csv = arg + 6;
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--port-file=", 12) == 0) {
      port_file = arg + 12;
    } else if (std::strncmp(arg, "--events=", 9) == 0) {
      events_path = arg + 9;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = [](Result<int> r) {
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          std::exit(1);
        }
        return *r;
      }(common::ParseShardsValue(arg + 9));
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      if (!parse_int(arg + 7, &value) || value < 0 || value > 65535) {
        return Usage();
      }
      port = static_cast<int>(value);
    } else if (std::strncmp(arg, "--lease-ms=", 11) == 0) {
      if (!parse_int(arg + 11, &value) || value < 1) return Usage();
      lease_ms = value;
    } else if (std::strncmp(arg, "--retry-ms=", 11) == 0) {
      if (!parse_int(arg + 11, &value) || value < 1) return Usage();
      retry_ms = value;
    } else if (std::strncmp(arg, "--linger-ms=", 12) == 0) {
      if (!parse_int(arg + 12, &value) || value < 0) return Usage();
      linger_ms = value;
    } else if (std::strncmp(arg, "--max-retries=", 14) == 0) {
      if (!parse_int(arg + 14, &value) || value < 0) return Usage();
      max_retries = static_cast<int>(value);
    } else {
      return Usage();
    }
  }
  if (out.empty()) return Usage();

  if (int rc = PlanIfMissing(sweep, shards, out); rc != 0) return rc;
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  if (!sweep.empty() && sweep != info->sweep) {
    std::fprintf(stderr,
                 "--sweep=%s contradicts the plan in %s (sweep '%s'); "
                 "clear the directory to start over\n",
                 sweep.c_str(), out.c_str(), info->sweep.c_str());
    return 2;
  }

  EventLog log;
  if (events_path.empty()) events_path = out + "/events.log";
  if (Status s = log.Open(events_path); !s.ok()) return Fail(s);

  common::SweepServiceOptions options;
  options.host = host;
  options.port = port;
  options.lease.lease_ms = lease_ms;
  options.lease.max_attempts = max_retries + 1;
  options.lease.retry_ms = retry_ms;
  options.on_event = [&log](const std::string& line) { log.Write(line); };

  auto service = common::SweepService::Start(*info, out, options);
  if (!service.ok()) return Fail(service.status());
  std::printf("sweepd serving '%s' (%d shards) on %s:%d\n",
              info->sweep.c_str(), info->shards, host.c_str(),
              (*service)->port());
  std::fflush(stdout);
  if (port_file.empty()) port_file = out + "/sweepd.port";
  if (Status s = WriteFile(port_file, std::to_string((*service)->port()));
      !s.ok()) {
    return Fail(s);
  }

  Status done = (*service)->WaitUntilDone();
  if (!done.ok()) {
    // Late pollers still deserve the terminal answer before we vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    (*service)->Stop();
    if (done.code() == StatusCode::kFailedPrecondition) {
      std::printf("sweepd: %s\n", done.message().c_str());
      return 0;  // operator-requested shutdown, not a failure
    }
    return Fail(done);
  }

  common::SweepStatusReply snap = (*service)->Snapshot();
  std::printf(
      "drained '%s': %u shards committed (%u resumed, %u retries, "
      "%u expired leases, %u quarantined)\n",
      snap.sweep.c_str(), snap.committed, snap.resumed, snap.retries,
      snap.expired, snap.quarantined);
  int rc = Merge(out, csv);

  // Keep answering "drained" for stragglers, then shut down.
  std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  (*service)->Stop();
  return rc;
}

// Exports the four figure landscapes as CSV files for plotting —
// plot-ready reproductions of Figures 1–4.
//
// Build & run:  ./build/examples/export_landscapes [--threads=N] [output-dir]
// (default output dir: current directory; --threads=0 uses hardware
// concurrency — the CSVs are bit-identical for every thread count)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "game/report.h"

using namespace hsis;
using namespace hsis::game;

int main(int argc, char** argv) {
  std::string dir = ".";
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      dir = argv[i];
    }
  }
  const double kB = 10, kF = 25, kL = 8;

  struct Artifact {
    std::string filename;
    std::string csv;
  };
  std::vector<Artifact> artifacts;

  // Figure 1: equilibria vs frequency at P = 40.
  artifacts.push_back(
      {"figure1_frequency_sweep.csv",
       FrequencySweepToCsv(SweepFrequency(kB, kF, kL, 40, 201, threads).value())});

  // Figure 2: both panels of equilibria vs penalty.
  artifacts.push_back(
      {"figure2_penalty_sweep_f02.csv",
       PenaltySweepToCsv(SweepPenalty(kB, kF, kL, 0.2, 120, 201, threads).value())});
  artifacts.push_back(
      {"figure2_penalty_sweep_f07.csv",
       PenaltySweepToCsv(SweepPenalty(kB, kF, kL, 0.7, 120, 201, threads).value())});

  // Figure 3: the asymmetric (f1, f2) grid.
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  artifacts.push_back(
      {"figure3_asymmetric_grid.csv",
       AsymmetricGridToCsv(SweepAsymmetricGrid(params, 41, threads).value())});

  // Figure 4: the n-player penalty bands.
  NPlayerHonestyGame::Params nparams;
  nparams.n = 8;
  nparams.benefit = kB;
  nparams.gain = LinearGain(20, 2);
  nparams.frequency = 0.3;
  nparams.uniform_loss = 4;
  double top = NPlayerPenaltyBound(kB, nparams.gain, 0.3, nparams.n - 1);
  artifacts.push_back(
      {"figure4_nplayer_bands.csv",
       NPlayerBandsToCsv(SweepNPlayerPenalty(nparams, top * 1.2, 201, threads).value())});

  for (const Artifact& artifact : artifacts) {
    std::string path = dir + "/" + artifact.filename;
    Status status = WriteFile(path, artifact.csv);
    if (!status.ok()) {
      std::printf("FAILED %s: %s\n", path.c_str(), status.ToString().c_str());
      return 1;
    }
    int rows = 0;
    for (char c : artifact.csv) rows += (c == '\n');
    std::printf("wrote %-38s (%d rows)\n", path.c_str(), rows - 1);
  }
  std::printf("\nEach CSV carries the analytic region, the enumerated\n"
              "equilibria, and the cross-check flag per sample point.\n");
  return 0;
}

// Exports the four figure landscapes as CSV files for plotting —
// plot-ready reproductions of Figures 1–4.
//
// Build & run:  ./build/examples/export_landscapes [--threads=N]
//               [--shards=K] [output-dir]
// (default output dir: current directory; --threads=0 uses hardware
// concurrency — the CSVs are bit-identical for every thread count)
//
// With --shards=K each sweep runs through the full shard lifecycle of
// common/shard.h — plan, K shard runs, validated merge — under
// <output-dir>/shards/<sweep>/, and the merged CSVs are byte-identical
// to the single-process run. Use examples/shard_worker to split the
// same shards across separate processes or machines.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "common/shard.h"
#include "game/landscape_shards.h"

using namespace hsis;
using namespace hsis::game;

namespace {

int ResolveFlag(Result<int> parsed) {
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return *parsed;
}

/// Computes the named sweep's CSV through a K-shard plan/run/merge
/// cycle in `shard_dir`.
Result<std::string> ShardedCsv(const std::string& name, int shards,
                               int threads, const std::string& shard_dir) {
  HSIS_ASSIGN_OR_RETURN(common::ShardSweepSpec spec, LandscapeSweepSpec(name));
  HSIS_ASSIGN_OR_RETURN(common::ShardPlan plan,
                        common::ShardPlan::Create(spec.total, shards));
  HSIS_RETURN_IF_ERROR(CreateDirectories(shard_dir));
  HSIS_RETURN_IF_ERROR(common::WriteShardPlan(spec, plan, shard_dir));
  common::ShardRunner runner(spec, plan);
  for (int k = 0; k < shards; ++k) {
    HSIS_RETURN_IF_ERROR(runner.Run(k, shard_dir, threads));
  }
  HSIS_ASSIGN_OR_RETURN(Bytes merged, common::MergeShards(shard_dir, name));
  HSIS_ASSIGN_OR_RETURN(std::string csv, LandscapeCsvHeader(name));
  csv += BytesToString(merged);
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = ".";
  int threads = 1;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = ResolveFlag(common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = ResolveFlag(common::ParseShardsValue(argv[i] + 9));
    } else {
      dir = argv[i];
    }
  }

  if (Status status = CreateDirectories(dir); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  for (const std::string& name : LandscapeSweepNames()) {
    Result<std::string> csv =
        shards > 1 ? ShardedCsv(name, shards, threads,
                                dir + "/shards/" + name)
                   : LandscapeCsv(name, threads);
    if (!csv.ok()) {
      std::printf("FAILED %s: %s\n", name.c_str(),
                  csv.status().ToString().c_str());
      return 1;
    }
    std::string path = dir + "/" + LandscapeCsvFilename(name).value();
    Status status = WriteFile(path, *csv);
    if (!status.ok()) {
      std::printf("FAILED %s: %s\n", path.c_str(), status.ToString().c_str());
      return 1;
    }
    int rows = 0;
    for (char c : *csv) rows += (c == '\n');
    std::printf("wrote %-38s (%d rows)\n", path.c_str(), rows - 1);
  }
  if (shards > 1) {
    std::printf("\nEach CSV was merged from %d shards (plan + payloads under "
                "%s/shards/<sweep>/)\nand is byte-identical to the "
                "single-process run.\n", shards, dir.c_str());
  }
  std::printf("\nEach CSV carries the analytic region, the enumerated\n"
              "equilibria, and the cross-check flag per sample point.\n");
  return 0;
}

// Exports the four figure landscapes as CSV files for plotting —
// plot-ready reproductions of Figures 1–4.
//
// Build & run:  ./build/examples/export_landscapes [--threads=N]
//               [--shards=K] [--schedule] [--workers=N] [--max-retries=R]
//               [--shard-timeout-ms=T] [output-dir]
// (default output dir: current directory; --threads=0 uses hardware
// concurrency — the CSVs are bit-identical for every thread count)
//
// With --shards=K each sweep runs through the full shard lifecycle of
// common/shard.h — plan, K shard runs, validated merge — under
// <output-dir>/shards/<sweep>/, and the merged CSVs are byte-identical
// to the single-process run. Use examples/shard_worker to split the
// same shards across separate processes or machines.
//
// Adding --schedule hands the K shard runs to the fault-tolerant
// ShardScheduler (common/scheduler.h) on in-process worker threads:
// up to --workers shards run concurrently, failed shards retry up to
// --max-retries times, and shards already committed by an earlier
// (e.g. interrupted) run are skipped. See docs/SHARDING.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "common/scheduler.h"
#include "common/shard.h"
#include "game/landscape_shards.h"

using namespace hsis;
using namespace hsis::game;

namespace {

int ResolveFlag(Result<int> parsed) {
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return *parsed;
}

/// Computes the named sweep's CSV through a K-shard plan/run/merge
/// cycle in `shard_dir`. With `options` set (--schedule), the shard
/// runs go through the fault-tolerant scheduler instead of a serial
/// loop — resuming committed shards and retrying failed ones.
Result<std::string> ShardedCsv(const std::string& name, int shards,
                               int threads, const std::string& shard_dir,
                               const common::ShardScheduleOptions* options) {
  HSIS_ASSIGN_OR_RETURN(common::ShardSweepSpec spec, LandscapeSweepSpec(name));
  HSIS_ASSIGN_OR_RETURN(common::ShardPlan plan,
                        common::ShardPlan::Create(spec.total, shards));
  HSIS_RETURN_IF_ERROR(CreateDirectories(shard_dir));
  HSIS_RETURN_IF_ERROR(common::WriteShardPlan(spec, plan, shard_dir));
  if (options != nullptr) {
    HSIS_ASSIGN_OR_RETURN(common::ShardPlanInfo info,
                          common::ReadShardPlan(shard_dir));
    common::ShardScheduler scheduler(
        info, shard_dir,
        common::MakeRunnerShardExecutor(spec, plan, shard_dir, threads),
        *options);
    HSIS_ASSIGN_OR_RETURN(common::ShardScheduleSummary summary,
                          scheduler.Run());
    if (summary.resumed > 0 || summary.retries > 0) {
      std::printf("  [%s: %d shards, %d resumed, %d retries]\n", name.c_str(),
                  summary.shards, summary.resumed, summary.retries);
    }
  } else {
    common::ShardRunner runner(spec, plan);
    for (int k = 0; k < shards; ++k) {
      HSIS_RETURN_IF_ERROR(runner.Run(k, shard_dir, threads));
    }
  }
  HSIS_ASSIGN_OR_RETURN(Bytes merged, common::MergeShards(shard_dir, name));
  HSIS_ASSIGN_OR_RETURN(std::string csv, LandscapeCsvHeader(name));
  csv += BytesToString(merged);
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = ".";
  int threads = 1;
  int shards = 1;
  bool schedule = false;
  common::ShardScheduleOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = ResolveFlag(common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = ResolveFlag(common::ParseShardsValue(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      schedule = true;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      options.workers = ResolveFlag(common::ParseThreadsValue(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--max-retries=", 14) == 0) {
      char* end = nullptr;
      long retries = std::strtol(argv[i] + 14, &end, 10);
      if (end == argv[i] + 14 || *end != '\0' || retries < 0) {
        std::fprintf(stderr, "bad --max-retries value: %s\n", argv[i] + 14);
        return 2;
      }
      options.max_attempts = static_cast<int>(retries) + 1;
    } else if (std::strncmp(argv[i], "--shard-timeout-ms=", 19) == 0) {
      char* end = nullptr;
      long timeout = std::strtol(argv[i] + 19, &end, 10);
      if (end == argv[i] + 19 || *end != '\0' || timeout < 0) {
        std::fprintf(stderr, "bad --shard-timeout-ms value: %s\n",
                     argv[i] + 19);
        return 2;
      }
      options.shard_timeout_ms = timeout;
    } else {
      dir = argv[i];
    }
  }
  if (schedule && shards <= 1) {
    std::fprintf(stderr, "--schedule needs --shards=K with K > 1\n");
    return 2;
  }

  if (Status status = CreateDirectories(dir); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  for (const std::string& name : LandscapeSweepNames()) {
    Result<std::string> csv =
        shards > 1 ? ShardedCsv(name, shards, threads,
                                dir + "/shards/" + name,
                                schedule ? &options : nullptr)
                   : LandscapeCsv(name, threads);
    if (!csv.ok()) {
      std::printf("FAILED %s: %s\n", name.c_str(),
                  csv.status().ToString().c_str());
      return 1;
    }
    std::string path = dir + "/" + LandscapeCsvFilename(name).value();
    Status status = WriteFile(path, *csv);
    if (!status.ok()) {
      std::printf("FAILED %s: %s\n", path.c_str(), status.ToString().c_str());
      return 1;
    }
    int rows = 0;
    for (char c : *csv) rows += (c == '\n');
    std::printf("wrote %-38s (%d rows)\n", path.c_str(), rows - 1);
  }
  if (shards > 1) {
    std::printf("\nEach CSV was merged from %d shards (plan + payloads under "
                "%s/shards/<sweep>/)\nand is byte-identical to the "
                "single-process run.\n", shards, dir.c_str());
  }
  std::printf("\nEach CSV carries the analytic region, the enumerated\n"
              "equilibria, and the cross-check flag per sample point.\n");
  return 0;
}

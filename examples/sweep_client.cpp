// Lease-pulling worker for the sweep-service daemon (hsis-sweepd-v1,
// common/sweep_service.h): connects to a running `sweep_service`,
// pulls shard leases until the sweep drains, computes each shard with
// the ordinary ShardRunner into the shared results directory, and
// reports completions with the manifest's SHA-256.
//
//   sweep_client --connect=HOST:PORT --out=DIR [--threads=N]
//                [--worker=NAME] [--max-idle-ms=T]
//   sweep_client --connect=HOST:PORT --status
//   sweep_client --connect=HOST:PORT --shutdown
//
// A background thread heartbeats every lease at a third of its
// duration, so slow shards stay alive as long as the worker does; a
// worker that dies mid-lease is reclaimed by the daemon at the lease
// deadline and the shard re-granted. The worker exits 0 when the
// daemon reports the sweep drained — or when the daemon vanishes after
// this worker already spoke to it (the daemon exits shortly after the
// merge; racing stragglers are expected).
//
// Deterministic fault injection for integration drills (mirrors
// shard_worker's kill marker): touching `DIR/kill-client-<k>` makes
// the worker holding a lease on shard k consume the marker, leave a
// partial payload behind, and die by SIGKILL mid-lease.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>

#include "common/file.h"
#include "common/parallel.h"
#include "common/shard.h"
#include "common/sweep_service.h"
#include "core/campaign_shards.h"
#include "game/landscape_shards.h"

using namespace hsis;
using namespace hsis::game;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sweep_client --connect=HOST:PORT --out=DIR [--threads=N]\n"
      "               [--worker=NAME] [--max-idle-ms=T]\n"
      "  sweep_client --connect=HOST:PORT --status\n"
      "  sweep_client --connect=HOST:PORT --shutdown\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

// See the file comment: SIGKILL fault hook for integration drills.
void MaybeDieAtKillMarker(int shard, const std::string& out) {
  const std::string marker = out + "/kill-client-" + std::to_string(shard);
  if (!FileExists(marker)) return;
  (void)std::remove(marker.c_str());
  (void)WriteFile(common::ShardPayloadPath(out, shard), "partial write, no ");
  ::raise(SIGKILL);
}

// Renews one lease at a fixed cadence until released. Failures are
// logged but not fatal: a lost lease only means a duplicate completion
// later, which the daemon resolves idempotently.
class HeartbeatThread {
 public:
  HeartbeatThread(common::SweepServiceClient* client, uint64_t lease_id,
                  int shard, int64_t interval_ms)
      : thread_([=, this] {
          std::unique_lock<std::mutex> lock(mu_);
          for (;;) {
            cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [&] { return done_; });
            if (done_) return;
            lock.unlock();
            auto ack = client->Heartbeat(lease_id, shard);
            if (!ack.ok()) {
              std::fprintf(stderr, "heartbeat for shard %d: %s\n", shard,
                           ack.status().ToString().c_str());
            }
            lock.lock();
          }
        }) {}

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

struct Endpoint {
  std::string host;
  int port = 0;
};

bool ParseEndpoint(const std::string& value, Endpoint* endpoint) {
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  endpoint->host = value.substr(0, colon);
  char* end = nullptr;
  long port = std::strtol(value.c_str() + colon + 1, &end, 10);
  if (end == value.c_str() + colon + 1 || *end != '\0') return false;
  if (port < 1 || port > 65535) return false;
  endpoint->port = static_cast<int>(port);
  return true;
}

int PrintStatus(common::SweepServiceClient* client) {
  auto status = client->QueryStatus();
  if (!status.ok()) return Fail(status.status());
  std::printf(
      "sweep=%s committed=%u/%u leased=%u pending=%u resumed=%u "
      "retries=%u expired=%u quarantined=%u drained=%u\n",
      status->sweep.c_str(), status->committed, status->shards,
      status->leased, status->pending, status->resumed, status->retries,
      status->expired, status->quarantined, status->drained);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (Status s = RegisterHeterogeneousDesignSweeps(); !s.ok()) return Fail(s);
  if (Status s = core::RegisterCampaignEnsembleSweep(); !s.ok()) return Fail(s);

  Endpoint endpoint;
  bool have_endpoint = false, status_mode = false, shutdown_mode = false;
  std::string out, worker;
  int threads = 1;
  int64_t max_idle_ms = 0;
  auto parse_int = [](const char* value, int64_t* result) {
    char* end = nullptr;
    *result = std::strtol(value, &end, 10);
    return end != value && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t value = 0;
    if (std::strncmp(arg, "--connect=", 10) == 0) {
      if (!ParseEndpoint(arg + 10, &endpoint)) return Usage();
      have_endpoint = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--worker=", 9) == 0) {
      worker = arg + 9;
    } else if (std::strcmp(arg, "--status") == 0) {
      status_mode = true;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      shutdown_mode = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      auto parsed = common::ParseThreadsValue(arg + 10);
      if (!parsed.ok()) return Fail(parsed.status());
      threads = *parsed;
    } else if (std::strncmp(arg, "--max-idle-ms=", 14) == 0) {
      if (!parse_int(arg + 14, &value) || value < 0) return Usage();
      max_idle_ms = value;
    } else {
      return Usage();
    }
  }
  if (!have_endpoint) return Usage();
  if (status_mode || shutdown_mode) {
    auto client = common::SweepServiceClient::Connect(endpoint.host,
                                                      endpoint.port);
    if (!client.ok()) return Fail(client.status());
    if (status_mode) return PrintStatus(client->get());
    auto ack = (*client)->RequestShutdown();
    if (!ack.ok()) return Fail(ack.status());
    std::printf("shutdown acknowledged: %u/%u shards committed\n",
                ack->committed, ack->shards);
    return 0;
  }
  if (out.empty()) return Usage();
  if (worker.empty()) {
    char hostname[256] = "worker";
    (void)::gethostname(hostname, sizeof(hostname) - 1);
    worker = std::string(hostname) + ":" + std::to_string(::getpid());
  }

  auto connected = common::SweepServiceClient::Connect(endpoint.host,
                                                       endpoint.port);
  if (!connected.ok()) return Fail(connected.status());
  common::SweepServiceClient* client = connected->get();

  // The grant frames carry the plan identity; cross-check them against
  // the plan manifest in the shared results directory so a worker
  // pointed at the wrong DIR fails fast instead of committing garbage.
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  auto spec = LandscapeSweepSpec(info->sweep);
  if (!spec.ok()) return Fail(spec.status());
  auto plan = common::ShardPlan::Create(info->total, info->shards);
  if (!plan.ok()) return Fail(plan.status());
  common::ShardRunner runner(*spec, *plan);

  bool spoke = false;  // one successful RPC means a vanished daemon is
                       // a drained sweep, not an error
  int64_t idle_ms = 0;
  // Transport-level failures (connection gone, timeouts, framing) all
  // carry the "sweepd " message prefix from common/sweep_service.cc;
  // everything else is a daemon-side answer and keeps its taxonomy.
  auto is_transport = [](const Status& s) {
    return s.message().rfind("sweepd ", 0) == 0;
  };
  auto daemon_gone = [&](const Status& s) {
    if (spoke && is_transport(s)) {
      std::printf("worker %s: daemon gone (%s); assuming drained\n",
                  worker.c_str(), s.ToString().c_str());
      return 0;
    }
    return Fail(s);
  };

  for (;;) {
    auto lease = client->RequestLease(worker);
    if (!lease.ok()) return daemon_gone(lease.status());
    spoke = true;

    if (const auto* none = std::get_if<common::SweepNoWork>(&*lease)) {
      if (none->drained != 0) {
        std::printf("worker %s: sweep drained (%u/%u shards)\n",
                    worker.c_str(), none->committed, none->shards);
        return 0;
      }
      idle_ms += static_cast<int64_t>(none->retry_ms);
      if (max_idle_ms > 0 && idle_ms >= max_idle_ms) {
        std::printf("worker %s: idle for %lld ms, giving up\n",
                    worker.c_str(), static_cast<long long>(idle_ms));
        return 0;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(none->retry_ms));
      continue;
    }

    const auto& grant = std::get<common::SweepLeaseGrant>(*lease);
    idle_ms = 0;
    const int shard = static_cast<int>(grant.shard);
    if (grant.sweep != info->sweep || grant.total != info->total ||
        grant.shards != static_cast<uint32_t>(info->shards) ||
        grant.seed != info->seed) {
      return Fail(Status::InvalidArgument(
          "lease grant for sweep '" + grant.sweep +
          "' contradicts the plan in " + out + " (sweep '" + info->sweep +
          "'); is --out the daemon's results directory?"));
    }
    std::printf("worker %s: leased shard %d [%llu, %llu) lease=%llu\n",
                worker.c_str(), shard,
                static_cast<unsigned long long>(grant.begin),
                static_cast<unsigned long long>(grant.end),
                static_cast<unsigned long long>(grant.lease_id));
    MaybeDieAtKillMarker(shard, out);

    Status run;
    {
      int64_t interval =
          std::max<int64_t>(50, static_cast<int64_t>(grant.lease_ms) / 3);
      HeartbeatThread heartbeat(client, grant.lease_id, shard, interval);
      run = runner.Run(shard, out, threads);
    }

    if (!run.ok()) {
      std::fprintf(stderr, "worker %s: shard %d failed: %s\n",
                   worker.c_str(), shard, run.ToString().c_str());
      auto ack = client->ReportFailure(grant.lease_id, shard,
                                       run.ToString());
      if (!ack.ok()) {
        if (is_transport(ack.status())) return daemon_gone(ack.status());
        // e.g. the lease already expired and was reclaimed — fine.
        std::fprintf(stderr, "worker %s: failure report: %s\n",
                     worker.c_str(), ack.status().ToString().c_str());
      }
      continue;
    }

    auto manifest_text = ReadFile(common::ShardManifestPath(out, shard));
    if (!manifest_text.ok()) return Fail(manifest_text.status());
    auto manifest = common::ParseShardManifest(*manifest_text);
    if (!manifest.ok()) return Fail(manifest.status());

    auto ack = client->Complete(grant.lease_id, shard,
                                manifest->payload_sha256);
    if (!ack.ok()) {
      if (is_transport(ack.status())) return daemon_gone(ack.status());
      // NotFound = claim rejected (wrong --out), InvalidArgument /
      // Internal = the run is dead: all fatal for this worker.
      return Fail(ack.status());
    }
    std::printf("worker %s: shard %d %s (%u/%u committed)\n", worker.c_str(),
                shard, ack->duplicate != 0 ? "duplicate" : "committed",
                ack->committed, ack->shards);
  }
}

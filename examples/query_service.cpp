// Online mechanism-design query service, from the command line.
//
// The serving tier answers "is honesty dominant at this operating
// point, and if not, what would make it so?" — Section 4's
// observations packaged as an online API (src/serve). This driver
// exposes all three serving paths:
//
//   Single query, with the full step-by-step proof:
//     query_service --query=10,25,0.3,40
//     query_service --query=10,25,0.3,40,5     (5 sharing parties)
//
//   Batch-serve a request file (one B,F,f,P[,n] line per request;
//   blank lines and #-comments skipped) through the memoized cache:
//     query_service --requests=queries.csv
//
//   Synthetic Zipf-skewed stream (the repetitive traffic production
//   serving sees), printing the regime histogram and cache counters:
//     query_service --stream=100000 --domain=1024 --skew=1.1 --seed=42
//
// Cache and service knobs: --quantum=Q (key quantization step; 0 =
// lossless bit-pattern keys), --shards=K, --capacity=C (entries per
// shard, 0 = unbounded), --threads=T, --margin=M.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/file.h"
#include "game/thresholds.h"
#include "serve/query_service.h"
#include "serve/stream.h"

using namespace hsis;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  query_service --query=B,F,f,P[,n]\n"
      "  query_service --requests=FILE\n"
      "  query_service --stream=N [--domain=K --skew=S --seed=U]\n"
      "options: --quantum=Q --shards=K --capacity=C --threads=T --margin=M\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

/// Parses "B,F,f,P" or "B,F,f,P,n" into a request; returns false on
/// malformed input.
bool ParseRequestSpec(std::string_view spec, serve::QueryRequest* request) {
  std::vector<double> values;
  std::string buffer(spec);
  char* cursor = buffer.data();
  while (true) {
    char* end = nullptr;
    double value = std::strtod(cursor, &end);
    if (end == cursor) return false;
    values.push_back(value);
    if (*end == '\0') break;
    if (*end != ',') return false;
    cursor = end + 1;
  }
  if (values.size() != 4 && values.size() != 5) return false;
  request->benefit = values[0];
  request->cheat_gain = values[1];
  request->frequency = values[2];
  request->penalty = values[3];
  request->n = values.size() == 5 ? static_cast<int>(values[4]) : 2;
  return true;
}

double ParseDoubleFlag(const char* text, const char* flag) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "bad %s value: %s\n", flag, text);
    std::exit(2);
  }
  return value;
}

long ParseLongFlag(const char* text, const char* flag) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "bad %s value: %s\n", flag, text);
    std::exit(2);
  }
  return value;
}

void PrintAnswer(const serve::QueryAnswer& answer) {
  std::printf("regime:                 %s\n",
              game::DeviceEffectivenessName(answer.effectiveness));
  std::printf("honest is dominant:     %s\n",
              answer.honest_is_dominant ? "yes" : "no");
  std::printf("min deterring frequency: %g\n", answer.min_frequency);
  std::printf("min deterring penalty:   %g\n", answer.min_penalty);
  std::printf("zero-penalty frequency:  %g\n", answer.zero_penalty_frequency);
}

void PrintStats(const serve::CacheStats& stats) {
  std::printf("cache: %llu hits, %llu misses, %llu evictions, "
              "%llu resident entries\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.entries));
}

int ServeBatch(serve::QueryService& service,
               const std::vector<serve::QueryRequest>& requests,
               bool per_request) {
  game::kernel::DeviceAnswersSoA answers;
  if (Status s = service.AnswerBatchCached(requests.data(), requests.size(),
                                           answers);
      !s.ok()) {
    return Fail(s);
  }
  size_t histogram[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < requests.size(); ++i) {
    histogram[static_cast<size_t>(answers.effectiveness[i])]++;
    if (per_request) {
      std::printf("%zu: %s  min_f=%g  min_P=%g  f0=%g\n", i + 1,
                  game::DeviceEffectivenessName(answers.effectiveness[i]),
                  answers.min_frequency[i], answers.min_penalty[i],
                  answers.zero_penalty_frequency[i]);
    }
  }
  std::printf("served %zu requests\n", requests.size());
  for (int e = 0; e < 4; ++e) {
    std::printf("  %-18s %zu\n",
                game::DeviceEffectivenessName(
                    static_cast<game::DeviceEffectiveness>(e)),
                histogram[static_cast<size_t>(e)]);
  }
  PrintStats(service.Stats());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* query_spec = nullptr;
  const char* requests_path = nullptr;
  long stream_count = 0;
  serve::StreamConfig stream;
  serve::QueryServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--query=", 8) == 0) {
      query_spec = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--stream=", 9) == 0) {
      stream_count = ParseLongFlag(argv[i] + 9, "--stream");
    } else if (std::strncmp(argv[i], "--domain=", 9) == 0) {
      stream.domain =
          static_cast<size_t>(ParseLongFlag(argv[i] + 9, "--domain"));
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      stream.skew = ParseDoubleFlag(argv[i] + 7, "--skew");
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      stream.seed = static_cast<uint64_t>(ParseLongFlag(argv[i] + 7, "--seed"));
    } else if (std::strncmp(argv[i], "--quantum=", 10) == 0) {
      config.cache.quantum = ParseDoubleFlag(argv[i] + 10, "--quantum");
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      config.cache.shards =
          static_cast<int>(ParseLongFlag(argv[i] + 9, "--shards"));
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      config.cache.capacity_per_shard =
          static_cast<size_t>(ParseLongFlag(argv[i] + 11, "--capacity"));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.threads = static_cast<int>(ParseLongFlag(argv[i] + 10,
                                                      "--threads"));
    } else if (std::strncmp(argv[i], "--margin=", 9) == 0) {
      config.margin = ParseDoubleFlag(argv[i] + 9, "--margin");
    } else {
      return Usage();
    }
  }

  auto service_or = serve::QueryService::Create(config);
  if (!service_or.ok()) return Fail(service_or.status());
  serve::QueryService service = std::move(*service_or);

  if (query_spec != nullptr) {
    serve::QueryRequest request;
    if (!ParseRequestSpec(query_spec, &request)) {
      std::fprintf(stderr, "bad --query spec (want B,F,f,P[,n]): %s\n",
                   query_spec);
      return 2;
    }
    auto answer = service.Answer(request);
    if (!answer.ok()) return Fail(answer.status());
    std::printf("query: B=%g F=%g f=%g P=%g n=%d\n", request.benefit,
                request.cheat_gain, request.frequency, request.penalty,
                request.n);
    PrintAnswer(*answer);
    auto derivation = service.Explain(request);
    if (!derivation.ok()) return Fail(derivation.status());
    std::printf("\n%s", serve::DerivationToText(*derivation).c_str());
    return 0;
  }

  if (requests_path != nullptr) {
    auto content = ReadFile(requests_path);
    if (!content.ok()) return Fail(content.status());
    std::vector<serve::QueryRequest> requests;
    std::string_view rest = *content;
    size_t line_no = 0;
    while (!rest.empty()) {
      size_t eol = rest.find('\n');
      std::string_view line =
          eol == std::string_view::npos ? rest : rest.substr(0, eol);
      rest = eol == std::string_view::npos ? std::string_view()
                                           : rest.substr(eol + 1);
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      serve::QueryRequest request;
      if (!ParseRequestSpec(line, &request)) {
        std::fprintf(stderr, "%s:%zu: bad request line (want B,F,f,P[,n])\n",
                     requests_path, line_no);
        return 2;
      }
      requests.push_back(request);
    }
    return ServeBatch(service, requests, /*per_request=*/true);
  }

  if (stream_count > 0) {
    stream.count = static_cast<size_t>(stream_count);
    auto requests = serve::MakeSyntheticStream(stream);
    if (!requests.ok()) return Fail(requests.status());
    std::printf("stream: %zu requests over %zu points, skew %g, seed %llu\n",
                requests->size(), stream.domain, stream.skew,
                static_cast<unsigned long long>(stream.seed));
    return ServeBatch(service, *requests, /*per_request=*/false);
  }

  return Usage();
}

// Validates a machine-readable bench record (`--json=PATH` output of
// the benches): reads the file, parses it against the strict
// hsis-bench-v1 schema (common/perf_record.h), and prints the decoded
// fields. Exit code 0 means the record is well-formed and sensible;
// CI's bench smoke step pipes a fresh record through this checker so a
// schema regression fails the build rather than silently producing
// garbage artifacts.
//
//   check_bench_json FILE.json [--min-cells-per-sec=X]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/file.h"
#include "common/perf_record.h"

using namespace hsis;

int main(int argc, char** argv) {
  const char* path = nullptr;
  double min_cells_per_sec = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-cells-per-sec=", 20) == 0) {
      char* end = nullptr;
      min_cells_per_sec = std::strtod(argv[i] + 20, &end);
      if (end == argv[i] + 20 || *end != '\0') {
        std::fprintf(stderr, "bad --min-cells-per-sec value\n");
        return 2;
      }
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: check_bench_json FILE.json "
                   "[--min-cells-per-sec=X]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: check_bench_json FILE.json [--min-cells-per-sec=X]\n");
    return 2;
  }

  auto content = ReadFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 1;
  }
  auto record = common::ParsePerfRecord(*content);
  if (!record.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 record.status().ToString().c_str());
    return 1;
  }
  if (record->cells_per_sec < min_cells_per_sec) {
    std::fprintf(stderr,
                 "%s: cells_per_sec %.0f below required minimum %.0f\n", path,
                 record->cells_per_sec, min_cells_per_sec);
    return 1;
  }
  std::printf("%s: ok\n", path);
  std::printf("  bench         %s\n", record->bench.c_str());
  std::printf("  threads       %d\n", record->threads);
  std::printf("  cells_per_sec %.0f\n", record->cells_per_sec);
  std::printf("  wall_ms       %.3f\n", record->wall_ms);
  std::printf("  git_describe  %s\n", record->git_describe.c_str());
  return 0;
}

// Validates machine-readable bench records (`--json=PATH` output of
// the benches): reads the file, parses it against the strict
// hsis-bench-v1 schema (common/perf_record.h), and prints the decoded
// fields. Exit code 0 means every record is well-formed and sensible;
// CI's bench smoke steps pipe fresh records through this checker so a
// schema regression fails the build rather than silently producing
// garbage artifacts.
//
//   check_bench_json FILE.json [--min-cells-per-sec=X] [--lines=N]
//                    [--min-lines=N]
//
// By default the file must hold exactly one record. Multi-record
// artifacts (one JSON object per line, e.g. the serving-latency bench's
// BENCH_6.json) pass --lines=N to require exactly N records; every line
// must parse and --min-cells-per-sec applies to each. --min-lines=N
// requires *at least* N records instead — the right check for per-SIMD-
// lane artifacts whose record count depends on what the host CPU
// supports (one line per lane, so N = 2 asserts a vector lane ran
// without pinning which ones exist).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/file.h"
#include "common/perf_record.h"

using namespace hsis;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: check_bench_json FILE.json "
               "[--min-cells-per-sec=X] [--lines=N] [--min-lines=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  double min_cells_per_sec = 0;
  long expected_lines = -1;  // -1: legacy single-record mode
  long min_lines = -1;       // -1: exact count mode (expected_lines)
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-cells-per-sec=", 20) == 0) {
      char* end = nullptr;
      min_cells_per_sec = std::strtod(argv[i] + 20, &end);
      if (end == argv[i] + 20 || *end != '\0') {
        std::fprintf(stderr, "bad --min-cells-per-sec value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--lines=", 8) == 0) {
      char* end = nullptr;
      expected_lines = std::strtol(argv[i] + 8, &end, 10);
      if (end == argv[i] + 8 || *end != '\0' || expected_lines < 1) {
        std::fprintf(stderr, "bad --lines value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--min-lines=", 12) == 0) {
      char* end = nullptr;
      min_lines = std::strtol(argv[i] + 12, &end, 10);
      if (end == argv[i] + 12 || *end != '\0' || min_lines < 1) {
        std::fprintf(stderr, "bad --min-lines value\n");
        return 2;
      }
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr) return Usage();

  auto content = ReadFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 1;
  }

  // Split into non-empty lines; each line is one strict record.
  std::vector<std::string_view> lines;
  std::string_view rest = *content;
  while (!rest.empty()) {
    size_t eol = rest.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    if (!line.empty()) lines.push_back(line);
  }
  if (min_lines >= 0) {
    if (lines.size() < static_cast<size_t>(min_lines)) {
      std::fprintf(stderr, "%s: expected at least %ld record line(s), found "
                   "%zu\n", path, min_lines, lines.size());
      return 1;
    }
  } else {
    size_t want = expected_lines < 0 ? 1 : static_cast<size_t>(expected_lines);
    if (lines.size() != want) {
      std::fprintf(stderr, "%s: expected %zu record line(s), found %zu\n",
                   path, want, lines.size());
      return 1;
    }
  }

  for (size_t i = 0; i < lines.size(); ++i) {
    auto record = common::ParsePerfRecord(lines[i]);
    if (!record.ok()) {
      std::fprintf(stderr, "%s line %zu: %s\n", path, i + 1,
                   record.status().ToString().c_str());
      return 1;
    }
    if (record->cells_per_sec < min_cells_per_sec) {
      std::fprintf(stderr,
                   "%s line %zu (%s): cells_per_sec %.0f below required "
                   "minimum %.0f\n",
                   path, i + 1, record->bench.c_str(), record->cells_per_sec,
                   min_cells_per_sec);
      return 1;
    }
    std::printf("%s line %zu: ok\n", path, i + 1);
    std::printf("  bench         %s\n", record->bench.c_str());
    std::printf("  threads       %d\n", record->threads);
    std::printf("  lane          %s\n", record->lane.c_str());
    if (!record->algo.empty()) {
      std::printf("  algo          %s\n", record->algo.c_str());
    }
    std::printf("  cells_per_sec %.0f\n", record->cells_per_sec);
    std::printf("  wall_ms       %.3f\n", record->wall_ms);
    std::printf("  git_describe  %s\n", record->git_describe.c_str());
  }
  return 0;
}

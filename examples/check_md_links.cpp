// Relative-link checker for the repository's Markdown docs, used by the
// docs CI job (.github/workflows/ci.yml).
//
//   check_md_links FILE.md...          # or directories to scan for *.md
//
// Every inline link or image `[text](target)` whose target is not an
// external URL or pure in-page anchor must resolve, relative to the
// file that contains it, to an existing file or directory (an optional
// `#fragment` is stripped first). Broken links are listed and the exit
// code is 1, so a doc rename that orphans references fails the build.
//
// Deliberately standard-library-only: the docs job builds just this
// tool, not the scientific stack.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool IsExternal(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0 || target.rfind("ftp://", 0) == 0;
}

// Extracts the target of every inline `[...](target)` on `line`,
// tolerating one level of nested brackets in the link text (images
// inside links). Code spans are skipped so `[i](x)` inside backticks is
// not a link.
std::vector<std::string> LinkTargets(const std::string& line) {
  std::vector<std::string> targets;
  bool in_code = false;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '`') {
      in_code = !in_code;
      continue;
    }
    if (in_code || line[i] != '[') continue;
    int depth = 1;
    size_t j = i + 1;
    while (j < line.size() && depth > 0) {
      if (line[j] == '[') ++depth;
      if (line[j] == ']') --depth;
      ++j;
    }
    if (depth != 0 || j >= line.size() || line[j] != '(') continue;
    size_t close = line.find(')', j + 1);
    if (close == std::string::npos) continue;
    targets.push_back(line.substr(j + 1, close - j - 1));
    i = close;
  }
  return targets;
}

int CheckFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  int broken = 0;
  std::string line;
  int line_no = 0;
  bool in_fence = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    for (const std::string& raw : LinkTargets(line)) {
      std::string target = raw;
      // Drop an optional title: [x](file.md "title")
      if (size_t space = target.find(' '); space != std::string::npos) {
        target = target.substr(0, space);
      }
      if (target.empty() || IsExternal(target) || target[0] == '#') continue;
      if (size_t hash = target.find('#'); hash != std::string::npos) {
        target = target.substr(0, hash);
      }
      fs::path resolved = path.parent_path() / target;
      std::error_code ec;
      if (!fs::exists(resolved, ec)) {
        std::printf("%s:%d: broken link -> %s\n", path.string().c_str(),
                    line_no, raw.c_str());
        ++broken;
      }
    }
  }
  return broken;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: check_md_links FILE.md|DIR...\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    fs::path arg = argv[i];
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && entry.path().extension() == ".md" &&
            entry.path().string().find("/build/") == std::string::npos &&
            entry.path().string().find("/.git/") == std::string::npos) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(arg);
    }
  }
  int broken = 0;
  for (const fs::path& file : files) broken += CheckFile(file);
  if (broken > 0) {
    std::printf("%d broken link(s)\n", broken);
    return 1;
  }
  std::printf("checked %zu markdown file(s): all relative links resolve\n",
              files.size());
  return 0;
}

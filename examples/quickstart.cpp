// Quickstart: audited sovereign set intersection in ~60 lines.
//
// Two competitors want their common customers without revealing the
// rest. A mechanism designer picks audit terms that make honesty the
// unique rational behavior; the session wires up tuple generators, the
// secure-coprocessor-hosted auditing device, and the commutative-
// encryption intersection protocol.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/honest_sharing_session.h"
#include "core/mechanism_designer.h"

using namespace hsis;

int main() {
  // 1. Economics: honest benefit B = 10, cheating tempts with F = 25.
  Result<core::MechanismDesigner> designer =
      core::MechanismDesigner::Create(/*benefit=*/10, /*cheat_gain=*/25);
  if (!designer.ok()) {
    std::printf("designer error: %s\n", designer.status().ToString().c_str());
    return 1;
  }

  // 2. Pick audit terms: audit 30%% of exchanges; what penalty deters?
  const double frequency = 0.3;
  double min_penalty = designer->MinPenalty(frequency).value();
  double penalty = min_penalty + 10;  // operate with headroom
  std::printf("Deterrence: audit frequency f = %.2f needs penalty P > %.2f; "
              "we charge %.2f\n",
              frequency, min_penalty, penalty);

  // 3. Stand up the audited sharing session.
  core::SessionConfig config;
  config.audit_frequency = frequency;
  config.penalty = penalty;
  config.seed = 2006;
  core::HonestSharingSession session =
      std::move(core::HonestSharingSession::Create(config).value());

  session.AddParty("rowi");
  session.AddParty("colie");

  // 4. Legal tuples flow in through each party's tuple generator, which
  //    also feeds the auditing device's incremental multiset hash.
  session.IssueTuples("rowi", {"bob", "uma", "vera", "yuri"});
  session.IssueTuples("colie", {"ana", "uma", "vera", "xena"});

  // 5. An honest exchange: both learn exactly the common customers.
  core::ExchangeResult honest =
      session.RunExchange("rowi", "colie").value();
  std::printf("\nHonest exchange — common customers (%zu):\n",
              honest.a.intersection.size());
  for (const auto& t : honest.a.intersection.tuples()) {
    std::printf("  %s\n", t.ToString().c_str());
  }

  // 6. Rowi turns malicious: fabricates "xena" to probe Colie's list.
  core::CheatPlan probe;
  probe.fabricate = {"xena"};
  int caught = 0, rounds = 100;
  for (int i = 0; i < rounds; ++i) {
    core::ExchangeResult r =
        session.RunExchange("rowi", "colie", probe, {}).value();
    caught += r.a.detected;
  }
  std::printf("\nCheating 100 times: caught %d times (f = %.2f), fined %.0f total\n",
              caught, frequency, session.TotalPenalties("rowi"));
  std::printf("Expected cheating payoff %.2f < honest payoff %.2f — cheating "
              "is irrational.\n",
              (1 - frequency) * 25 - frequency * penalty, 10.0);
  return 0;
}

// N-party supply chain (Section 5): many suppliers sharing stock lists.
//
// Shows (1) the n-party sovereign intersection over a ring of
// commutative encryptions, (2) Theorem 1's penalty bands — how the
// required deterrent grows with the number of honest players a cheater
// can exploit — and (3) a population of learning agents converging to
// all-honest exactly when the device is transformative.
//
// Build & run:  ./build/examples/supply_chain

#include <cstdio>

#include "core/mechanism_designer.h"
#include "sim/repeated_game.h"
#include "sim/workload.h"
#include "sovereign/multiparty.h"

using namespace hsis;

int main() {
  const int kParties = 6;
  Rng rng(2006);

  std::printf("=== 1. Six suppliers intersect their stock lists ===\n\n");
  auto stocks = sim::MakeSupplyChainWorkload(kParties, /*catalog_size=*/200,
                                             /*hold_probability=*/0.7, rng);
  std::vector<sovereign::Dataset> reported;
  for (int p = 0; p < kParties; ++p) {
    reported.push_back(
        sovereign::Dataset::FromStrings(stocks[static_cast<size_t>(p)]));
    std::printf("  supplier-%d stocks %zu parts\n", p,
                reported.back().size());
  }
  crypto::MultisetHashFamily family = std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
  auto outcomes = sovereign::RunMultiPartyIntersection(
                      reported, crypto::PrimeGroup::SmallTestGroup(), family,
                      rng)
                      .value();
  std::printf("Parts stocked by every supplier: %zu (each party learned\n"
              "only this set — no pairwise lists were revealed).\n\n",
              outcomes[0].intersection.size());

  std::printf("=== 2. Theorem 1: penalty bands scale with n ===\n\n");
  const double kBenefit = 10, kFrequency = 0.3;
  game::GainFunction gain = game::LinearGain(20, 2);
  core::MechanismDesigner designer =
      std::move(core::MechanismDesigner::Create(kBenefit, 25).value());
  std::printf("  n    min penalty for all-honest DSE (f = %.1f)\n", kFrequency);
  for (int n : {2, 4, 8, 16, 32, 64}) {
    double p = designer.MinPenaltyNPlayer(n, gain, kFrequency).value();
    std::printf("  %-4d %.2f\n", n, p);
  }
  std::printf("The more honest peers a cheater can exploit (F monotone in\n"
              "x), the bigger the deterrent must be (Proposition 1).\n\n");

  std::printf("=== 3. Learning suppliers converge to honesty ===\n\n");
  game::NPlayerHonestyGame::Params params;
  params.n = kParties;
  params.benefit = kBenefit;
  params.gain = gain;
  params.frequency = kFrequency;
  params.uniform_loss = 4;

  for (bool deterred : {false, true}) {
    params.penalty =
        deterred
            ? designer.MinPenaltyNPlayer(kParties, gain, kFrequency).value()
            : 0.0;
    game::NPlayerHonestyGame game =
        std::move(game::NPlayerHonestyGame::Create(params).value());

    std::vector<std::unique_ptr<sim::Agent>> agents;
    for (int i = 0; i < kParties; ++i) {
      agents.push_back(sim::MakeFictitiousPlay(&game, 500 + static_cast<uint64_t>(i)));
    }
    sim::RepeatedGameConfig config;
    config.rounds = 300;
    sim::RepeatedGameResult result =
        std::move(sim::RunRepeatedGame(game, agents, config).value());
    std::printf("  penalty P = %-7.2f final honesty rate = %.0f%%  %s\n",
                params.penalty, 100 * result.honesty_rate_final,
                deterred ? "(transformative device)" : "(no deterrence)");
  }
  std::printf("\nFictitious-play suppliers end up all-honest exactly when\n"
              "the device operates above the Theorem 1 bound.\n");
  return 0;
}

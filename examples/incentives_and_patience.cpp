// Beyond penalties: the two enforcement alternatives this library adds
// on top of the paper — rewards (its stated future work) and repetition
// (the folk theorem) — and how they trade off against auditing.
//
// Build & run:  ./build/examples/incentives_and_patience

#include <cmath>
#include <cstdio>

#include "game/repeated_analysis.h"
#include "game/reward_mechanism.h"
#include "game/thresholds.h"

using namespace hsis;

int main() {
  const double kB = 10, kF = 25, kL = 20;

  std::printf("Scenario: B = %.0f, F = %.0f, mutual-cheating damage L = %.0f\n\n",
              kB, kF, kL);

  std::printf("Option 1 — penalties (the paper): audit at f, fine P.\n");
  const double f = 0.25;
  double p_star = game::CriticalPenalty(kB, kF, f);
  std::printf("  At f = %.2f the fine must exceed P* = %.2f.\n"
              "  Operator cost at the honest equilibrium: 0 (nobody is fined).\n\n",
              f, p_star);

  std::printf("Option 2 — rewards (Section 7 future work): audit at f, pay\n"
              "verified-honest players R.\n");
  double r_star = game::CriticalReward(kB, kF, f, 0);
  game::RewardTerms reward_terms{f, r_star + 1, 0};
  std::printf("  Same threshold shape: R* = %.2f; device is then %s.\n",
              r_star,
              game::DeviceEffectivenessName(
                  game::ClassifyRewardDevice(kB, kF, reward_terms)));
  std::printf("  But the operator pays n*f*R = %.2f per round, per 10\n"
              "  players, forever: deterrence that never stops billing.\n\n",
              game::OperatorCostAtHonestEquilibrium(10, reward_terms));

  std::printf("Option 3 — patience (folk theorem): no device at all.\n");
  double d_star = game::CriticalDiscount(kB, kF, kL);
  if (std::isinf(d_star)) {
    std::printf("  Not available here: L < F - B.\n\n");
  } else {
    std::printf("  Grim trigger sustains honesty iff the discount factor\n"
                "  delta >= (F-B)/L = %.3f. Free — but only works because\n"
                "  L = %.0f >= F - B = %.0f, and only for patient players.\n\n",
                d_star, kL, kF - kB);
  }

  std::printf("Mixing audits with patience (generalized Observation 2):\n");
  std::printf("  %-8s %-22s\n", "delta", "required audit rate f*");
  for (double delta : {0.0, 0.3, 0.6, 0.74, 0.76}) {
    double fr = game::CriticalFrequencyWithPatience(kB, kF, kL, /*P=*/10,
                                                    delta);
    std::printf("  %-8.2f %.4f%s\n", delta, fr,
                fr == 0.0 ? "  <- patience alone suffices" : "");
  }
  std::printf("\nDesign takeaway: penalties are the only option that is both\n"
              "universally applicable (any L, any delta) and free at the\n"
              "equilibrium it induces — which is why the paper builds its\n"
              "auditing device around them.\n");
  return 0;
}

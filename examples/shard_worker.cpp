// Multi-process worker for sharded landscape sweeps (common/shard.h).
//
// A sweep is split across processes — or machines sharing a results
// directory — in three steps:
//
//   1. Plan (once):
//        shard_worker --plan --sweep=figure1 --shards=4 --out=results
//   2. Run each shard, in any order, concurrently, anywhere:
//        shard_worker --shard=0 --out=results [--threads=N]
//        ... (one invocation per shard; re-run only the failed ones)
//   3. Merge and emit the CSV:
//        shard_worker --merge --out=results [--csv=figure1.csv]
//
// The merge validates every shard manifest (SHA-256, ranges, plan
// membership) and the assembled CSV is byte-identical to the serial
// single-process `export_landscapes` output. `--list` prints the sweep
// names: the builtin figure landscapes plus the registered sweeps this
// driver opts into at startup (heterogeneous design searches and the
// campaign ensemble).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "common/shard.h"
#include "core/campaign_shards.h"
#include "game/landscape_shards.h"

using namespace hsis;
using namespace hsis::game;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  shard_worker --plan --sweep=NAME --shards=K --out=DIR\n"
      "  shard_worker --shard=K --out=DIR [--threads=N]\n"
      "  shard_worker --merge --out=DIR [--csv=FILE]\n"
      "  shard_worker --list\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

int ResolveFlag(Result<int> parsed) {
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return *parsed;
}

int DoPlan(const std::string& sweep, int shards, const std::string& out) {
  auto spec = LandscapeSweepSpec(sweep);
  if (!spec.ok()) return Fail(spec.status());
  auto plan = common::ShardPlan::Create(spec->total, shards);
  if (!plan.ok()) return Fail(plan.status());
  if (Status s = CreateDirectories(out); !s.ok()) return Fail(s);
  if (Status s = common::WriteShardPlan(*spec, *plan, out); !s.ok()) {
    return Fail(s);
  }
  std::printf("planned sweep '%s': %zu indices in %d shards -> %s\n",
              sweep.c_str(), spec->total, shards,
              common::ShardPlanPath(out).c_str());
  for (int k = 0; k < plan->shards(); ++k) {
    common::ShardRange range = plan->Range(k);
    std::printf("  shard %-3d [%zu, %zu)  %zu records\n", k, range.begin,
                range.end, range.size());
  }
  return 0;
}

int DoShard(int shard, const std::string& out, int threads) {
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  auto spec = LandscapeSweepSpec(info->sweep);
  if (!spec.ok()) return Fail(spec.status());
  auto plan = common::ShardPlan::Create(info->total, info->shards);
  if (!plan.ok()) return Fail(plan.status());
  common::ShardRunner runner(*spec, *plan);
  if (Status s = runner.Run(shard, out, threads); !s.ok()) return Fail(s);
  common::ShardRange range = plan->Range(shard);
  std::printf("shard %d of '%s' done: %zu records [%zu, %zu) -> %s\n", shard,
              info->sweep.c_str(), range.size(), range.begin, range.end,
              common::ShardPayloadPath(out, shard).c_str());
  return 0;
}

int DoMerge(const std::string& out, std::string csv_path) {
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  auto merged = common::MergeShards(out, info->sweep);
  if (!merged.ok()) return Fail(merged.status());
  auto header = LandscapeCsvHeader(info->sweep);
  if (!header.ok()) return Fail(header.status());
  if (csv_path.empty()) {
    csv_path = out + "/" + LandscapeCsvFilename(info->sweep).value();
  }
  std::string csv = *header + BytesToString(*merged);
  if (Status s = WriteFile(csv_path, csv); !s.ok()) return Fail(s);
  int rows = 0;
  for (char c : csv) rows += (c == '\n');
  std::printf("merged %d shards of '%s': %d rows -> %s\n", info->shards,
              info->sweep.c_str(), rows - 1, csv_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Opt into the registered (non-figure) sweeps so this driver can plan,
  // run, and merge them by name alongside the builtin figure landscapes.
  if (Status s = RegisterHeterogeneousDesignSweeps(); !s.ok()) return Fail(s);
  if (Status s = core::RegisterCampaignEnsembleSweep(); !s.ok()) return Fail(s);

  bool plan = false, merge = false, list = false;
  int shard = -1, shards = 1, threads = 1;
  std::string sweep, out, csv;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--plan") == 0) {
      plan = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strncmp(arg, "--sweep=", 8) == 0) {
      sweep = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      csv = arg + 6;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = ResolveFlag(common::ParseShardsValue(arg + 9));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ResolveFlag(common::ParseThreadsValue(arg + 10));
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      char* end = nullptr;
      shard = static_cast<int>(std::strtol(arg + 8, &end, 10));
      if (end == arg + 8 || *end != '\0') return Usage();
    } else {
      return Usage();
    }
  }

  if (list) {
    for (const std::string& name : LandscapeSweepNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (plan) {
    if (sweep.empty() || out.empty() || merge || shard >= 0) return Usage();
    return DoPlan(sweep, shards, out);
  }
  if (shard >= 0) {
    if (out.empty() || merge) return Usage();
    return DoShard(shard, out, threads);
  }
  if (merge) {
    if (out.empty()) return Usage();
    return DoMerge(out, csv);
  }
  return Usage();
}

// Multi-process worker for sharded landscape sweeps (common/shard.h).
//
// A sweep is split across processes — or machines sharing a results
// directory — in three steps:
//
//   1. Plan (once):
//        shard_worker --plan --sweep=figure1 --shards=4 --out=results
//   2. Run each shard, in any order, concurrently, anywhere:
//        shard_worker --shard=0 --out=results [--threads=N]
//        ... (one invocation per shard; re-run only the failed ones)
//   3. Merge and emit the CSV:
//        shard_worker --merge --out=results [--csv=figure1.csv]
//
// The merge validates every shard manifest (SHA-256, ranges, plan
// membership) and the assembled CSV is byte-identical to the serial
// single-process `export_landscapes` output. `--list` prints the sweep
// names: the builtin figure landscapes plus the registered sweeps this
// driver opts into at startup (heterogeneous design searches and the
// campaign ensemble).
//
// Steps 2 and 3 can also be supervised automatically:
//
//        shard_worker --schedule --out=results [--sweep=NAME --shards=K]
//                     [--workers=N] [--max-retries=R] [--shard-timeout-ms=T]
//                     [--summary=FILE] [--csv=FILE] [--threads=N]
//
// which resumes an existing plan (or plans a fresh one when --sweep is
// given), re-executes this binary once per shard attempt under the
// fault-tolerant ShardScheduler (common/scheduler.h), retries crashed,
// corrupt, or hung shards, then merges. Completed shards are never
// recomputed. --summary writes the machine-readable hsis-schedule-v1
// run record; see docs/SHARDING.md for the operator runbook.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file.h"
#include "common/parallel.h"
#include "common/perf_record.h"
#include "common/scheduler.h"
#include "common/shard.h"
#include "core/campaign_shards.h"
#include "game/landscape_shards.h"

using namespace hsis;
using namespace hsis::game;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  shard_worker --plan --sweep=NAME --shards=K --out=DIR\n"
      "  shard_worker --shard=K --out=DIR [--threads=N]\n"
      "  shard_worker --merge --out=DIR [--csv=FILE]\n"
      "  shard_worker --schedule --out=DIR [--sweep=NAME --shards=K]\n"
      "               [--workers=N] [--max-retries=R] [--shard-timeout-ms=T]\n"
      "               [--summary=FILE] [--csv=FILE] [--threads=N]\n"
      "  shard_worker --list [--json]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

int ResolveFlag(Result<int> parsed) {
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return *parsed;
}

int DoPlan(const std::string& sweep, int shards, const std::string& out) {
  auto spec = LandscapeSweepSpec(sweep);
  if (!spec.ok()) return Fail(spec.status());
  auto plan = common::ShardPlan::Create(spec->total, shards);
  if (!plan.ok()) return Fail(plan.status());
  if (Status s = CreateDirectories(out); !s.ok()) return Fail(s);
  if (Status s = common::WriteShardPlan(*spec, *plan, out); !s.ok()) {
    return Fail(s);
  }
  std::printf("planned sweep '%s': %zu indices in %d shards -> %s\n",
              sweep.c_str(), spec->total, shards,
              common::ShardPlanPath(out).c_str());
  for (int k = 0; k < plan->shards(); ++k) {
    common::ShardRange range = plan->Range(k);
    std::printf("  shard %-3d [%zu, %zu)  %zu records\n", k, range.begin,
                range.end, range.size());
  }
  return 0;
}

// Deterministic fault injection for scheduler integration tests: when
// the operator (or CI) touches `<out>/kill-shard-<k>`, the next attempt
// of shard k consumes the marker, leaves a partial payload behind, and
// dies by SIGKILL — exactly what a worker crash mid-write looks like.
// The marker is deleted first, so the retry the scheduler launches runs
// clean.
void MaybeDieAtKillMarker(int shard, const std::string& out) {
  const std::string marker = out + "/kill-shard-" + std::to_string(shard);
  if (!FileExists(marker)) return;
  (void)std::remove(marker.c_str());
  (void)WriteFile(common::ShardPayloadPath(out, shard), "partial write, no ");
  ::raise(SIGKILL);
}

int DoShard(int shard, const std::string& out, int threads) {
  MaybeDieAtKillMarker(shard, out);
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  auto spec = LandscapeSweepSpec(info->sweep);
  if (!spec.ok()) return Fail(spec.status());
  auto plan = common::ShardPlan::Create(info->total, info->shards);
  if (!plan.ok()) return Fail(plan.status());
  common::ShardRunner runner(*spec, *plan);
  if (Status s = runner.Run(shard, out, threads); !s.ok()) return Fail(s);
  common::ShardRange range = plan->Range(shard);
  std::printf("shard %d of '%s' done: %zu records [%zu, %zu) -> %s\n", shard,
              info->sweep.c_str(), range.size(), range.begin, range.end,
              common::ShardPayloadPath(out, shard).c_str());
  return 0;
}

int DoMerge(const std::string& out, std::string csv_path) {
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  auto merged = common::MergeShards(out, info->sweep);
  if (!merged.ok()) return Fail(merged.status());
  auto header = LandscapeCsvHeader(info->sweep);
  if (!header.ok()) return Fail(header.status());
  if (csv_path.empty()) {
    csv_path = out + "/" + LandscapeCsvFilename(info->sweep).value();
  }
  std::string csv = *header + BytesToString(*merged);
  if (Status s = WriteFile(csv_path, csv); !s.ok()) return Fail(s);
  int rows = 0;
  for (char c : csv) rows += (c == '\n');
  std::printf("merged %d shards of '%s': %d rows -> %s\n", info->shards,
              info->sweep.c_str(), rows - 1, csv_path.c_str());
  return 0;
}

// Path of this binary for self-re-execution, one process per shard
// attempt. /proc/self/exe survives PATH lookups and directory changes;
// argv[0] is the fallback off Linux.
std::string SelfBinary(const char* argv0) {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<size_t>(n));
  return argv0;
}

struct ScheduleFlags {
  int workers = 1;
  int max_retries = 2;
  int64_t shard_timeout_ms = 0;
  std::string summary_path;
};

int DoSchedule(const std::string& self, const std::string& sweep, int shards,
               const std::string& out, int threads,
               const ScheduleFlags& flags, const std::string& csv) {
  // Resume the plan already committed in `out`; plan fresh only when
  // there is none and --sweep names one.
  if (!FileExists(common::ShardPlanPath(out))) {
    if (sweep.empty()) {
      std::fprintf(stderr,
                   "no plan in %s and no --sweep to plan one; run --plan "
                   "first or pass --sweep=NAME --shards=K\n",
                   out.c_str());
      return 2;
    }
    if (int rc = DoPlan(sweep, shards, out); rc != 0) return rc;
  }
  auto info = common::ReadShardPlan(out);
  if (!info.ok()) return Fail(info.status());
  if (!sweep.empty() && sweep != info->sweep) {
    std::fprintf(stderr,
                 "--sweep=%s contradicts the plan in %s (sweep '%s'); "
                 "clear the directory to start over\n",
                 sweep.c_str(), out.c_str(), info->sweep.c_str());
    return 2;
  }

  common::ShardScheduleOptions options;
  options.workers = flags.workers;
  options.max_attempts = flags.max_retries + 1;
  options.shard_timeout_ms = flags.shard_timeout_ms;
  common::ShardScheduler scheduler(
      *info, out, common::MakeProcessShardExecutor(self, out, threads),
      options);
  auto summary = scheduler.Run();
  if (!summary.ok()) return Fail(summary.status());

  std::printf(
      "scheduled '%s': %d shards done (%d resumed, %d retries, "
      "%d quarantined, %d timeouts) in %.0f ms\n",
      summary->sweep.c_str(), summary->shards, summary->resumed,
      summary->retries, summary->quarantined, summary->timeouts,
      summary->wall_ms);
  if (!flags.summary_path.empty()) {
    std::string json =
        common::ScheduleRecordToJson(common::ToScheduleRecord(*summary));
    if (Status s = WriteFile(flags.summary_path, json); !s.ok()) {
      return Fail(s);
    }
    std::printf("summary -> %s\n", flags.summary_path.c_str());
  }
  return DoMerge(out, csv);
}

}  // namespace

int main(int argc, char** argv) {
  // Opt into the registered (non-figure) sweeps so this driver can plan,
  // run, and merge them by name alongside the builtin figure landscapes.
  if (Status s = RegisterHeterogeneousDesignSweeps(); !s.ok()) return Fail(s);
  if (Status s = core::RegisterCampaignEnsembleSweep(); !s.ok()) return Fail(s);

  bool plan = false, merge = false, list = false, schedule = false;
  bool json = false;
  int shard = -1, shards = 1, threads = 1;
  std::string sweep, out, csv;
  ScheduleFlags sched;
  auto parse_int = [](const char* value, int64_t* result) {
    char* end = nullptr;
    *result = std::strtol(value, &end, 10);
    return end != value && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t value = 0;
    if (std::strcmp(arg, "--plan") == 0) {
      plan = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--schedule") == 0) {
      schedule = true;
    } else if (std::strncmp(arg, "--sweep=", 8) == 0) {
      sweep = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      csv = arg + 6;
    } else if (std::strncmp(arg, "--summary=", 10) == 0) {
      sched.summary_path = arg + 10;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = ResolveFlag(common::ParseShardsValue(arg + 9));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ResolveFlag(common::ParseThreadsValue(arg + 10));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      sched.workers = ResolveFlag(common::ParseThreadsValue(arg + 10));
    } else if (std::strncmp(arg, "--max-retries=", 14) == 0) {
      if (!parse_int(arg + 14, &value) || value < 0) return Usage();
      sched.max_retries = static_cast<int>(value);
    } else if (std::strncmp(arg, "--shard-timeout-ms=", 19) == 0) {
      if (!parse_int(arg + 19, &value) || value < 0) return Usage();
      sched.shard_timeout_ms = value;
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      if (!parse_int(arg + 8, &value)) return Usage();
      shard = static_cast<int>(value);
    } else {
      return Usage();
    }
  }

  if (list) {
    // --json emits the machine-readable registry snapshot that
    // docs/SHARDING.md §5 cites, so the documented sweep table can be
    // regenerated instead of rotting: one object per sweep with its
    // index count and CSV filename, in name-lookup order.
    if (json) {
      std::printf("{\"version\":\"hsis-sweeps-v1\",\"sweeps\":[");
      bool first = true;
      for (const std::string& name : LandscapeSweepNames()) {
        auto spec = LandscapeSweepSpec(name);
        if (!spec.ok()) return Fail(spec.status());
        auto filename = LandscapeCsvFilename(name);
        if (!filename.ok()) return Fail(filename.status());
        std::printf("%s{\"name\":\"%s\",\"total\":%zu,\"csv\":\"%s\"}",
                    first ? "" : ",", name.c_str(), spec->total,
                    filename->c_str());
        first = false;
      }
      std::printf("]}\n");
      return 0;
    }
    for (const std::string& name : LandscapeSweepNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (schedule) {
    if (out.empty() || plan || merge || shard >= 0) return Usage();
    return DoSchedule(SelfBinary(argv[0]), sweep, shards, out, threads, sched,
                      csv);
  }
  if (plan) {
    if (sweep.empty() || out.empty() || merge || shard >= 0) return Usage();
    return DoPlan(sweep, shards, out);
  }
  if (shard >= 0) {
    if (out.empty() || merge) return Usage();
    return DoShard(shard, out, threads);
  }
  if (merge) {
    if (out.empty()) return Usage();
    return DoMerge(out, csv);
  }
  return Usage();
}

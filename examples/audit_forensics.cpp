// Inside the auditing device (Section 6): attestation, incremental
// multiset hashes, tamper cases, and the court's polynomial-time check.
//
// Build & run:  ./build/examples/audit_forensics

#include <cstdio>

#include "audit/auditing_device.h"
#include "audit/judge.h"
#include "audit/secure_coprocessor.h"
#include "audit/tuple_generator.h"
#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

using namespace hsis;

namespace {

Bytes Commit(const crypto::MultisetHashFamily& family,
             const sovereign::Dataset& data) {
  auto h = family.NewHash();
  for (const auto& t : data.tuples()) h->Add(t.value);
  return h->Serialize();
}

}  // namespace

int main() {
  Rng rng(1);

  std::printf("=== 1. Remote attestation of the device ===\n\n");
  audit::SecureCoprocessor coprocessor =
      audit::SecureCoprocessor::Manufacture(rng);
  Bytes trusted_code = ToBytes("hsis-auditing-device v1.0");
  coprocessor.InstallApplication(trusted_code);
  Bytes challenge = rng.RandomBytes(16);
  auto report = coprocessor.Attest(challenge).value();
  bool verified = audit::SecureCoprocessor::VerifyAttestation(
      report, audit::SecureCoprocessor::MeasureCode(trusted_code),
      coprocessor.endorsement_key());
  std::printf("Participant challenges the device; attestation verifies: %s\n"
              "(code hash %s...)\n\n",
              verified ? "yes" : "NO",
              HexEncode(report.code_hash).substr(0, 16).c_str());

  std::printf("=== 2. The tuple-generator path ===\n\n");
  crypto::MultisetHashFamily family = std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
  audit::AuditingDevice device =
      std::move(audit::AuditingDevice::Create(/*frequency=*/1.0,
                                              /*penalty=*/50)
                    .value());
  audit::TupleGenerator tg = std::move(
      audit::TupleGenerator::Create("rowi", family, &device).value());

  sovereign::Dataset database;
  for (const char* customer : {"bob", "uma", "vera", "yuri"}) {
    database.Add(tg.IssueString(customer).value());
  }
  std::printf("TG issued %llu tuples; device state is %zu bytes — O(1)\n"
              "per player, and the device never saw a tuple value.\n\n",
              static_cast<unsigned long long>(tg.issued()),
              device.StateBytes());

  std::printf("=== 3. Audits: honest, insert, delete, substitute ===\n\n");
  struct Case {
    const char* label;
    sovereign::Dataset reported;
  };
  sovereign::Dataset insert = database;
  insert.Add(sovereign::Tuple::FromString("xena"));
  sovereign::Dataset remove =
      database.Difference(sovereign::Dataset::FromStrings({"vera"}));
  sovereign::Dataset swap = remove;
  swap.Add(sovereign::Tuple::FromString("zoe"));
  Case cases[] = {
      {"honest report        ", database},
      {"fabricated tuple     ", insert},
      {"withheld tuple       ", remove},
      {"substitution (same n)", swap},
  };
  for (const Case& c : cases) {
    auto outcome = device.Audit("rowi", Commit(family, c.reported)).value();
    std::printf("  %s -> %s\n", c.label,
                outcome.cheating_detected ? "CHEATING DETECTED (fined 50)"
                                          : "passes");
  }
  std::printf("\nAudit log has %zu entries; total fines: %.0f\n\n",
              device.log().size(), device.TotalPenalties("rowi"));

  std::printf("=== 4. The court (judge) check ===\n\n");
  Bytes honest_commitment = Commit(family, database);
  bool judge_honest = audit::VerifyCommitment(database, honest_commitment,
                                              family);
  bool judge_forged = audit::VerifyCommitment(insert, honest_commitment,
                                              family);
  std::printf("Judge verifies disclosed data against the reported hash in\n"
              "polynomial time: honest pair -> %s, forged pair -> %s\n\n",
              judge_honest ? "consistent" : "INCONSISTENT",
              judge_forged ? "consistent" : "inconsistent (liable)");

  std::printf("=== 5. All four hash schemes catch the same cheat ===\n\n");
  for (auto scheme :
       {crypto::MultisetHashScheme::kXor, crypto::MultisetHashScheme::kAdd,
        crypto::MultisetHashScheme::kMu, crypto::MultisetHashScheme::kVAdd}) {
    bool keyed = scheme == crypto::MultisetHashScheme::kXor ||
                 scheme == crypto::MultisetHashScheme::kAdd;
    auto f = crypto::MultisetHashFamily::Create(
                 scheme, keyed ? ToBytes("tg-key") : Bytes{})
                 .value();
    auto honest_hash = f.NewHash();
    auto cheat_hash = f.NewHash();
    for (const auto& t : database.tuples()) {
      honest_hash->Add(t.value);
      cheat_hash->Add(t.value);
    }
    cheat_hash->Add(ToBytes("xena"));
    std::printf("  %-15s detects insertion: %s\n",
                crypto::MultisetHashSchemeName(scheme),
                honest_hash->Equivalent(*cheat_hash) ? "NO" : "yes");
  }
  return 0;
}

#include "game/support_enumeration.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/thresholds.h"

namespace hsis::game {
namespace {

NormalFormGame Make2x2(std::initializer_list<double> payoffs) {
  // payoffs: u1(0,0), u2(0,0), u1(0,1), u2(0,1), u1(1,0), ..., row major.
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  EXPECT_TRUE(g.ok());
  auto it = payoffs.begin();
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      double u1 = *it++;
      double u2 = *it++;
      g->SetPayoffs({i, j}, {u1, u2});
    }
  }
  return *g;
}

TEST(SupportEnumerationTest, MatchingPennies) {
  NormalFormGame g = Make2x2({1, -1, -1, 1, -1, 1, 1, -1});
  auto eq = std::move(SupportEnumerationEquilibria(g).value());
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_FALSE(eq[0].IsPure());
  EXPECT_NEAR(eq[0].p1[0], 0.5, 1e-9);
  EXPECT_NEAR(eq[0].p2[0], 0.5, 1e-9);
  EXPECT_NEAR(eq[0].payoff1, 0.0, 1e-9);
}

TEST(SupportEnumerationTest, PrisonersDilemma) {
  NormalFormGame g = Make2x2({3, 3, 0, 5, 5, 0, 1, 1});
  auto eq = std::move(SupportEnumerationEquilibria(g).value());
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_TRUE(eq[0].IsPure());
  EXPECT_NEAR(eq[0].p1[1], 1.0, 1e-9);  // defect
  EXPECT_NEAR(eq[0].p2[1], 1.0, 1e-9);
}

TEST(SupportEnumerationTest, BattleOfSexesFindsAllThree) {
  NormalFormGame g = Make2x2({2, 1, 0, 0, 0, 0, 1, 2});
  auto eq = std::move(SupportEnumerationEquilibria(g).value());
  ASSERT_EQ(eq.size(), 3u);
  int pure = 0, mixed = 0;
  for (const auto& e : eq) {
    e.IsPure() ? ++pure : ++mixed;
  }
  EXPECT_EQ(pure, 2);
  EXPECT_EQ(mixed, 1);
}

TEST(SupportEnumerationTest, AgreesWithPureEnumeration) {
  // Every pure NE found by brute force must appear in the support
  // enumeration output, across a grid of honesty games.
  for (double f : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    for (double p : {0.0, 20.0, 60.0}) {
      NormalFormGame g =
          std::move(MakeSymmetricAuditedGame(10, 25, 8, f, p).value());
      auto pure = PureNashEquilibria(g);
      auto all = std::move(SupportEnumerationEquilibria(g).value());
      for (const StrategyProfile& ne : pure) {
        bool present = false;
        for (const auto& mixed : all) {
          if (mixed.IsPure() &&
              mixed.p1[static_cast<size_t>(ne[0])] > 0.5 &&
              mixed.p2[static_cast<size_t>(ne[1])] > 0.5) {
            present = true;
          }
        }
        EXPECT_TRUE(present) << "f=" << f << " p=" << p;
      }
    }
  }
}

TEST(SupportEnumerationTest, AgreesWith2x2Solver) {
  NormalFormGame g = Make2x2({2, 1, 0, 0, 0, 0, 1, 2});
  auto general = std::move(SupportEnumerationEquilibria(g).value());
  auto special = AllEquilibria2x2(g);
  EXPECT_EQ(general.size(), special.size());
}

TEST(SupportEnumerationTest, ThreeByThreeCyclicGame) {
  // Rock-paper-scissors: unique equilibrium, uniform (1/3, 1/3, 1/3).
  Result<NormalFormGame> g = NormalFormGame::Create({3, 3});
  ASSERT_TRUE(g.ok());
  // 0 beats 2, 1 beats 0, 2 beats 1.
  int beats[3] = {2, 0, 1};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double u1 = (beats[i] == j) ? 1 : (beats[j] == i ? -1 : 0);
      g->SetPayoffs({i, j}, {u1, -u1});
    }
  }
  auto eq = std::move(SupportEnumerationEquilibria(*g).value());
  ASSERT_EQ(eq.size(), 1u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR(eq[0].p1[static_cast<size_t>(s)], 1.0 / 3, 1e-9);
    EXPECT_NEAR(eq[0].p2[static_cast<size_t>(s)], 1.0 / 3, 1e-9);
  }
}

TEST(SupportEnumerationTest, AsymmetricSupportsGame) {
  // 2x3 game where player 2's third strategy is strictly dominated;
  // equilibria live on 2x2 sub-supports.
  Result<NormalFormGame> g = NormalFormGame::Create({2, 3});
  ASSERT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {1, 1});
  g->SetPayoffs({0, 1}, {0, 0});
  g->SetPayoffs({0, 2}, {2, -1});
  g->SetPayoffs({1, 0}, {0, 0});
  g->SetPayoffs({1, 1}, {1, 1});
  g->SetPayoffs({1, 2}, {0, -1});
  auto eq = std::move(SupportEnumerationEquilibria(*g).value());
  // Two pure coordination equilibria + one mixed.
  ASSERT_GE(eq.size(), 2u);
  for (const auto& e : eq) {
    EXPECT_NEAR(e.p2[2], 0.0, 1e-9);  // dominated strategy never played
    EXPECT_TRUE(IsMixedNashEquilibrium(*g, e.p1, e.p2));
  }
}

TEST(SupportEnumerationTest, EveryRandomGameHasAnEquilibrium) {
  // Nash's theorem, checked constructively on random 3x3 games.
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    Result<NormalFormGame> g = NormalFormGame::Create({3, 3});
    ASSERT_TRUE(g.ok());
    for (size_t idx = 0; idx < g->num_profiles(); ++idx) {
      StrategyProfile p = g->ProfileFromIndex(idx);
      g->SetPayoffs(p, {rng.UniformDouble() * 10, rng.UniformDouble() * 10});
    }
    auto eq = std::move(SupportEnumerationEquilibria(*g).value());
    EXPECT_GE(eq.size(), 1u) << "trial " << trial;
    for (const auto& e : eq) {
      EXPECT_TRUE(IsMixedNashEquilibrium(*g, e.p1, e.p2)) << trial;
    }
  }
}

TEST(SupportEnumerationTest, BoundaryHonestyGameHasMixedVertices) {
  // Exactly at the Observation 2 boundary the players are indifferent:
  // both (H,H) and (C,C) are equilibria.
  double f_star = CriticalFrequency(10, 25, 40);
  NormalFormGame g =
      std::move(MakeSymmetricAuditedGame(10, 25, 8, f_star, 40).value());
  auto eq = std::move(SupportEnumerationEquilibria(g).value());
  bool has_hh = false, has_cc = false;
  for (const auto& e : eq) {
    if (e.IsPure() && e.p1[kHonest] > 0.5 && e.p2[kHonest] > 0.5) has_hh = true;
    if (e.IsPure() && e.p1[kCheat] > 0.5 && e.p2[kCheat] > 0.5) has_cc = true;
  }
  EXPECT_TRUE(has_hh);
  EXPECT_TRUE(has_cc);
}

TEST(SupportEnumerationTest, Validation) {
  Result<NormalFormGame> three = NormalFormGame::Create({2, 2, 2});
  ASSERT_TRUE(three.ok());
  EXPECT_FALSE(SupportEnumerationEquilibria(*three).ok());

  Result<NormalFormGame> big = NormalFormGame::Create({17, 2});
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(SupportEnumerationEquilibria(*big).ok());
}

}  // namespace
}  // namespace hsis::game

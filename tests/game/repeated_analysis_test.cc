#include "game/repeated_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/thresholds.h"

namespace hsis::game {
namespace {

constexpr double kB = 10, kF = 25;

TEST(RepeatedAnalysisTest, PureRepetitionClosedForm) {
  // delta* = (F - B)/L with no auditing.
  EXPECT_DOUBLE_EQ(CriticalDiscount(kB, kF, /*loss=*/20), 15.0 / 20);
  EXPECT_DOUBLE_EQ(CriticalDiscount(kB, kF, /*loss=*/30), 0.5);
}

TEST(RepeatedAnalysisTest, RepetitionCannotHelpWhenLossTooSmall) {
  // L < F - B: even delta -> 1 cannot deter; and L = 0 has no bite.
  EXPECT_TRUE(std::isinf(CriticalDiscount(kB, kF, /*loss=*/10)));
  EXPECT_TRUE(std::isinf(CriticalDiscount(kB, kF, /*loss=*/0)));
}

TEST(RepeatedAnalysisTest, StageDeterrenceNeedsNoPatience) {
  // With a transformative device the stage game deters: delta* = 0.
  double p_star = CriticalPenalty(kB, kF, 0.3);
  EXPECT_DOUBLE_EQ(CriticalDiscount(kB, kF, 8, 0.3, p_star + 1), 0.0);
}

TEST(RepeatedAnalysisTest, AuditingLowersTheRequiredPatience) {
  // delta* decreases as f or P grows.
  double no_audit = CriticalDiscount(kB, kF, 20);
  double some_audit = CriticalDiscount(kB, kF, 20, 0.2, 10);
  double more_audit = CriticalDiscount(kB, kF, 20, 0.3, 10);
  EXPECT_LT(some_audit, no_audit);
  EXPECT_LT(more_audit, some_audit);
}

TEST(RepeatedAnalysisTest, SustainabilityPredicate) {
  double d_star = CriticalDiscount(kB, kF, 20);  // 0.75
  EXPECT_FALSE(GrimTriggerSustainsHonesty(kB, kF, 20, 0, 0, d_star - 0.01));
  EXPECT_TRUE(GrimTriggerSustainsHonesty(kB, kF, 20, 0, 0, d_star + 0.01));
}

TEST(RepeatedAnalysisTest, VerifiedAgainstDiscountedStreams) {
  // Direct check of the incentive inequality at the threshold using the
  // explicit value functions: honest stream vs deviate-then-punished.
  const double loss = 20, f = 0.1, penalty = 5;
  double deviation = (1 - f) * kF - f * penalty;
  double punishment = deviation - (1 - f) * loss;
  double d_star = CriticalDiscount(kB, kF, loss, f, penalty);
  ASSERT_GT(d_star, 0);
  ASSERT_LT(d_star, 1);

  for (double delta : {d_star - 0.05, d_star + 0.05}) {
    double honest_value = DiscountedValue(kB, delta);
    double deviate_value = DeviationValue(deviation, punishment, delta);
    if (delta > d_star) {
      EXPECT_GE(honest_value, deviate_value) << delta;
    } else {
      EXPECT_LT(honest_value, deviate_value) << delta;
    }
  }
  // At the threshold, exact indifference.
  EXPECT_NEAR(DiscountedValue(kB, d_star),
              DeviationValue(deviation, punishment, d_star), 1e-9);
}

TEST(RepeatedAnalysisTest, GeneralizedFrequencyReducesToObservation2) {
  // delta = 0 recovers (F - B)/(F + P) exactly.
  for (double p : {0.0, 10.0, 40.0}) {
    EXPECT_DOUBLE_EQ(CriticalFrequencyWithPatience(kB, kF, 8, p, 0.0),
                     CriticalFrequency(kB, kF, p));
  }
}

TEST(RepeatedAnalysisTest, PatienceShrinksTheRequiredFrequency) {
  const double loss = 12, penalty = 10;
  double f0 = CriticalFrequencyWithPatience(kB, kF, loss, penalty, 0.0);
  double f_half = CriticalFrequencyWithPatience(kB, kF, loss, penalty, 0.5);
  double f_patient = CriticalFrequencyWithPatience(kB, kF, loss, penalty, 0.9);
  EXPECT_GT(f0, f_half);
  EXPECT_GT(f_half, f_patient);
}

TEST(RepeatedAnalysisTest, EnoughPatienceNeedsNoAuditsAtAll) {
  // F - delta L <= B: pure repetition sustains honesty, f* = 0.
  // With L = 20, delta >= 0.75 gives F - delta L <= 10 = B.
  EXPECT_DOUBLE_EQ(CriticalFrequencyWithPatience(kB, kF, 20, 0, 0.8), 0.0);
  EXPECT_GT(CriticalFrequencyWithPatience(kB, kF, 20, 0, 0.7), 0.0);
}

TEST(RepeatedAnalysisTest, FrequencyPatienceConsistency) {
  // Operating exactly at f*(delta) makes delta exactly critical.
  const double loss = 15, penalty = 8;
  for (double delta : {0.2, 0.5, 0.7}) {
    double f = CriticalFrequencyWithPatience(kB, kF, loss, penalty, delta);
    if (f <= 0 || f >= 1) continue;
    double d_star = CriticalDiscount(kB, kF, loss, f, penalty);
    EXPECT_NEAR(d_star, delta, 1e-9) << "delta " << delta;
  }
}

TEST(RepeatedAnalysisTest, DiscountedValueBasics) {
  EXPECT_DOUBLE_EQ(DiscountedValue(10, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(DiscountedValue(10, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(DeviationValue(25, 5, 0.5), 25 + 5.0);
}

}  // namespace
}  // namespace hsis::game

// Determinism suite for the parallel sweep engine: every parallelized
// sweep must produce bit-identical results at threads = 1, 2, and
// hardware concurrency. The threads = 1 path executes the exact
// arithmetic of the historical serial implementation, so equality with
// it is equality with the pre-parallelism output.

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/mechanism_designer.h"
#include "game/landscape.h"

namespace hsis::game {
namespace {

const int kThreadCounts[] = {2, 0};  // compared against threads = 1

template <typename Row>
void ExpectRowsIdentical(const std::vector<Row>& a, const std::vector<Row>& b);

template <>
void ExpectRowsIdentical(const std::vector<FrequencySweepRow>& a,
                         const std::vector<FrequencySweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].frequency, b[i].frequency) << i;
    EXPECT_EQ(a[i].analytic_region, b[i].analytic_region) << i;
    EXPECT_EQ(a[i].nash_equilibria, b[i].nash_equilibria) << i;
    EXPECT_EQ(a[i].honest_is_dse, b[i].honest_is_dse) << i;
    EXPECT_EQ(a[i].analytic_matches_enumeration,
              b[i].analytic_matches_enumeration)
        << i;
  }
}

template <>
void ExpectRowsIdentical(const std::vector<PenaltySweepRow>& a,
                         const std::vector<PenaltySweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].penalty, b[i].penalty) << i;
    EXPECT_EQ(a[i].analytic_region, b[i].analytic_region) << i;
    EXPECT_EQ(a[i].nash_equilibria, b[i].nash_equilibria) << i;
    EXPECT_EQ(a[i].honest_is_dse, b[i].honest_is_dse) << i;
    EXPECT_EQ(a[i].analytic_matches_enumeration,
              b[i].analytic_matches_enumeration)
        << i;
  }
}

template <>
void ExpectRowsIdentical(const std::vector<AsymmetricGridCell>& a,
                         const std::vector<AsymmetricGridCell>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].f1, b[i].f1) << i;
    EXPECT_EQ(a[i].f2, b[i].f2) << i;
    EXPECT_EQ(a[i].analytic_region, b[i].analytic_region) << i;
    EXPECT_EQ(a[i].nash_equilibria, b[i].nash_equilibria) << i;
    EXPECT_EQ(a[i].analytic_matches_enumeration,
              b[i].analytic_matches_enumeration)
        << i;
  }
}

template <>
void ExpectRowsIdentical(const std::vector<NPlayerBandRow>& a,
                         const std::vector<NPlayerBandRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].penalty, b[i].penalty) << i;
    EXPECT_EQ(a[i].analytic_honest_count, b[i].analytic_honest_count) << i;
    EXPECT_EQ(a[i].equilibrium_honest_counts, b[i].equilibrium_honest_counts)
        << i;
    EXPECT_EQ(a[i].honest_is_dominant, b[i].honest_is_dominant) << i;
    EXPECT_EQ(a[i].cheat_is_dominant, b[i].cheat_is_dominant) << i;
    EXPECT_EQ(a[i].analytic_matches_enumeration,
              b[i].analytic_matches_enumeration)
        << i;
  }
}

TEST(ParallelSweepDeterminismTest, SweepFrequency) {
  auto serial = SweepFrequency(10, 25, 8, 40, 101, 1);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    auto parallel = SweepFrequency(10, 25, 8, 40, 101, threads);
    ASSERT_TRUE(parallel.ok());
    ExpectRowsIdentical(*serial, *parallel);
  }
}

TEST(ParallelSweepDeterminismTest, SweepPenalty) {
  auto serial = SweepPenalty(10, 25, 8, 0.2, 120, 101, 1);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    auto parallel = SweepPenalty(10, 25, 8, 0.2, 120, 101, threads);
    ASSERT_TRUE(parallel.ok());
    ExpectRowsIdentical(*serial, *parallel);
  }
}

TwoPlayerGameParams AsymmetricParams() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  return params;
}

TEST(ParallelSweepDeterminismTest, SweepAsymmetricGrid) {
  auto serial = SweepAsymmetricGrid(AsymmetricParams(), 31, 1);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    auto parallel = SweepAsymmetricGrid(AsymmetricParams(), 31, threads);
    ASSERT_TRUE(parallel.ok());
    ExpectRowsIdentical(*serial, *parallel);
  }
}

TEST(ParallelSweepDeterminismTest, SweepNPlayerPenalty) {
  NPlayerHonestyGame::Params params;
  params.n = 8;
  params.benefit = 10;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.uniform_loss = 4;
  double top = NPlayerPenaltyBound(10, params.gain, 0.3, params.n - 1);

  auto serial = SweepNPlayerPenalty(params, top * 1.2, 101, 1);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    auto parallel = SweepNPlayerPenalty(params, top * 1.2, 101, threads);
    ASSERT_TRUE(parallel.ok());
    ExpectRowsIdentical(*serial, *parallel);
  }
}

TEST(ParallelSweepDeterminismTest, ErrorsIndependentOfThreadCount) {
  for (int threads : {1, 2, 0}) {
    EXPECT_FALSE(SweepFrequency(10, 25, 8, 40, 0, threads).ok());
    EXPECT_FALSE(SweepAsymmetricGrid(AsymmetricParams(), 0, threads).ok());
  }
}

TEST(MechanismDesignerGridSearchTest, DeterministicAcrossThreadCounts) {
  auto designer = core::MechanismDesigner::Create(10, 25).value();
  core::MechanismDesigner::GridSearchConfig config;
  config.max_penalty = 120;
  config.audit_cost = 3.5;
  config.cost_per_unit_penalty = 0.01;

  config.threads = 1;
  auto serial = designer.GridSearchCheapestTransformative(config);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    config.threads = threads;
    auto parallel = designer.GridSearchCheapestTransformative(config);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->frequency, parallel->frequency);
    EXPECT_EQ(serial->penalty, parallel->penalty);
    EXPECT_EQ(serial->expected_audit_cost, parallel->expected_audit_cost);
    EXPECT_EQ(serial->effectiveness, parallel->effectiveness);
  }
}

TEST(MechanismDesignerGridSearchTest, FindsTransformativePoint) {
  auto designer = core::MechanismDesigner::Create(10, 25).value();
  core::MechanismDesigner::GridSearchConfig config;
  config.max_penalty = 100;
  config.audit_cost = 2.0;
  auto point = designer.GridSearchCheapestTransformative(config);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->effectiveness, DeviceEffectiveness::kTransformative);
  // The grid optimum cannot beat the analytic minimum frequency for the
  // largest allowed penalty.
  EXPECT_GE(point->frequency, CriticalFrequency(10, 25, 100));
  EXPECT_LE(point->frequency, 1.0);
}

TEST(MechanismDesignerGridSearchTest, ValidatesConfig) {
  auto designer = core::MechanismDesigner::Create(10, 25).value();
  core::MechanismDesigner::GridSearchConfig config;
  config.max_penalty = -1;
  EXPECT_FALSE(designer.GridSearchCheapestTransformative(config).ok());
  config.max_penalty = 10;
  config.frequency_steps = 1;
  EXPECT_FALSE(designer.GridSearchCheapestTransformative(config).ok());
}

}  // namespace
}  // namespace hsis::game

#include "game/landscape.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hsis::game {
namespace {

constexpr double kB = 10, kF = 25, kL = 8;

TEST(ProfileLabelTest, Labels) {
  EXPECT_EQ(ProfileLabel({kHonest, kCheat}), "HC");
  EXPECT_EQ(ProfileLabel({kCheat, kCheat, kHonest}), "CCH");
}

TEST(Figure1Test, FrequencySweepMatchesObservation2) {
  const double penalty = 50;
  Result<std::vector<FrequencySweepRow>> rows =
      SweepFrequency(kB, kF, kL, penalty, 101);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 101u);

  double f_star = CriticalFrequency(kB, kF, penalty);
  for (const FrequencySweepRow& row : *rows) {
    EXPECT_TRUE(row.analytic_matches_enumeration)
        << "mismatch at f = " << row.frequency;
    if (row.frequency < f_star - 1e-9) {
      EXPECT_EQ(row.analytic_region, SymmetricRegion::kAllCheatUniqueDse);
      EXPECT_FALSE(row.honest_is_dse);
    } else if (row.frequency > f_star + 1e-9) {
      EXPECT_EQ(row.analytic_region, SymmetricRegion::kAllHonestUniqueDse);
      EXPECT_TRUE(row.honest_is_dse);
    }
  }
}

TEST(Figure1Test, CrossoverLocatedAtClosedForm) {
  const double penalty = 50;
  Result<std::vector<FrequencySweepRow>> rows =
      SweepFrequency(kB, kF, kL, penalty, 1001);
  ASSERT_TRUE(rows.ok());
  // First all-honest row sits within one grid step of f*.
  double f_star = CriticalFrequency(kB, kF, penalty);
  double first_honest = 2.0;
  for (const FrequencySweepRow& row : *rows) {
    if (row.analytic_region == SymmetricRegion::kAllHonestUniqueDse) {
      first_honest = row.frequency;
      break;
    }
  }
  EXPECT_NEAR(first_honest, f_star, 1.0 / 1000 + 1e-9);
}

TEST(Figure2Test, PenaltySweepMatchesObservation3LowFrequency) {
  const double f = 0.2;  // below (F-B)/F = 0.6: both regimes appear
  Result<std::vector<PenaltySweepRow>> rows =
      SweepPenalty(kB, kF, kL, f, 100, 101);
  ASSERT_TRUE(rows.ok());
  double p_star = CriticalPenalty(kB, kF, f);
  bool saw_cheat = false, saw_honest = false;
  for (const PenaltySweepRow& row : *rows) {
    EXPECT_TRUE(row.analytic_matches_enumeration)
        << "mismatch at P = " << row.penalty;
    if (row.penalty < p_star - 1e-9) {
      EXPECT_EQ(row.analytic_region, SymmetricRegion::kAllCheatUniqueDse);
      saw_cheat = true;
    } else if (row.penalty > p_star + 1e-9) {
      EXPECT_EQ(row.analytic_region, SymmetricRegion::kAllHonestUniqueDse);
      saw_honest = true;
    }
  }
  EXPECT_TRUE(saw_cheat);
  EXPECT_TRUE(saw_honest);
}

TEST(Figure2Test, HighFrequencyRegimeIsAllHonestEverywhere) {
  // f > (F-B)/F: (H,H) unique from P = 0 on (the paper's upper diagram).
  const double f = 0.7;
  ASSERT_GT(f, ZeroPenaltyFrequency(kB, kF));
  Result<std::vector<PenaltySweepRow>> rows =
      SweepPenalty(kB, kF, kL, f, 100, 51);
  ASSERT_TRUE(rows.ok());
  for (const PenaltySweepRow& row : *rows) {
    EXPECT_EQ(row.analytic_region, SymmetricRegion::kAllHonestUniqueDse);
    EXPECT_TRUE(row.analytic_matches_enumeration);
    EXPECT_TRUE(row.honest_is_dse);
  }
}

TEST(Figure3Test, GridShowsAllFourRegions) {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {8, 22};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  Result<std::vector<AsymmetricGridCell>> cells =
      SweepAsymmetricGrid(params, 21);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 21u * 21u);

  int region_counts[5] = {0, 0, 0, 0, 0};
  for (const AsymmetricGridCell& cell : *cells) {
    EXPECT_TRUE(cell.analytic_matches_enumeration)
        << "mismatch at (" << cell.f1 << ", " << cell.f2 << ")";
    region_counts[static_cast<int>(cell.analytic_region)]++;
  }
  EXPECT_GT(region_counts[static_cast<int>(AsymmetricRegion::kBothCheat)], 0);
  EXPECT_GT(region_counts[static_cast<int>(AsymmetricRegion::kOnlyP1Cheats)], 0);
  EXPECT_GT(region_counts[static_cast<int>(AsymmetricRegion::kOnlyP2Cheats)], 0);
  EXPECT_GT(region_counts[static_cast<int>(AsymmetricRegion::kBothHonest)], 0);
}

TEST(Figure4Test, NPlayerBandsMatchTheorem1) {
  NPlayerHonestyGame::Params params;
  params.n = 8;
  params.benefit = 10;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.uniform_loss = 4;

  double top = NPlayerPenaltyBound(params.benefit, params.gain,
                                   params.frequency, params.n - 1);
  Result<std::vector<NPlayerBandRow>> rows =
      SweepNPlayerPenalty(params, top * 1.2, 201);
  ASSERT_TRUE(rows.ok());

  int prev_count = -1;
  for (const NPlayerBandRow& row : *rows) {
    EXPECT_TRUE(row.analytic_matches_enumeration)
        << "mismatch at P = " << row.penalty;
    // The honest count is monotone nondecreasing in the penalty.
    EXPECT_GE(row.analytic_honest_count, prev_count);
    prev_count = row.analytic_honest_count;
  }
  EXPECT_EQ(rows->front().analytic_honest_count, 0);
  EXPECT_EQ(rows->back().analytic_honest_count, params.n);
  EXPECT_TRUE(rows->back().honest_is_dominant);
  EXPECT_TRUE(rows->front().cheat_is_dominant);
}

TEST(Figure4Test, EveryBandIsVisited) {
  NPlayerHonestyGame::Params params;
  params.n = 5;
  params.benefit = 10;
  params.gain = LinearGain(20, 3);
  params.frequency = 0.4;
  params.uniform_loss = 2;

  double top = NPlayerPenaltyBound(params.benefit, params.gain,
                                   params.frequency, params.n - 1);
  Result<std::vector<NPlayerBandRow>> rows =
      SweepNPlayerPenalty(params, top * 1.1, 400);
  ASSERT_TRUE(rows.ok());
  std::set<int> seen;
  for (const NPlayerBandRow& row : *rows) seen.insert(row.analytic_honest_count);
  for (int x = 0; x <= params.n; ++x) {
    EXPECT_TRUE(seen.count(x)) << "band x = " << x << " never visited";
  }
}

TEST(SweepValidationTest, RejectsBadArguments) {
  EXPECT_FALSE(SweepFrequency(kB, kF, kL, 10, 0).ok());
  EXPECT_FALSE(SweepPenalty(kB, kF, kL, 0.2, 10, 0).ok());
  NPlayerHonestyGame::Params p;
  p.n = 4;
  p.benefit = 10;
  p.gain = LinearGain(20, 1);
  p.frequency = 0;  // Theorem 1 needs f > 0
  EXPECT_FALSE(SweepNPlayerPenalty(p, 100, 10).ok());
}

}  // namespace
}  // namespace hsis::game

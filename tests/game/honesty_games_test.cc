#include "game/honesty_games.h"

#include <gtest/gtest.h>

#include "game/equilibrium.h"

namespace hsis::game {
namespace {

// Baseline economics used throughout: B = 10, F = 25 (> B), L = 8.
constexpr double kB = 10, kF = 25, kL = 8;

TEST(TwoPlayerParamsTest, ValidationRules) {
  EXPECT_TRUE(TwoPlayerGameParams::Symmetric(kB, kF, kL).Validate().ok());
  // F <= B violates the paper's standing assumption.
  EXPECT_FALSE(TwoPlayerGameParams::Symmetric(10, 10, kL).Validate().ok());
  EXPECT_FALSE(TwoPlayerGameParams::Symmetric(10, 5, kL).Validate().ok());
  EXPECT_FALSE(TwoPlayerGameParams::Symmetric(-1, 5, kL).Validate().ok());
  EXPECT_FALSE(TwoPlayerGameParams::Symmetric(kB, kF, -1).Validate().ok());
  EXPECT_FALSE(
      TwoPlayerGameParams::Symmetric(kB, kF, kL, 1.5, 0).Validate().ok());
  EXPECT_FALSE(
      TwoPlayerGameParams::Symmetric(kB, kF, kL, 0.5, -1).Validate().ok());
}

// --- Table 1: the no-audit game of Section 3 -----------------------------

TEST(Table1Test, PayoffMatrixMatchesPaper) {
  Result<NormalFormGame> g = MakeNoAuditGame(kB, kF, kL);
  ASSERT_TRUE(g.ok());
  // (H,H): both get B.
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kHonest}, 0), kB);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kHonest}, 1), kB);
  // (H,C): honest player suffers B - L, cheater gets F.
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kCheat}, 0), kB - kL);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kCheat}, 1), kF);
  // (C,H) mirrors.
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kHonest}, 0), kF);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kHonest}, 1), kB - kL);
  // (C,C): F - L each.
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kCheat}, 0), kF - kL);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kCheat}, 1), kF - kL);
}

// Observation 1: with F > B and no auditing, (C,C) is the only NE and DSE,
// irrespective of the value of L.
class Observation1Test : public ::testing::TestWithParam<double> {};

TEST_P(Observation1Test, CheatCheatIsUniqueEquilibrium) {
  double loss = GetParam();
  Result<NormalFormGame> g = MakeNoAuditGame(kB, kF, loss);
  ASSERT_TRUE(g.ok());

  std::vector<StrategyProfile> ne = PureNashEquilibria(*g);
  ASSERT_EQ(ne.size(), 1u);
  EXPECT_EQ(ne[0], (StrategyProfile{kCheat, kCheat}));

  std::optional<StrategyProfile> dse = DominantStrategyEquilibrium(*g);
  ASSERT_TRUE(dse.has_value());
  EXPECT_EQ(*dse, (StrategyProfile{kCheat, kCheat}));

  // (H,H) is not an equilibrium even when cheating destroys value
  // overall (F - L < B).
  EXPECT_FALSE(IsNashEquilibrium(*g, {kHonest, kHonest}));
}

INSTANTIATE_TEST_SUITE_P(LossSweep, Observation1Test,
                         ::testing::Values(0.0, 1.0, 8.0, 20.0, 100.0));

// --- Table 2: the symmetric audited game ---------------------------------

TEST(Table2Test, PayoffMatrixMatchesPaper) {
  const double f = 0.3, P = 40;
  Result<NormalFormGame> g = MakeSymmetricAuditedGame(kB, kF, kL, f, P);
  ASSERT_TRUE(g.ok());

  const double cheat = (1 - f) * kF - f * P;
  const double spill = (1 - f) * kL;

  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kHonest}, 0), kB);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kCheat}, 0), kB - spill);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kCheat}, 1), cheat);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kHonest}, 0), cheat);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kCheat}, 0), cheat - spill);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kCheat}, 1), cheat - spill);
}

TEST(Table2Test, ZeroAuditTermsReduceToTable1) {
  Result<NormalFormGame> audited = MakeSymmetricAuditedGame(kB, kF, kL, 0, 0);
  Result<NormalFormGame> plain = MakeNoAuditGame(kB, kF, kL);
  ASSERT_TRUE(audited.ok() && plain.ok());
  for (size_t i = 0; i < audited->num_profiles(); ++i) {
    StrategyProfile p = audited->ProfileFromIndex(i);
    for (int player = 0; player < 2; ++player) {
      EXPECT_DOUBLE_EQ(audited->Payoff(p, player), plain->Payoff(p, player));
    }
  }
}

// --- Table 3: the asymmetric audited game --------------------------------

TEST(Table3Test, PayoffMatrixMatchesPaper) {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};   // B1, F1
  params.player2 = {6, 20};    // B2, F2
  params.loss_to_1 = 4;        // L21
  params.loss_to_2 = 9;        // L12
  params.audit1 = {0.2, 50};   // f1, P1
  params.audit2 = {0.4, 35};   // f2, P2

  Result<NormalFormGame> g = MakeTwoPlayerHonestyGame(params);
  ASSERT_TRUE(g.ok());

  const double cheat1 = 0.8 * 30 - 0.2 * 50;   // (1-f1)F1 - f1 P1
  const double cheat2 = 0.6 * 20 - 0.4 * 35;   // (1-f2)F2 - f2 P2
  const double spill1 = 0.6 * 4;               // (1-f2) L21
  const double spill2 = 0.8 * 9;               // (1-f1) L12

  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kHonest}, 0), 10);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kHonest}, 1), 6);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kCheat}, 0), 10 - spill1);
  EXPECT_DOUBLE_EQ(g->Payoff({kHonest, kCheat}, 1), cheat2);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kHonest}, 0), cheat1);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kHonest}, 1), 6 - spill2);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kCheat}, 0), cheat1 - spill1);
  EXPECT_DOUBLE_EQ(g->Payoff({kCheat, kCheat}, 1), cheat2 - spill2);
}

TEST(Table3Test, MixedRegionsExist) {
  // Audit Colie heavily, Rowi rarely: the paper's Figure 3 upper-left
  // corner — (C,H) is the unique equilibrium ("poor Colie").
  TwoPlayerGameParams params = TwoPlayerGameParams::Symmetric(kB, kF, kL);
  params.audit1 = {0.05, 20};  // rarely audited
  params.audit2 = {0.9, 20};   // heavily audited
  Result<NormalFormGame> g = MakeTwoPlayerHonestyGame(params);
  ASSERT_TRUE(g.ok());
  std::vector<StrategyProfile> ne = PureNashEquilibria(*g);
  ASSERT_EQ(ne.size(), 1u);
  EXPECT_EQ(ne[0], (StrategyProfile{kCheat, kHonest}));
}

TEST(FormatPayoffMatrixTest, ContainsStrategiesAndValues) {
  Result<NormalFormGame> g = MakeNoAuditGame(kB, kF, kL);
  ASSERT_TRUE(g.ok());
  std::string table = FormatPayoffMatrix(*g, "Rowi", "Colie");
  EXPECT_NE(table.find("Rowi"), std::string::npos);
  EXPECT_NE(table.find("Colie"), std::string::npos);
  EXPECT_NE(table.find("25"), std::string::npos);  // F appears
  EXPECT_NE(table.find("10"), std::string::npos);  // B appears
}

TEST(ActionNameTest, Labels) {
  EXPECT_STREQ(ActionName(kHonest), "H");
  EXPECT_STREQ(ActionName(kCheat), "C");
}

}  // namespace
}  // namespace hsis::game

#include "game/heterogeneous.h"

#include <gtest/gtest.h>

#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/nplayer_game.h"

namespace hsis::game {
namespace {

using Spec = HeterogeneousHonestyGame::PlayerSpec;

Spec MakeSpec(double b, double f_gain, double freq, double penalty) {
  Spec s;
  s.benefit = b;
  s.gain = LinearGain(f_gain, 0);  // constant F_i
  s.frequency = freq;
  s.penalty = penalty;
  return s;
}

TEST(HeterogeneousGameTest, Validation) {
  EXPECT_FALSE(HeterogeneousHonestyGame::Create({MakeSpec(10, 25, 0.3, 10)})
                   .ok());
  std::vector<Spec> bad = {MakeSpec(10, 25, 0.3, 10),
                           MakeSpec(10, 25, 1.5, 10)};
  EXPECT_FALSE(HeterogeneousHonestyGame::Create(bad).ok());
  std::vector<Spec> no_gain = {MakeSpec(10, 25, 0.3, 10), Spec{}};
  EXPECT_FALSE(HeterogeneousHonestyGame::Create(no_gain).ok());
  std::vector<Spec> decreasing = {MakeSpec(10, 25, 0.3, 10),
                                  MakeSpec(10, 25, 0.3, 10)};
  decreasing[1].gain = [](int x) { return 25.0 - x; };
  EXPECT_FALSE(HeterogeneousHonestyGame::Create(decreasing).ok());
}

TEST(HeterogeneousGameTest, SymmetricCaseMatchesHomogeneousGame) {
  // Identical specs must reproduce NPlayerHonestyGame's equilibria.
  NPlayerHonestyGame::Params params;
  params.n = 5;
  params.benefit = 10;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.penalty = 35;
  params.uniform_loss = 4;
  NPlayerHonestyGame homogeneous =
      std::move(NPlayerHonestyGame::Create(params).value());

  std::vector<Spec> specs;
  for (int i = 0; i < 5; ++i) {
    Spec s;
    s.benefit = 10;
    s.gain = LinearGain(20, 2);
    s.frequency = 0.3;
    s.penalty = 35;
    specs.push_back(s);
  }
  HeterogeneousHonestyGame heterogeneous =
      std::move(HeterogeneousHonestyGame::Create(specs).value());

  for (uint32_t mask = 0; mask < 32; ++mask) {
    std::vector<bool> profile(5);
    for (int i = 0; i < 5; ++i) profile[static_cast<size_t>(i)] = (mask >> i) & 1;
    EXPECT_EQ(heterogeneous.IsEquilibrium(profile),
              homogeneous.IsNashEquilibrium(profile))
        << mask;
  }
}

TEST(HeterogeneousGameTest, TwoPlayerMatchesTable3Regions) {
  // The "poor Colie" corner: Rowi rarely audited cheats, Colie heavily
  // audited stays honest.
  std::vector<Spec> specs = {
      MakeSpec(10, 25, 0.05, 20),  // Rowi: rarely audited
      MakeSpec(10, 25, 0.9, 20),   // Colie: heavily audited
  };
  HeterogeneousHonestyGame g =
      std::move(HeterogeneousHonestyGame::Create(specs).value());
  auto equilibria = std::move(g.AllEquilibria().value());
  ASSERT_EQ(equilibria.size(), 1u);
  EXPECT_EQ(equilibria[0], std::vector<bool>({false, true}));  // (C, H)
}

TEST(HeterogeneousGameTest, MixedPopulationEquilibrium) {
  // Three deterred players + two tempted ones: the unique equilibrium
  // has exactly the tempted pair cheating.
  std::vector<Spec> specs;
  for (int i = 0; i < 3; ++i) specs.push_back(MakeSpec(10, 25, 0.8, 50));
  for (int i = 0; i < 2; ++i) specs.push_back(MakeSpec(10, 25, 0.0, 0));
  HeterogeneousHonestyGame g =
      std::move(HeterogeneousHonestyGame::Create(specs).value());
  auto equilibria = std::move(g.AllEquilibria().value());
  ASSERT_EQ(equilibria.size(), 1u);
  EXPECT_EQ(equilibria[0],
            std::vector<bool>({true, true, true, false, false}));
  EXPECT_FALSE(g.IsHonestDominantForAll());
}

TEST(HeterogeneousGameTest, CouplingThroughGainFunctions) {
  // With steep gain functions, a player's rational action depends on
  // how many others are honest: multiple equilibria appear.
  std::vector<Spec> specs;
  for (int i = 0; i < 4; ++i) {
    Spec s;
    s.benefit = 10;
    s.gain = LinearGain(5, 10);  // F(x) = 5 + 10x: honest crowds tempt
    s.frequency = 0.3;
    s.penalty = 20;
    specs.push_back(s);
  }
  HeterogeneousHonestyGame g =
      std::move(HeterogeneousHonestyGame::Create(specs).value());
  // CheatAdvantage(x) = 0.7(5 + 10x) - 6 - 10 = 7x - 12.5:
  // negative at x <= 1, positive at x >= 2 -> both all-honest
  // (nobody wants to cheat alone... check: honest player faces x = 3:
  // adv(3) = 8.5 > 0 -> all-honest is NOT an equilibrium).
  auto equilibria = std::move(g.AllEquilibria().value());
  for (const auto& eq : equilibria) {
    int honest = 0;
    for (bool h : eq) honest += h;
    // Stable mixes only: interior counts where the marginal player is
    // indifferent-ish. Verified directly via the equilibrium check.
    EXPECT_TRUE(g.IsEquilibrium(eq)) << honest;
  }
  EXPECT_FALSE(g.IsEquilibrium(std::vector<bool>(4, true)));
}

TEST(MinPenaltiesTest, PerPlayerThresholds) {
  std::vector<Spec> specs = {
      MakeSpec(10, 25, 0.5, 0),  // needs ((0.5*25)-10)/0.5 = 5
      MakeSpec(5, 50, 0.5, 0),   // needs ((0.5*50)-5)/0.5 = 40
  };
  auto penalties = std::move(MinPenaltiesForAllHonest(specs).value());
  EXPECT_NEAR(penalties[0], 5.0, 1e-3);
  EXPECT_NEAR(penalties[1], 40.0, 1e-3);

  // Applying them makes all-honest dominant.
  specs[0].penalty = penalties[0];
  specs[1].penalty = penalties[1];
  HeterogeneousHonestyGame g =
      std::move(HeterogeneousHonestyGame::Create(specs).value());
  EXPECT_TRUE(g.IsHonestDominantForAll());
}

TEST(MinPenaltiesTest, RejectsUnauditedPlayer) {
  std::vector<Spec> specs = {MakeSpec(10, 25, 0.0, 0),
                             MakeSpec(10, 25, 0.5, 0)};
  EXPECT_FALSE(MinPenaltiesForAllHonest(specs).ok());
}

TEST(MinCostFrequenciesTest, DecoupledOptimum) {
  std::vector<Spec> specs = {
      MakeSpec(10, 25, 0, 40),  // needs f = 15/65
      MakeSpec(10, 25, 0, 5),   // needs f = 15/30
  };
  auto alloc = std::move(MinCostFrequencies(specs, {100, 100}).value());
  EXPECT_NEAR(alloc.frequencies[0], 15.0 / 65, 1e-3);
  EXPECT_NEAR(alloc.frequencies[1], 15.0 / 30, 1e-3);
  EXPECT_NEAR(alloc.total_cost,
              100 * (15.0 / 65 + 15.0 / 30), 0.2);

  // Untempted players need no audits at all.
  std::vector<Spec> saint = {MakeSpec(30, 25, 0, 0), MakeSpec(10, 25, 0, 40)};
  auto alloc2 = std::move(MinCostFrequencies(saint, {100, 100}).value());
  EXPECT_DOUBLE_EQ(alloc2.frequencies[0], 0.0);
}

TEST(MinCostFrequenciesTest, Validation) {
  std::vector<Spec> specs = {MakeSpec(10, 25, 0, 40), MakeSpec(10, 25, 0, 5)};
  EXPECT_FALSE(MinCostFrequencies(specs, {100}).ok());
  EXPECT_FALSE(MinCostFrequencies(specs, {100, -1}).ok());
}

TEST(BudgetedAllocationTest, GreedyFundsCheapestFirst) {
  std::vector<Spec> specs = {
      MakeSpec(10, 25, 0, 200),  // needs f ~ 15/225 = 0.067
      MakeSpec(10, 25, 0, 40),   // needs f ~ 15/65  = 0.231
      MakeSpec(10, 25, 0, 0),    // needs f ~ 15/25  = 0.600
  };
  // Budget covers the first two only.
  auto alloc = std::move(MaxDeterredUnderBudget(specs, 0.4).value());
  EXPECT_EQ(alloc.deterred_count, 2);
  EXPECT_TRUE(alloc.deterred[0]);
  EXPECT_TRUE(alloc.deterred[1]);
  EXPECT_FALSE(alloc.deterred[2]);
  EXPECT_DOUBLE_EQ(alloc.frequencies[2], 0.0);
  EXPECT_LE(alloc.budget_used, 0.4);

  // Bigger budget covers everyone.
  auto full = std::move(MaxDeterredUnderBudget(specs, 1.0).value());
  EXPECT_EQ(full.deterred_count, 3);

  // Zero budget covers nobody tempted.
  auto none = std::move(MaxDeterredUnderBudget(specs, 0.0).value());
  EXPECT_EQ(none.deterred_count, 0);
}

TEST(BudgetedAllocationTest, FundedPlayersAreActuallyDeterred) {
  std::vector<Spec> specs = {
      MakeSpec(10, 25, 0, 200),
      MakeSpec(10, 25, 0, 40),
      MakeSpec(10, 25, 0, 0),
  };
  auto alloc = std::move(MaxDeterredUnderBudget(specs, 0.4).value());
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].frequency = alloc.frequencies[i];
  }
  HeterogeneousHonestyGame g =
      std::move(HeterogeneousHonestyGame::Create(specs).value());
  for (int i = 0; i < g.n(); ++i) {
    if (alloc.deterred[static_cast<size_t>(i)]) {
      EXPECT_LE(g.CheatAdvantage(i, g.n() - 1), 0.0) << i;
    } else {
      EXPECT_GT(g.CheatAdvantage(i, g.n() - 1), 0.0) << i;
    }
  }
}

}  // namespace
}  // namespace hsis::game

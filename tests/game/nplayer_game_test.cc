#include "game/nplayer_game.h"

#include <gtest/gtest.h>

#include "game/equilibrium.h"
#include "game/honesty_games.h"

namespace hsis::game {
namespace {

NPlayerHonestyGame::Params BaseParams(int n) {
  NPlayerHonestyGame::Params p;
  p.n = n;
  p.benefit = 10;
  p.gain = LinearGain(20, 2);
  p.frequency = 0.3;
  p.penalty = 30;
  p.uniform_loss = 4;
  return p;
}

TEST(NPlayerGameTest, CreateValidation) {
  NPlayerHonestyGame::Params p = BaseParams(5);
  EXPECT_TRUE(NPlayerHonestyGame::Create(p).ok());

  p.n = 1;
  EXPECT_FALSE(NPlayerHonestyGame::Create(p).ok());

  p = BaseParams(5);
  p.gain = nullptr;
  EXPECT_FALSE(NPlayerHonestyGame::Create(p).ok());

  p = BaseParams(5);
  p.frequency = 1.5;
  EXPECT_FALSE(NPlayerHonestyGame::Create(p).ok());

  p = BaseParams(5);
  p.gain = [](int x) { return 20.0 - x; };  // decreasing: violates paper
  EXPECT_FALSE(NPlayerHonestyGame::Create(p).ok());

  p = BaseParams(5);
  p.loss_matrix = {{0, 1}, {1, 0}};  // wrong dimension
  EXPECT_FALSE(NPlayerHonestyGame::Create(p).ok());
}

TEST(NPlayerGameTest, PayoffMatchesEquationOne) {
  // Worked example, n = 3, player 0's payoff in each case.
  NPlayerHonestyGame::Params p = BaseParams(3);
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());

  const double f = p.frequency, B = p.benefit, P = p.penalty, L = p.uniform_loss;

  // All honest: u_0 = B.
  EXPECT_DOUBLE_EQ(game->Payoff({true, true, true}, 0), B);

  // Player 0 honest, others cheat: u_0 = B - 2 (1-f) L  (special case in
  // Section 5).
  EXPECT_DOUBLE_EQ(game->Payoff({true, false, false}, 0),
                   B - 2 * (1 - f) * L);

  // Everyone cheats: u_0 = (1-f) F(0) - f P - 2 (1-f) L.
  EXPECT_DOUBLE_EQ(game->Payoff({false, false, false}, 0),
                   (1 - f) * p.gain(0) - f * P - 2 * (1 - f) * L);

  // Player 0 cheats alone: u_0 = (1-f) F(2) - f P.
  EXPECT_DOUBLE_EQ(game->Payoff({false, true, true}, 0),
                   (1 - f) * p.gain(2) - f * P);
}

TEST(NPlayerGameTest, LossMatrixIsDirectional) {
  NPlayerHonestyGame::Params p = BaseParams(3);
  p.uniform_loss = 0;
  p.loss_matrix = {
      {0, 5, 0},  // player 0's cheating hurts player 1 by 5
      {0, 0, 0},
      {0, 0, 0},
  };
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  // Player 0 cheats: player 1 loses (1-f) * 5, player 2 loses nothing.
  double u1 = game->Payoff({false, true, true}, 1);
  double u2 = game->Payoff({false, true, true}, 2);
  EXPECT_DOUBLE_EQ(u1, p.benefit - (1 - p.frequency) * 5);
  EXPECT_DOUBLE_EQ(u2, p.benefit);
}

std::string ProfileLabelForTest(const StrategyProfile& p) {
  std::string out;
  for (int s : p) out += (s == kHonest ? 'H' : 'C');
  return out;
}

TEST(NPlayerGameTest, NashCheckAgreesWithDenseEnumeration) {
  // Cross-validate the O(n) implicit Nash check against brute force on
  // the dense expansion for several operating points.
  for (double penalty : {0.0, 20.0, 45.0, 80.0}) {
    NPlayerHonestyGame::Params p = BaseParams(4);
    p.penalty = penalty;
    Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
    ASSERT_TRUE(game.ok());
    Result<NormalFormGame> dense = game->ToNormalForm();
    ASSERT_TRUE(dense.ok());

    for (size_t idx = 0; idx < dense->num_profiles(); ++idx) {
      StrategyProfile profile = dense->ProfileFromIndex(idx);
      std::vector<bool> honest;
      for (int s : profile) honest.push_back(s == kHonest);
      EXPECT_EQ(game->IsNashEquilibrium(honest),
                IsNashEquilibrium(*dense, profile))
          << "penalty " << penalty << " profile " << ProfileLabelForTest(profile);
    }
  }
}

TEST(NPlayerGameTest, EquilibriumHonestCountsMatchTheorem1) {
  NPlayerHonestyGame::Params p = BaseParams(8);
  const int n = p.n;
  // Pick a penalty strictly inside the x = 5 band.
  double lo = NPlayerPenaltyBound(p.benefit, p.gain, p.frequency, 4);
  double hi = NPlayerPenaltyBound(p.benefit, p.gain, p.frequency, 5);
  p.penalty = (lo + hi) / 2;
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  std::vector<int> counts = game->EquilibriumHonestCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 5);
  EXPECT_EQ(NPlayerEquilibriumHonestCount(n, p.benefit, p.gain, p.frequency,
                                          p.penalty),
            5);
}

TEST(NPlayerGameTest, Proposition1TransformativeRegime) {
  NPlayerHonestyGame::Params p = BaseParams(10);
  double bound = NPlayerPenaltyBound(p.benefit, p.gain, p.frequency, p.n - 1);
  p.penalty = bound + 1;
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->IsHonestDominant());
  EXPECT_FALSE(game->IsCheatDominant());
  std::vector<int> counts = game->EquilibriumHonestCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], p.n);
  EXPECT_TRUE(game->IsNashEquilibrium(std::vector<bool>(10, true)));
  EXPECT_FALSE(game->IsNashEquilibrium(std::vector<bool>(10, false)));
}

TEST(NPlayerGameTest, Proposition2IneffectiveRegime) {
  NPlayerHonestyGame::Params p = BaseParams(10);
  double bound = NPlayerPenaltyBound(p.benefit, p.gain, p.frequency, 0);
  ASSERT_GT(bound, 0);
  p.penalty = bound / 2;
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->IsCheatDominant());
  EXPECT_FALSE(game->IsHonestDominant());
  std::vector<int> counts = game->EquilibriumHonestCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 0);
}

TEST(NPlayerGameTest, TwoPlayerSpecialCaseMatchesTable2) {
  // With n = 2, constant gain F and uniform loss, equation (1) reduces
  // exactly to the Table 2 matrix.
  NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = 10;
  p.gain = LinearGain(25, 0);  // constant F = 25
  p.frequency = 0.3;
  p.penalty = 40;
  p.uniform_loss = 8;
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  Result<NormalFormGame> dense = game->ToNormalForm();
  ASSERT_TRUE(dense.ok());

  Result<NormalFormGame> table2 =
      MakeSymmetricAuditedGame(10, 25, 8, 0.3, 40);
  ASSERT_TRUE(table2.ok());
  for (size_t i = 0; i < dense->num_profiles(); ++i) {
    StrategyProfile profile = dense->ProfileFromIndex(i);
    for (int player = 0; player < 2; ++player) {
      EXPECT_NEAR(dense->Payoff(profile, player),
                  table2->Payoff(profile, player), 1e-9);
    }
  }
}

TEST(NPlayerGameTest, ScalesToThousandPlayers) {
  NPlayerHonestyGame::Params p = BaseParams(1000);
  double bound = NPlayerPenaltyBound(p.benefit, p.gain, p.frequency, p.n - 1);
  p.penalty = bound + 1;
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->IsHonestDominant());
  EXPECT_TRUE(game->IsNashEquilibrium(std::vector<bool>(1000, true)));
  std::vector<int> counts = game->EquilibriumHonestCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 1000);
}

TEST(NPlayerGameTest, DenseExpansionLimit) {
  NPlayerHonestyGame::Params p = BaseParams(25);
  Result<NPlayerHonestyGame> game = NPlayerHonestyGame::Create(p);
  ASSERT_TRUE(game.ok());
  EXPECT_FALSE(game->ToNormalForm().ok());
}

}  // namespace
}  // namespace hsis::game

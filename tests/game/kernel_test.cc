// The kernel layer's contract (game/kernel.h): bit-identical to the
// generic NormalFormGame/PureNashEquilibria path cell-for-cell, the
// same degenerate-sweep semantics as the legacy entry points, a legacy
// fallback above the fixed n-player capacity, a consistent named-sweep
// registry, and — the whole point — zero heap allocations per cell,
// enforced here with a global operator-new counter.

#include "game/kernel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"
#include "game/landscape_shards.h"
#include "game/thresholds.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Every operator-new in the binary funnels
// through here; tests snapshot the counter around kernel calls to prove
// the per-cell paths never touch the heap.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

// GCC pairs inlined `new T` call sites against these malloc-backed
// replacements and warns about the free() inside; the pairing is
// correct by construction (new is replaced for the whole binary).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace hsis::game {
namespace {

constexpr double kB = 10, kF = 25, kL = 8, kP = 40;

TwoPlayerGameParams AsymmetricParams() {
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  return params;
}

NPlayerHonestyGame::Params BandParams(int n) {
  NPlayerHonestyGame::Params params;
  params.n = n;
  params.benefit = 10;
  params.gain = LinearGain(20, 1.5);
  params.frequency = 0.3;
  params.uniform_loss = 4;
  return params;
}

// -------------------------------------------------------------------------
// Bit-identity of the 2x2 kernel against the generic solver stack.
// -------------------------------------------------------------------------

TEST(KernelGameTest, PayoffsBitIdenticalToNormalFormGame) {
  for (double f1 : {0.0, 0.13, 0.5, 0.97, 1.0}) {
    for (double f2 : {0.0, 0.31, 0.85, 1.0}) {
      TwoPlayerGameParams params = AsymmetricParams();
      params.audit1.frequency = f1;
      params.audit2.frequency = f2;
      NormalFormGame generic = MakeTwoPlayerHonestyGame(params).value();
      kernel::Game2x2 fast = kernel::MakeAudited2x2(params);
      for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
          for (int player = 0; player < 2; ++player) {
            EXPECT_EQ(generic.Payoff({r, c}, player),
                      fast.Payoff(r, c, player))
                << "profile (" << r << "," << c << ") player " << player
                << " at f1=" << f1 << " f2=" << f2;
          }
        }
      }
    }
  }
}

TEST(KernelGameTest, NashMaskMatchesGenericEnumeration) {
  for (double f : {0.0, 0.2, 0.4, 0.42857142857142855, 0.6, 0.8, 1.0}) {
    NormalFormGame generic =
        MakeSymmetricAuditedGame(kB, kF, kL, f, kP).value();
    TwoPlayerGameParams params =
        TwoPlayerGameParams::Symmetric(kB, kF, kL, f, kP);
    kernel::ProfileMask2x2 mask =
        kernel::PureNashMask(kernel::MakeAudited2x2(params));

    std::vector<std::string> expected;
    for (const StrategyProfile& p : PureNashEquilibria(generic)) {
      expected.push_back(ProfileLabel(p));
    }
    std::vector<std::string> actual;
    kernel::AppendNashLabels(mask, actual);
    EXPECT_EQ(actual, expected) << "f = " << f;

    std::optional<StrategyProfile> dse = DominantStrategyEquilibrium(generic);
    bool generic_dse =
        dse.has_value() && (*dse)[0] == kHonest && (*dse)[1] == kHonest;
    EXPECT_EQ(kernel::HonestIsDse2x2(kernel::MakeAudited2x2(params)),
              generic_dse)
        << "f = " << f;
  }
}

TEST(KernelGameTest, NashMaskJoinedIsInternedAndProfileOrdered) {
  EXPECT_EQ(kernel::NashMaskJoined(0), "");
  EXPECT_EQ(kernel::NashMaskJoined(kernel::kMaskHH), "HH");
  EXPECT_EQ(kernel::NashMaskJoined(kernel::kMaskHH | kernel::kMaskCC),
            "HH;CC");
  EXPECT_EQ(kernel::NashMaskJoined(kernel::kMaskHC | kernel::kMaskCH),
            "HC;CH");
  EXPECT_EQ(kernel::NashMaskJoined(0xF), "HH;HC;CH;CC");
  // Interned: repeated lookups return the same object.
  EXPECT_EQ(&kernel::NashMaskJoined(kernel::kMaskCC),
            &kernel::NashMaskJoined(kernel::kMaskCC));
  EXPECT_EQ(kernel::MaskCount(0xF), 4);
  EXPECT_EQ(kernel::MaskCount(kernel::kMaskHH | kernel::kMaskCC), 2);
  EXPECT_EQ(kernel::MaskCount(0), 0);
}

// -------------------------------------------------------------------------
// Row-for-row equivalence with the legacy sweep structs.
// -------------------------------------------------------------------------

TEST(KernelRowTest, FrequencyRowsMatchLegacySweep) {
  const int kSteps = 31;
  auto legacy = SweepFrequency(kB, kF, kL, kP, kSteps).value();
  for (size_t i = 0; i < legacy.size(); ++i) {
    kernel::FrequencyRowKernel row =
        kernel::EvalFrequencyRow(kB, kF, kL, kP, kSteps, i).value();
    EXPECT_EQ(row.frequency, legacy[i].frequency);
    EXPECT_EQ(row.region, legacy[i].analytic_region);
    std::vector<std::string> labels;
    kernel::AppendNashLabels(row.nash_mask, labels);
    EXPECT_EQ(labels, legacy[i].nash_equilibria);
    EXPECT_EQ(row.honest_is_dse, legacy[i].honest_is_dse);
    EXPECT_EQ(row.matches, legacy[i].analytic_matches_enumeration);
  }
}

TEST(KernelRowTest, PenaltyRowsMatchLegacySweep) {
  const int kSteps = 41;
  auto legacy = SweepPenalty(kB, kF, kL, 0.2, 120, kSteps).value();
  for (size_t i = 0; i < legacy.size(); ++i) {
    kernel::PenaltyRowKernel row =
        kernel::EvalPenaltyRow(kB, kF, kL, 0.2, 120, kSteps, i).value();
    EXPECT_EQ(row.penalty, legacy[i].penalty);
    EXPECT_EQ(row.region, legacy[i].analytic_region);
    std::vector<std::string> labels;
    kernel::AppendNashLabels(row.nash_mask, labels);
    EXPECT_EQ(labels, legacy[i].nash_equilibria);
    EXPECT_EQ(row.honest_is_dse, legacy[i].honest_is_dse);
    EXPECT_EQ(row.matches, legacy[i].analytic_matches_enumeration);
  }
}

TEST(KernelRowTest, AsymmetricCellsMatchLegacySweep) {
  const int kSteps = 13;
  TwoPlayerGameParams params = AsymmetricParams();
  auto legacy = SweepAsymmetricGrid(params, kSteps).value();
  for (size_t i = 0; i < legacy.size(); ++i) {
    kernel::AsymmetricCellKernel cell =
        kernel::EvalAsymmetricCell(params, kSteps, i).value();
    EXPECT_EQ(cell.f1, legacy[i].f1);
    EXPECT_EQ(cell.f2, legacy[i].f2);
    EXPECT_EQ(cell.region, legacy[i].analytic_region);
    std::vector<std::string> labels;
    kernel::AppendNashLabels(cell.nash_mask, labels);
    EXPECT_EQ(labels, legacy[i].nash_equilibria);
    EXPECT_EQ(cell.matches, legacy[i].analytic_matches_enumeration);
  }
}

TEST(KernelRowTest, NPlayerBandRowsMatchLegacySweep) {
  const int kSteps = 64;
  NPlayerHonestyGame::Params params = BandParams(8);
  auto legacy = SweepNPlayerPenalty(params, 150, kSteps).value();
  kernel::NPlayerKernelParams kp =
      kernel::MakeNPlayerKernelParams(params).value();
  for (size_t i = 0; i < legacy.size(); ++i) {
    kernel::NPlayerBandRowKernel row =
        kernel::EvalNPlayerBandRow(kp, 150, kSteps, i).value();
    EXPECT_EQ(row.penalty, legacy[i].penalty);
    EXPECT_EQ(row.analytic_honest_count, legacy[i].analytic_honest_count);
    std::vector<int> counts;
    kernel::AppendHonestCounts(row.count_mask, counts);
    EXPECT_EQ(counts, legacy[i].equilibrium_honest_counts);
    EXPECT_EQ(row.honest_is_dominant, legacy[i].honest_is_dominant);
    EXPECT_EQ(row.cheat_is_dominant, legacy[i].cheat_is_dominant);
    EXPECT_EQ(row.matches, legacy[i].analytic_matches_enumeration);
  }
}

// -------------------------------------------------------------------------
// Degenerate sweeps: steps == 1 is a valid single-sample sweep, and the
// kernel and legacy entry points agree on the one row it produces.
// -------------------------------------------------------------------------

TEST(KernelDegenerateTest, SingleStepFrequencySweepAgrees) {
  auto legacy = SweepFrequency(kB, kF, kL, kP, 1);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ASSERT_EQ(legacy->size(), 1u);
  EXPECT_EQ((*legacy)[0].frequency, 0.0);

  kernel::FrequencyRowKernel row =
      kernel::EvalFrequencyRow(kB, kF, kL, kP, 1, 0).value();
  EXPECT_EQ(row.frequency, (*legacy)[0].frequency);
  EXPECT_EQ(row.region, (*legacy)[0].analytic_region);
  std::vector<std::string> labels;
  kernel::AppendNashLabels(row.nash_mask, labels);
  EXPECT_EQ(labels, (*legacy)[0].nash_equilibria);

  // The single row is exactly the steps >= 2 range start.
  auto wide = EvalFrequencySweepRow(kB, kF, kL, kP, 21, 0).value();
  EXPECT_EQ(row.frequency, wide.frequency);
  EXPECT_EQ(row.region, wide.analytic_region);
}

TEST(KernelDegenerateTest, SingleStepPenaltyAndGridAndBandsAgree) {
  auto penalty = SweepPenalty(kB, kF, kL, 0.2, 120, 1);
  ASSERT_TRUE(penalty.ok());
  ASSERT_EQ(penalty->size(), 1u);
  EXPECT_EQ((*penalty)[0].penalty, 0.0);
  EXPECT_EQ(kernel::EvalPenaltyRow(kB, kF, kL, 0.2, 120, 1, 0)->penalty, 0.0);

  auto grid = SweepAsymmetricGrid(AsymmetricParams(), 1);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->size(), 1u);
  EXPECT_EQ((*grid)[0].f1, 0.0);
  EXPECT_EQ((*grid)[0].f2, 0.0);

  auto bands = SweepNPlayerPenalty(BandParams(8), 150, 1);
  ASSERT_TRUE(bands.ok());
  ASSERT_EQ(bands->size(), 1u);
  EXPECT_EQ((*bands)[0].penalty, 0.0);
}

TEST(KernelDegenerateTest, ZeroWidthAndOutOfRangeBatches) {
  kernel::FrequencyRowsSoA rows;
  // Zero-width range: valid, resizes to empty.
  EXPECT_TRUE(
      kernel::EvalFrequencyRows(kB, kF, kL, kP, 21, 5, 0, rows).ok());
  EXPECT_EQ(rows.size(), 0u);
  // Range past the index space: rejected.
  EXPECT_FALSE(
      kernel::EvalFrequencyRows(kB, kF, kL, kP, 21, 0, 22, rows).ok());
  EXPECT_FALSE(
      kernel::EvalFrequencyRows(kB, kF, kL, kP, 21, 21, 1, rows).ok());
  // steps < 1 stays invalid everywhere.
  EXPECT_FALSE(kernel::EvalFrequencyRows(kB, kF, kL, kP, 0, 0, 0, rows).ok());
  EXPECT_FALSE(kernel::EvalFrequencyRow(kB, kF, kL, kP, 0, 0).ok());
  EXPECT_FALSE(SweepFrequency(kB, kF, kL, kP, 0).ok());
}

// -------------------------------------------------------------------------
// n-player capacity: n > kMaxKernelPlayers falls back to the legacy
// enumeration with identical rows.
// -------------------------------------------------------------------------

TEST(KernelNPlayerTest, OversizedGameFallsBackToLegacyPath) {
  NPlayerHonestyGame::Params params = BandParams(kernel::kMaxKernelPlayers + 7);
  EXPECT_EQ(kernel::MakeNPlayerKernelParams(params).status().code(),
            StatusCode::kOutOfRange);

  // The public sweep still works (legacy fallback) and its rows agree
  // with a direct game enumeration.
  const int kSteps = 9;
  auto rows = SweepNPlayerPenalty(params, 2000, kSteps);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), static_cast<size_t>(kSteps));
  for (size_t i = 0; i < rows->size(); ++i) {
    NPlayerHonestyGame::Params p = params;
    p.penalty = (*rows)[i].penalty;
    NPlayerHonestyGame game = NPlayerHonestyGame::Create(p).value();
    EXPECT_EQ((*rows)[i].equilibrium_honest_counts,
              game.EquilibriumHonestCounts());
    EXPECT_EQ((*rows)[i].honest_is_dominant, game.IsHonestDominant());
    EXPECT_EQ((*rows)[i].analytic_honest_count,
              NPlayerEquilibriumHonestCount(p.n, p.benefit, p.gain,
                                            p.frequency, p.penalty));
  }
}

TEST(KernelNPlayerTest, KernelAndLegacySingleRowAgreeAtCapacity) {
  NPlayerHonestyGame::Params params = BandParams(kernel::kMaxKernelPlayers);
  auto legacy = EvalNPlayerBandRow(params, 4000, 17, 11).value();
  kernel::NPlayerKernelParams kp =
      kernel::MakeNPlayerKernelParams(params).value();
  kernel::NPlayerBandRowKernel row =
      kernel::NPlayerBandRowAt(kp, 4000, 17, 11);
  EXPECT_EQ(row.penalty, legacy.penalty);
  EXPECT_EQ(row.analytic_honest_count, legacy.analytic_honest_count);
  std::vector<int> counts;
  kernel::AppendHonestCounts(row.count_mask, counts);
  EXPECT_EQ(counts, legacy.equilibrium_honest_counts);
}

// -------------------------------------------------------------------------
// Batch evaluators vs thread counts.
// -------------------------------------------------------------------------

TEST(KernelBatchTest, BatchesBitIdenticalAcrossThreadCounts) {
  const int kSteps = 201;
  kernel::FrequencyRowsSoA serial;
  ASSERT_TRUE(kernel::EvalFrequencyRows(kB, kF, kL, kP, kSteps, 0,
                                        kSteps, serial, 1)
                  .ok());
  for (int threads : {2, 3, 7}) {
    kernel::FrequencyRowsSoA parallel;
    ASSERT_TRUE(kernel::EvalFrequencyRows(kB, kF, kL, kP, kSteps, 0, kSteps,
                                          parallel, threads)
                    .ok());
    EXPECT_EQ(parallel.frequency, serial.frequency) << threads;
    EXPECT_EQ(parallel.nash_mask, serial.nash_mask) << threads;
    EXPECT_EQ(parallel.honest_is_dse, serial.honest_is_dse) << threads;
    EXPECT_EQ(parallel.matches, serial.matches) << threads;
  }
}

TEST(KernelBatchTest, SubrangeMatchesFullSweepSlice) {
  const int kSteps = 101;
  kernel::AsymmetricCellsSoA full, slice;
  TwoPlayerGameParams params = AsymmetricParams();
  size_t total = static_cast<size_t>(kSteps) * kSteps;
  ASSERT_TRUE(
      kernel::EvalAsymmetricCells(params, kSteps, 0, total, full).ok());
  ASSERT_TRUE(
      kernel::EvalAsymmetricCells(params, kSteps, 500, 250, slice).ok());
  for (size_t k = 0; k < slice.size(); ++k) {
    EXPECT_EQ(slice.f1[k], full.f1[500 + k]);
    EXPECT_EQ(slice.f2[k], full.f2[500 + k]);
    EXPECT_EQ(slice.nash_mask[k], full.nash_mask[500 + k]);
  }
}

// -------------------------------------------------------------------------
// Allocation guard: zero heap allocations per cell.
// -------------------------------------------------------------------------

TEST(KernelAllocationTest, PerRowKernelsNeverAllocate) {
  // Warm every lazy static (interned label table, gain tables).
  TwoPlayerGameParams sym = TwoPlayerGameParams::Symmetric(kB, kF, kL, 0.3, kP);
  TwoPlayerGameParams asym = AsymmetricParams();
  kernel::NPlayerKernelParams np =
      kernel::MakeNPlayerKernelParams(BandParams(8)).value();
  for (int m = 0; m < 16; ++m) {
    kernel::NashMaskJoined(static_cast<kernel::ProfileMask2x2>(m));
  }

  size_t before = g_allocations.load();
  kernel::FrequencyRowKernel f = kernel::FrequencyRowAt(kB, kF, kL, kP, 64, 7);
  kernel::PenaltyRowKernel p =
      kernel::PenaltyRowAt(kB, kF, kL, 0.2, 120, 64, 9);
  kernel::AsymmetricCellKernel a = kernel::AsymmetricCellAt(asym, 64, 123);
  kernel::NPlayerBandRowKernel b = kernel::NPlayerBandRowAt(np, 150, 64, 31);
  kernel::Game2x2 g = kernel::MakeAudited2x2(sym);
  kernel::ProfileMask2x2 mask = kernel::PureNashMask(g);
  bool dse = kernel::HonestIsDse2x2(g);
  const std::string& joined = kernel::NashMaskJoined(mask);
  size_t after = g_allocations.load();

  EXPECT_EQ(after - before, 0u)
      << "per-row kernel paths must not touch the heap";
  // Keep every result live so the compiler cannot elide the calls.
  EXPECT_GE(f.frequency + p.penalty + a.f1 + b.penalty, 0.0);
  EXPECT_TRUE(dse || !dse);
  EXPECT_GE(joined.size(), 0u);
}

TEST(KernelAllocationTest, BatchAllocationCountIndependentOfRowCount) {
  // A fresh SoA buffer costs a fixed number of vector allocations; the
  // per-cell loop must add none. Equal counts at 64 and 4096 rows prove
  // the loop is allocation-free.
  auto allocs_for = [&](int steps) {
    kernel::FrequencyRowsSoA rows;
    size_t before = g_allocations.load();
    Status s = kernel::EvalFrequencyRows(kB, kF, kL, kP, steps, 0,
                                         static_cast<size_t>(steps), rows, 1);
    size_t after = g_allocations.load();
    EXPECT_TRUE(s.ok());
    return after - before;
  };
  size_t small = allocs_for(64);
  size_t large = allocs_for(4096);
  EXPECT_EQ(small, large);

  // Reusing an already-sized buffer costs only the fixed per-batch
  // std::function type-erasure of common/parallel.h — identical for
  // every row count, i.e. still zero allocations per cell.
  auto rerun_allocs = [&](int steps) {
    kernel::FrequencyRowsSoA rows;
    EXPECT_TRUE(kernel::EvalFrequencyRows(kB, kF, kL, kP, steps, 0,
                                          static_cast<size_t>(steps), rows, 1)
                    .ok());
    size_t before = g_allocations.load();
    EXPECT_TRUE(kernel::EvalFrequencyRows(kB, kF, kL, kP, steps, 0,
                                          static_cast<size_t>(steps), rows, 1)
                    .ok());
    return g_allocations.load() - before;
  };
  size_t rerun_small = rerun_allocs(256);
  size_t rerun_large = rerun_allocs(8192);
  EXPECT_EQ(rerun_small, rerun_large)
      << "per-batch overhead must not scale with row count";
  EXPECT_LE(rerun_small, 4u) << "sized-buffer re-run should cost at most the "
                                "fixed ParallelFor closure erasure";
}

// -------------------------------------------------------------------------
// Named-sweep registry.
// -------------------------------------------------------------------------

TEST(NamedSweepRegistryTest, RejectsInvalidAndDuplicateRegistrations) {
  NamedSweep valid;
  valid.make_spec = []() -> Result<common::ShardSweepSpec> {
    common::ShardSweepSpec spec;
    spec.name = "kernel_test_sweep";
    spec.total = 1;
    spec.record = [](size_t) -> Result<Bytes> { return ToBytes("1\n"); };
    return spec;
  };
  valid.header = "x\n";
  valid.filename = "kernel_test_sweep.csv";

  EXPECT_EQ(RegisterNamedSweep("", valid).code(),
            StatusCode::kInvalidArgument);
  NamedSweep no_spec = valid;
  no_spec.make_spec = nullptr;
  EXPECT_EQ(RegisterNamedSweep("x1", no_spec).code(),
            StatusCode::kInvalidArgument);
  NamedSweep bad_header = valid;
  bad_header.header = "no-newline";
  EXPECT_EQ(RegisterNamedSweep("x2", bad_header).code(),
            StatusCode::kInvalidArgument);
  NamedSweep no_filename = valid;
  no_filename.filename = "";
  EXPECT_EQ(RegisterNamedSweep("x3", no_filename).code(),
            StatusCode::kInvalidArgument);

  // Builtins and already-registered names are protected.
  EXPECT_EQ(RegisterNamedSweep("figure1", valid).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(RegisterNamedSweep("kernel_test_sweep", valid).ok());
  EXPECT_EQ(RegisterNamedSweep("kernel_test_sweep", valid).code(),
            StatusCode::kAlreadyExists);

  // Registered sweeps resolve through every lookup.
  EXPECT_EQ(LandscapeCsvHeader("kernel_test_sweep").value(), "x\n");
  EXPECT_EQ(LandscapeCsvFilename("kernel_test_sweep").value(),
            "kernel_test_sweep.csv");
  EXPECT_EQ(LandscapeCsv("kernel_test_sweep").value(), "x\n1\n");
  bool listed = false;
  for (const std::string& name : LandscapeSweepNames()) {
    listed |= (name == "kernel_test_sweep");
  }
  EXPECT_TRUE(listed);
}

TEST(NamedSweepRegistryTest, DesignSweepRegistrationIsIdempotent) {
  ASSERT_TRUE(RegisterHeterogeneousDesignSweeps().ok());
  ASSERT_TRUE(RegisterHeterogeneousDesignSweeps().ok());

  int design_names = 0;
  for (const std::string& name : LandscapeSweepNames()) {
    design_names += (name.rfind("design_", 0) == 0);
  }
  EXPECT_EQ(design_names, 3);

  for (const char* name : {"design_min_penalties",
                           "design_min_cost_frequencies",
                           "design_budget_deterrence"}) {
    common::ShardSweepSpec spec = LandscapeSweepSpec(name).value();
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(spec.total, 48u);
    Result<std::string> csv = LandscapeCsv(name, 2);
    ASSERT_TRUE(csv.ok()) << name << ": " << csv.status().ToString();
    int rows = 0;
    for (char c : *csv) rows += (c == '\n');
    EXPECT_EQ(rows, 49) << name;  // header + one row per player
    // Thread count must not change a byte.
    EXPECT_EQ(*csv, LandscapeCsv(name, 1).value()) << name;
  }
}

}  // namespace
}  // namespace hsis::game

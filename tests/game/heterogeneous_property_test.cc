// Property-based tests for `MaxDeterredUnderBudget` over randomized
// seeded player populations: the greedy's output must always respect
// the budget constraint, fund only players it actually deters, and be
// monotone non-decreasing in the budget.

#include <gtest/gtest.h>

#include "common/random.h"
#include "game/equilibrium.h"
#include "game/heterogeneous.h"
#include "game/thresholds.h"

namespace hsis::game {
namespace {

using Spec = HeterogeneousHonestyGame::PlayerSpec;

/// A random consortium drawn from `rng`: 2..40 members with varied
/// temptation profiles, penalties, and (ignored by the search) audit
/// frequencies.
std::vector<Spec> RandomPopulation(Rng& rng) {
  int n = static_cast<int>(rng.UniformInt(2, 40));
  std::vector<Spec> players;
  players.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Spec s;
    s.benefit = rng.UniformDouble() * 30;
    s.gain = LinearGain(rng.UniformDouble() * 60,
                        rng.UniformDouble() * 3);
    s.penalty = rng.UniformDouble() * 80;
    s.frequency = 0.1 + rng.UniformDouble() * 0.8;
    players.push_back(std::move(s));
  }
  return players;
}

constexpr int kTrials = 120;
constexpr double kMargin = 1e-6;

TEST(MaxDeterredPropertyTest, RespectsBudgetConstraint) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1000 + static_cast<uint64_t>(trial));
    std::vector<Spec> players = RandomPopulation(rng);
    double budget = rng.UniformDouble() * static_cast<double>(players.size());
    auto alloc = MaxDeterredUnderBudget(players, budget, kMargin);
    ASSERT_TRUE(alloc.ok()) << "trial " << trial;

    double spent = 0;
    int funded = 0;
    for (size_t i = 0; i < players.size(); ++i) {
      EXPECT_GE(alloc->frequencies[i], 0.0) << trial << "/" << i;
      EXPECT_LE(alloc->frequencies[i], 1.0) << trial << "/" << i;
      if (alloc->deterred[i]) {
        ++funded;
      } else {
        EXPECT_EQ(alloc->frequencies[i], 0.0)
            << "unfunded player got audit budget, trial " << trial;
      }
      spent += alloc->frequencies[i];
    }
    EXPECT_EQ(funded, alloc->deterred_count) << trial;
    EXPECT_LE(alloc->budget_used, budget + 1e-12) << trial;
    EXPECT_NEAR(alloc->budget_used, spent, 1e-9) << trial;
  }
}

TEST(MaxDeterredPropertyTest, FundedPlayersAreActuallyDeterred) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(5000 + static_cast<uint64_t>(trial));
    std::vector<Spec> players = RandomPopulation(rng);
    double budget = rng.UniformDouble() * static_cast<double>(players.size());
    auto alloc = MaxDeterredUnderBudget(players, budget, kMargin);
    ASSERT_TRUE(alloc.ok()) << "trial " << trial;

    // Deploy the plan and check the game-theoretic claim: every funded
    // player's cheating advantage at the worst case is non-positive.
    int worst_case = static_cast<int>(players.size()) - 1;
    for (size_t i = 0; i < players.size(); ++i) {
      if (!alloc->deterred[i]) continue;
      const Spec& p = players[i];
      double f = alloc->frequencies[i];
      double advantage =
          (1 - f) * p.gain(worst_case) - f * p.penalty - p.benefit;
      EXPECT_LE(advantage, kPayoffEpsilon)
          << "funded player " << i << " still tempted, trial " << trial;
    }
  }
}

TEST(MaxDeterredPropertyTest, DeterredCountMonotoneInBudget) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(9000 + static_cast<uint64_t>(trial));
    std::vector<Spec> players = RandomPopulation(rng);
    double max_budget = static_cast<double>(players.size());

    int previous = -1;
    double previous_budget = 0;
    for (double step = 0; step <= 8; ++step) {
      double budget = max_budget * step / 8.0;
      auto alloc = MaxDeterredUnderBudget(players, budget, kMargin);
      ASSERT_TRUE(alloc.ok()) << "trial " << trial;
      EXPECT_GE(alloc->deterred_count, previous)
          << "deterred count dropped from budget " << previous_budget
          << " to " << budget << ", trial " << trial;
      previous = alloc->deterred_count;
      previous_budget = budget;
    }

    // The full-budget plan (everyone's requirement funded) deters all.
    auto everyone = MaxDeterredUnderBudget(players, max_budget, kMargin);
    ASSERT_TRUE(everyone.ok());
    EXPECT_EQ(everyone->deterred_count, static_cast<int>(players.size()))
        << trial;
  }
}

TEST(MaxDeterredPropertyTest, ZeroBudgetFundsOnlyFreeDeterrence) {
  // With budget 0, only players whose required frequency is exactly 0
  // (no temptation: F_i(n-1) <= B_i) can be deterred.
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(13000 + static_cast<uint64_t>(trial));
    std::vector<Spec> players = RandomPopulation(rng);
    auto alloc = MaxDeterredUnderBudget(players, 0.0, kMargin);
    ASSERT_TRUE(alloc.ok()) << trial;
    EXPECT_EQ(alloc->budget_used, 0.0) << trial;
    int worst_case = static_cast<int>(players.size()) - 1;
    for (size_t i = 0; i < players.size(); ++i) {
      EXPECT_EQ(alloc->frequencies[i], 0.0) << trial << "/" << i;
      bool tempted = players[i].gain(worst_case) > players[i].benefit;
      EXPECT_EQ(alloc->deterred[i], !tempted) << trial << "/" << i;
    }
  }
}

}  // namespace
}  // namespace hsis::game

#include "game/equilibrium.h"

#include <gtest/gtest.h>

#include "game/normal_form_game.h"

namespace hsis::game {
namespace {

// Classic 2x2 games used as ground truth for the solvers.

NormalFormGame PrisonersDilemma() {
  // Strategies: 0 = cooperate, 1 = defect. (D,D) unique NE and DSE.
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  EXPECT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {3, 3});
  g->SetPayoffs({0, 1}, {0, 5});
  g->SetPayoffs({1, 0}, {5, 0});
  g->SetPayoffs({1, 1}, {1, 1});
  return *g;
}

NormalFormGame MatchingPennies() {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  EXPECT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {1, -1});
  g->SetPayoffs({0, 1}, {-1, 1});
  g->SetPayoffs({1, 0}, {-1, 1});
  g->SetPayoffs({1, 1}, {1, -1});
  return *g;
}

NormalFormGame Coordination() {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  EXPECT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {2, 2});
  g->SetPayoffs({0, 1}, {0, 0});
  g->SetPayoffs({1, 0}, {0, 0});
  g->SetPayoffs({1, 1}, {1, 1});
  return *g;
}

TEST(NormalFormGameTest, CreateValidatesInput) {
  EXPECT_FALSE(NormalFormGame::Create({}).ok());
  EXPECT_FALSE(NormalFormGame::Create({2, 0}).ok());
  EXPECT_FALSE(NormalFormGame::Create(std::vector<int>(30, 2)).ok());
  EXPECT_TRUE(NormalFormGame::Create({2, 3, 4}).ok());
}

TEST(NormalFormGameTest, ProfileIndexRoundTrip) {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 3, 4});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_profiles(), 24u);
  for (size_t i = 0; i < g->num_profiles(); ++i) {
    EXPECT_EQ(g->ProfileIndex(g->ProfileFromIndex(i)), i);
  }
}

TEST(NormalFormGameTest, PayoffStorage) {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  ASSERT_TRUE(g.ok());
  g->SetPayoff({1, 0}, 0, 3.5);
  g->SetPayoff({1, 0}, 1, -2.0);
  EXPECT_DOUBLE_EQ(g->Payoff({1, 0}, 0), 3.5);
  EXPECT_DOUBLE_EQ(g->Payoff({1, 0}, 1), -2.0);
  EXPECT_DOUBLE_EQ(g->Payoff({0, 1}, 0), 0.0);
}

TEST(BestResponsesTest, PrisonersDilemmaDefectAlways) {
  NormalFormGame g = PrisonersDilemma();
  EXPECT_EQ(BestResponses(g, 0, {0, 0}), std::vector<int>{1});
  EXPECT_EQ(BestResponses(g, 0, {0, 1}), std::vector<int>{1});
  EXPECT_EQ(BestResponses(g, 1, {1, 0}), std::vector<int>{1});
}

TEST(BestResponsesTest, TiesReturnAllArgmaxes) {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  ASSERT_TRUE(g.ok());
  // Player 0 indifferent between both strategies against column 0.
  g->SetPayoff({0, 0}, 0, 1.0);
  g->SetPayoff({1, 0}, 0, 1.0);
  EXPECT_EQ(BestResponses(*g, 0, {0, 0}), (std::vector<int>{0, 1}));
}

TEST(NashTest, PrisonersDilemma) {
  NormalFormGame g = PrisonersDilemma();
  EXPECT_TRUE(IsNashEquilibrium(g, {1, 1}));
  EXPECT_FALSE(IsNashEquilibrium(g, {0, 0}));
  std::vector<StrategyProfile> eq = PureNashEquilibria(g);
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], (StrategyProfile{1, 1}));
}

TEST(NashTest, MatchingPenniesHasNoPureEquilibrium) {
  EXPECT_TRUE(PureNashEquilibria(MatchingPennies()).empty());
}

TEST(NashTest, CoordinationHasTwo) {
  std::vector<StrategyProfile> eq = PureNashEquilibria(Coordination());
  ASSERT_EQ(eq.size(), 2u);
  EXPECT_EQ(eq[0], (StrategyProfile{0, 0}));
  EXPECT_EQ(eq[1], (StrategyProfile{1, 1}));
}

TEST(NashTest, ThreePlayerGame) {
  // Three players, each prefers to match player 1's strategy; player 1
  // prefers strategy 1 outright.
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2, 2});
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < g->num_profiles(); ++i) {
    StrategyProfile p = g->ProfileFromIndex(i);
    g->SetPayoff(p, 0, p[0] == 1 ? 1.0 : 0.0);
    g->SetPayoff(p, 1, p[1] == p[0] ? 1.0 : 0.0);
    g->SetPayoff(p, 2, p[2] == p[0] ? 1.0 : 0.0);
  }
  std::vector<StrategyProfile> eq = PureNashEquilibria(*g);
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], (StrategyProfile{1, 1, 1}));
}

TEST(DominanceTest, PrisonersDilemmaDefectionDominant) {
  NormalFormGame g = PrisonersDilemma();
  EXPECT_TRUE(IsDominantStrategy(g, 0, 1, /*strict=*/true));
  EXPECT_FALSE(IsDominantStrategy(g, 0, 0));
  std::optional<StrategyProfile> dse = DominantStrategyEquilibrium(g);
  ASSERT_TRUE(dse.has_value());
  EXPECT_EQ(*dse, (StrategyProfile{1, 1}));
}

TEST(DominanceTest, CoordinationHasNoDse) {
  EXPECT_FALSE(DominantStrategyEquilibrium(Coordination()).has_value());
}

TEST(DominanceTest, WeakVsStrict) {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  ASSERT_TRUE(g.ok());
  // Strategy 1 weakly (not strictly) dominant for player 0.
  g->SetPayoff({0, 0}, 0, 1.0);
  g->SetPayoff({1, 0}, 0, 1.0);
  g->SetPayoff({0, 1}, 0, 0.0);
  g->SetPayoff({1, 1}, 0, 2.0);
  EXPECT_TRUE(IsDominantStrategy(*g, 0, 1, /*strict=*/false));
  EXPECT_FALSE(IsDominantStrategy(*g, 0, 1, /*strict=*/true));
}

TEST(IesdsTest, PrisonersDilemmaReducesToDefect) {
  std::vector<std::vector<int>> surviving =
      IteratedStrictDominance(PrisonersDilemma());
  EXPECT_EQ(surviving[0], std::vector<int>{1});
  EXPECT_EQ(surviving[1], std::vector<int>{1});
}

TEST(IesdsTest, MatchingPenniesNothingEliminated) {
  std::vector<std::vector<int>> surviving =
      IteratedStrictDominance(MatchingPennies());
  EXPECT_EQ(surviving[0].size(), 2u);
  EXPECT_EQ(surviving[1].size(), 2u);
}

TEST(IesdsTest, IterationCascades) {
  // 3-strategy game where eliminating player 2's strategy unlocks an
  // elimination for player 1 (classic cascade).
  Result<NormalFormGame> g = NormalFormGame::Create({2, 3});
  ASSERT_TRUE(g.ok());
  // Payoffs (p1, p2) laid out row = p1 strategy, col = p2 strategy.
  g->SetPayoffs({0, 0}, {3, 3});
  g->SetPayoffs({0, 1}, {1, 1});
  g->SetPayoffs({0, 2}, {0, 0});
  g->SetPayoffs({1, 0}, {0, 0});
  g->SetPayoffs({1, 1}, {3, 1});
  g->SetPayoffs({1, 2}, {1, 0});
  // Player 2: strategy 0 strictly dominates 2 (3>0, 0... need care):
  // u2 col0 = (3,0); col2 = (0,0) -> not strictly dominated (ties at row1).
  // Make col2 strictly worse:
  g->SetPayoff({1, 2}, 1, -1);
  std::vector<std::vector<int>> surviving = IteratedStrictDominance(*g);
  // col2 eliminated; then rows compared on cols {0,1} only.
  EXPECT_EQ(surviving[1].size(), 2u);
  EXPECT_TRUE(std::find(surviving[1].begin(), surviving[1].end(), 2) ==
              surviving[1].end());
}

TEST(Mixed2x2Test, MatchingPenniesHalfHalf) {
  std::vector<MixedProfile2x2> eq = AllEquilibria2x2(MatchingPennies());
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_FALSE(eq[0].IsPure());
  EXPECT_NEAR(eq[0].p1_strategy0, 0.5, 1e-9);
  EXPECT_NEAR(eq[0].p2_strategy0, 0.5, 1e-9);
}

TEST(Mixed2x2Test, BattleOfSexesThreeEquilibria) {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  ASSERT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {2, 1});
  g->SetPayoffs({0, 1}, {0, 0});
  g->SetPayoffs({1, 0}, {0, 0});
  g->SetPayoffs({1, 1}, {1, 2});
  std::vector<MixedProfile2x2> eq = AllEquilibria2x2(*g);
  ASSERT_EQ(eq.size(), 3u);
  EXPECT_TRUE(eq[0].IsPure());
  EXPECT_TRUE(eq[1].IsPure());
  EXPECT_FALSE(eq[2].IsPure());
  // Mixed: p1 plays 0 with prob 2/3, p2 plays 0 with prob 1/3.
  EXPECT_NEAR(eq[2].p1_strategy0, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(eq[2].p2_strategy0, 1.0 / 3.0, 1e-9);
}

TEST(Mixed2x2Test, DominanceSolvableHasOnlyPure) {
  std::vector<MixedProfile2x2> eq = AllEquilibria2x2(PrisonersDilemma());
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_TRUE(eq[0].IsPure());
}

}  // namespace
}  // namespace hsis::game

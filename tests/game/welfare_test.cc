#include "game/welfare.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/honesty_games.h"
#include "game/landscape.h"
#include "game/thresholds.h"

namespace hsis::game {
namespace {

constexpr double kB = 10, kF = 25, kL = 8;

TEST(WelfareTest, SocialWelfareSumsPayoffs) {
  NormalFormGame g = std::move(MakeNoAuditGame(kB, kF, kL).value());
  EXPECT_DOUBLE_EQ(SocialWelfare(g, {kHonest, kHonest}), 2 * kB);
  EXPECT_DOUBLE_EQ(SocialWelfare(g, {kCheat, kCheat}), 2 * (kF - kL));
  EXPECT_DOUBLE_EQ(SocialWelfare(g, {kHonest, kCheat}),
                   (kB - kL) + kF);
}

TEST(WelfareTest, NoAuditGameWelfareAnalysis) {
  // With L = 8, (C,C) welfare 34 actually exceeds 2B = 20 (cheating is
  // productive in aggregate when L is small); with large L it destroys
  // value.
  NormalFormGame mild = std::move(MakeNoAuditGame(kB, kF, 8).value());
  WelfareAnalysis mild_welfare = std::move(AnalyzeWelfare(mild).value());
  EXPECT_EQ(ProfileLabel(mild_welfare.worst_equilibrium), "CC");

  NormalFormGame harsh = std::move(MakeNoAuditGame(kB, kF, 24).value());
  WelfareAnalysis w = std::move(AnalyzeWelfare(harsh).value());
  // Optimal profile is (H,H) with welfare 20; equilibrium (C,C) gives
  // 2(25-24) = 2.
  EXPECT_EQ(ProfileLabel(w.optimal_profile), "HH");
  EXPECT_DOUBLE_EQ(w.optimal_welfare, 20);
  EXPECT_DOUBLE_EQ(w.equilibrium_welfare, 2);
  EXPECT_DOUBLE_EQ(w.price_of_dishonesty, 10.0);
}

TEST(WelfareTest, TransformativeDeviceRestoresOptimum) {
  double p_star = CriticalPenalty(kB, kF, 0.4);
  NormalFormGame g = std::move(
      MakeSymmetricAuditedGame(kB, kF, 24, 0.4, p_star + 1).value());
  WelfareAnalysis w = std::move(AnalyzeWelfare(g).value());
  EXPECT_EQ(ProfileLabel(w.worst_equilibrium), "HH");
  EXPECT_DOUBLE_EQ(w.equilibrium_welfare, 2 * kB);
  EXPECT_DOUBLE_EQ(w.price_of_dishonesty, 1.0);
}

TEST(WelfareTest, NoPureEquilibriumFlagged) {
  // Matching pennies: no pure NE.
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  ASSERT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {1, -1});
  g->SetPayoffs({0, 1}, {-1, 1});
  g->SetPayoffs({1, 0}, {-1, 1});
  g->SetPayoffs({1, 1}, {1, -1});
  WelfareAnalysis w = std::move(AnalyzeWelfare(*g).value());
  EXPECT_FALSE(w.has_pure_equilibrium);
  EXPECT_TRUE(std::isnan(w.price_of_dishonesty));
}

TEST(WelfareTest, NegativeEquilibriumWelfareGivesInfinitePrice) {
  Result<NormalFormGame> g = NormalFormGame::Create({2, 2});
  ASSERT_TRUE(g.ok());
  g->SetPayoffs({0, 0}, {5, 5});
  g->SetPayoffs({0, 1}, {-10, 6});
  g->SetPayoffs({1, 0}, {6, -10});
  g->SetPayoffs({1, 1}, {-4, -4});  // unique NE, negative welfare
  WelfareAnalysis w = std::move(AnalyzeWelfare(*g).value());
  EXPECT_EQ(ProfileLabel(w.worst_equilibrium), "CC");
  EXPECT_TRUE(std::isinf(w.price_of_dishonesty));
}

TEST(WelfareTest, NPlayerWelfareByHonestCount) {
  NPlayerHonestyGame::Params p;
  p.n = 6;
  p.benefit = kB;
  p.gain = LinearGain(kF, 0);
  p.frequency = 0;
  p.penalty = 0;
  p.uniform_loss = 24;  // cheating destroys aggregate value
  NPlayerHonestyGame game =
      std::move(NPlayerHonestyGame::Create(p).value());
  // All honest: welfare = 6B.
  EXPECT_DOUBLE_EQ(NPlayerWelfareAtHonestCount(game, 6), 6 * kB);
  // Welfare decreases as more players cheat (L > F - B per victim pair).
  double prev = NPlayerWelfareAtHonestCount(game, 6);
  for (int x = 5; x >= 0; --x) {
    double w = NPlayerWelfareAtHonestCount(game, x);
    EXPECT_LT(w, prev) << x;
    prev = w;
  }
}

TEST(WelfareTest, NetWelfareAccountsAuditCost) {
  // Running the device costs n*f*c per round; net welfare at all-honest.
  EXPECT_DOUBLE_EQ(NetWelfareAllHonest(10, kB, 0.3, 5), 100 - 15);
  // Cheaper to audit less when a bigger penalty allows it: net welfare
  // increases as f decreases.
  EXPECT_GT(NetWelfareAllHonest(10, kB, 0.1, 5),
            NetWelfareAllHonest(10, kB, 0.3, 5));
}

TEST(WelfareTest, DeviceWorthItExactlyWhenItRecoversMoreThanItCosts) {
  // Without the device: equilibrium welfare 2(F - L). With it: 2B minus
  // audit cost. The device is socially worthwhile iff
  // 2B - 2 f c > 2(F - L).
  const double loss = 24, f = 0.3, audit_cost = 5;
  double without = 2 * (kF - loss);                 // = 2
  double with_device = NetWelfareAllHonest(2, kB, f, audit_cost);  // 20 - 3
  EXPECT_GT(with_device, without);

  // A pathological device that audits everything at huge cost is not.
  EXPECT_LT(NetWelfareAllHonest(2, kB, 1.0, 15), without + 2 * loss);
}

}  // namespace
}  // namespace hsis::game

#include "game/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hsis::game {
namespace {

int CountLines(const std::string& s) {
  int lines = 0;
  for (char c : s) lines += (c == '\n');
  return lines;
}

std::vector<std::string> SplitCsvLine(const std::string& csv, int line) {
  std::istringstream stream(csv);
  std::string row;
  for (int i = 0; i <= line; ++i) std::getline(stream, row);
  std::vector<std::string> fields;
  std::istringstream row_stream(row);
  std::string field;
  while (std::getline(row_stream, field, ',')) fields.push_back(field);
  return fields;
}

TEST(ReportTest, FrequencySweepCsvShape) {
  auto rows = std::move(SweepFrequency(10, 25, 8, 40, 11).value());
  std::string csv = FrequencySweepToCsv(rows);
  EXPECT_EQ(CountLines(csv), 12);  // header + 11 samples
  auto header = SplitCsvLine(csv, 0);
  ASSERT_EQ(header.size(), 5u);
  EXPECT_EQ(header[0], "frequency");
  EXPECT_EQ(header[4], "matches_enumeration");

  auto first = SplitCsvLine(csv, 1);
  EXPECT_EQ(first[0], "0");
  EXPECT_EQ(first[1], "all_cheat");
  EXPECT_EQ(first[2], "CC");
  EXPECT_EQ(first[4], "1");

  auto last = SplitCsvLine(csv, 11);
  EXPECT_EQ(last[0], "1");
  EXPECT_EQ(last[1], "all_honest");
  EXPECT_EQ(last[2], "HH");
  EXPECT_EQ(last[3], "1");
}

TEST(ReportTest, PenaltySweepCsvShape) {
  auto rows = std::move(SweepPenalty(10, 25, 8, 0.2, 100, 5).value());
  std::string csv = PenaltySweepToCsv(rows);
  EXPECT_EQ(CountLines(csv), 6);
  auto header = SplitCsvLine(csv, 0);
  EXPECT_EQ(header[0], "penalty");
}

TEST(ReportTest, AsymmetricGridCsvShape) {
  TwoPlayerGameParams params = TwoPlayerGameParams::Symmetric(10, 25, 8);
  params.audit1.penalty = 20;
  params.audit2.penalty = 20;
  auto cells = std::move(SweepAsymmetricGrid(params, 3).value());
  std::string csv = AsymmetricGridToCsv(cells);
  EXPECT_EQ(CountLines(csv), 10);  // header + 9 cells
  auto corner = SplitCsvLine(csv, 1);
  EXPECT_EQ(corner[0], "0");
  EXPECT_EQ(corner[1], "0");
  EXPECT_EQ(corner[2], "CC");
}

TEST(ReportTest, NPlayerBandsCsvShape) {
  NPlayerHonestyGame::Params params;
  params.n = 4;
  params.benefit = 10;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.uniform_loss = 4;
  auto rows = std::move(SweepNPlayerPenalty(params, 60, 7).value());
  std::string csv = NPlayerBandsToCsv(rows);
  EXPECT_EQ(CountLines(csv), 8);
  auto header = SplitCsvLine(csv, 0);
  ASSERT_EQ(header.size(), 6u);
  EXPECT_EQ(header[2], "equilibrium_honest_counts");
  auto first = SplitCsvLine(csv, 1);
  EXPECT_EQ(first[1], "0");  // no penalty -> nobody honest
  EXPECT_EQ(first[4], "1");  // cheat dominant
}

TEST(ReportTest, MultiEquilibriaJoinedWithSemicolons) {
  // Boundary frequency: both CC and HH are equilibria in one row.
  double f_star = CriticalFrequency(10, 25, 40);
  auto make_row = [&](double f) {
    FrequencySweepRow row;
    row.frequency = f;
    row.analytic_region = ClassifySymmetricRegion(10, 25, f, 40);
    row.nash_equilibria = {"HH", "CC"};
    row.honest_is_dse = false;
    row.analytic_matches_enumeration = true;
    return row;
  };
  std::string csv = FrequencySweepToCsv({make_row(f_star)});
  EXPECT_NE(csv.find("HH;CC"), std::string::npos);
}

}  // namespace
}  // namespace hsis::game

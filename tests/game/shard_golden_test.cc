// Cross-shard golden pins for the figure landscapes: the serial CSVs
// are frozen by SHA-256 (any drift in sweep arithmetic or formatting
// trips them), and merging a 1-, 2-, 3-, or 7-shard run must reproduce
// those exact bytes — IEEE-754 bit patterns included, since the CSV
// text is the `%.6g` image of the computed doubles. Also pins the
// recovery contract: a deleted shard is detected by name and the sweep
// completes after re-running only that shard.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/file.h"
#include "common/shard.h"
#include "crypto/sha256.h"
#include "game/landscape.h"
#include "game/landscape_shards.h"

namespace hsis::game {
namespace {

/// Frozen SHA-256 of each serial sweep CSV (header + rows), computed
/// from the single-process `LandscapeCsv` output. These change only if
/// the sweep arithmetic, sampling grid, or CSV formatting changes —
/// which must be a deliberate, reviewed act.
struct GoldenSweep {
  const char* name;
  const char* csv_sha256;
};

constexpr GoldenSweep kGoldenSweeps[] = {
    {"figure1",
     "69360b788a2b2c3aee9d8b819cfdb1401715f4df741d8106fadf4c50ff55cbe1"},
    {"figure2_f02",
     "ec2995c0cd9fc0d5525c9353299c1647bc50fcb3c82988f4eabfef0537e55f6b"},
    {"figure2_f07",
     "2e3e33061b80a4303f64638dd6751828342a4967e174a6ff8acd327149fd1d39"},
    {"figure3",
     "19f1b300c56be061b38d843d3e7e9b376e810e984a90f8ee128bb59286eeeac2"},
};

std::string FreshDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  EXPECT_TRUE(CreateDirectories(dir).ok());
  return dir;
}

/// Full plan → K runs → validated merge lifecycle, returning the CSV.
Result<std::string> ShardedCsv(const std::string& name, int shards,
                               const std::string& dir) {
  HSIS_ASSIGN_OR_RETURN(common::ShardSweepSpec spec, LandscapeSweepSpec(name));
  HSIS_ASSIGN_OR_RETURN(common::ShardPlan plan,
                        common::ShardPlan::Create(spec.total, shards));
  HSIS_RETURN_IF_ERROR(common::WriteShardPlan(spec, plan, dir));
  common::ShardRunner runner(spec, plan);
  for (int k = 0; k < shards; ++k) {
    HSIS_RETURN_IF_ERROR(runner.Run(k, dir));
  }
  HSIS_ASSIGN_OR_RETURN(Bytes merged, common::MergeShards(dir, name));
  HSIS_ASSIGN_OR_RETURN(std::string csv, LandscapeCsvHeader(name));
  csv += BytesToString(merged);
  return csv;
}

TEST(ShardGoldenTest, SerialCsvsMatchFrozenDigests) {
  for (const GoldenSweep& golden : kGoldenSweeps) {
    Result<std::string> csv = LandscapeCsv(golden.name);
    ASSERT_TRUE(csv.ok()) << csv.status().ToString();
    EXPECT_EQ(HexEncode(crypto::Sha256::Hash(*csv)), golden.csv_sha256)
        << golden.name << " drifted from its frozen golden CSV";
  }
}

TEST(ShardGoldenTest, MergedShardsReproduceSerialBytes) {
  for (const GoldenSweep& golden : kGoldenSweeps) {
    Result<std::string> serial = LandscapeCsv(golden.name);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int shards : {1, 2, 3, 7}) {
      std::string dir = FreshDir(std::string("shard_golden_") + golden.name +
                                 "_" + std::to_string(shards));
      Result<std::string> merged = ShardedCsv(golden.name, shards, dir);
      ASSERT_TRUE(merged.ok())
          << golden.name << " x" << shards << ": " << merged.status().ToString();
      // Byte-for-byte: every IEEE-754 bit pattern the sweep computed
      // renders to the same %.6g text regardless of the partition.
      ASSERT_EQ(*merged, *serial) << golden.name << " with " << shards
                                  << " shards is not bit-identical to serial";
      EXPECT_EQ(HexEncode(crypto::Sha256::Hash(*merged)), golden.csv_sha256);
    }
  }
}

TEST(ShardGoldenTest, ThreadedShardsReproduceSerialBytes) {
  // Threads inside a shard compose with sharding across processes; the
  // bytes must not care about either knob.
  Result<std::string> serial = LandscapeCsv("figure1");
  ASSERT_TRUE(serial.ok());
  std::string dir = FreshDir("shard_golden_threads");
  common::ShardSweepSpec spec = LandscapeSweepSpec("figure1").value();
  common::ShardPlan plan = common::ShardPlan::Create(spec.total, 3).value();
  ASSERT_TRUE(common::WriteShardPlan(spec, plan, dir).ok());
  common::ShardRunner runner(spec, plan);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(runner.Run(k, dir, /*threads=*/k + 1).ok());
  }
  Bytes merged = common::MergeShards(dir, "figure1").value();
  EXPECT_EQ(LandscapeCsvHeader("figure1").value() + BytesToString(merged),
            *serial);
}

TEST(ShardGoldenTest, DeletedShardIsDetectedAndRecoverable) {
  std::string dir = FreshDir("shard_golden_recovery");
  Result<std::string> first = ShardedCsv("figure2_f02", 3, dir);
  ASSERT_TRUE(first.ok());

  // Losing shard 1 (say, a worker machine died) must surface as a
  // NotFound naming the shard, not as a wrong merge.
  ASSERT_TRUE(RemoveFileIfExists(common::ShardManifestPath(dir, 1)).ok());
  ASSERT_TRUE(RemoveFileIfExists(common::ShardPayloadPath(dir, 1)).ok());
  Status missing = common::MergeShards(dir, "figure2_f02").status();
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_NE(missing.ToString().find("shard 1"), std::string::npos)
      << missing.ToString();

  // Re-running only the lost shard completes the sweep bit-identically.
  common::ShardSweepSpec spec = LandscapeSweepSpec("figure2_f02").value();
  common::ShardPlan plan = common::ShardPlan::Create(spec.total, 3).value();
  ASSERT_TRUE(common::ShardRunner(spec, plan).Run(1, dir).ok());
  Result<Bytes> merged = common::MergeShards(dir, "figure2_f02");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(LandscapeCsvHeader("figure2_f02").value() + BytesToString(*merged),
            *first);
}

TEST(ShardGoldenTest, SweepRegistryIsConsistent) {
  for (const std::string& name : LandscapeSweepNames()) {
    common::ShardSweepSpec spec = LandscapeSweepSpec(name).value();
    EXPECT_EQ(spec.name, name);
    EXPECT_GT(spec.total, 0u);
    ASSERT_TRUE(LandscapeCsvHeader(name).ok());
    ASSERT_TRUE(LandscapeCsvFilename(name).ok());
  }
  EXPECT_EQ(LandscapeSweepSpec("no_such_sweep").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace hsis::game

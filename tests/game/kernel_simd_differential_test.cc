// Cross-ISA differential suite for the SIMD kernel lanes: every
// runtime-supported lane (common/simd_dispatch.h) must produce output
// buffers BIT-IDENTICAL to the scalar lane — same IEEE-754 bit pattern
// in every double slot, same byte in every flag slot — for all five
// batch evaluators, across batch sizes that straddle both vector
// widths (empty, 1, W-1, W, W+1 for W in {2, 4}), a mid-size batch,
// and the figure-sized workloads the benches measure. A vector lane
// that reassociates, contracts into FMA, or mishandles a remainder
// tail fails here before it can reach the golden CSV pins.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/simd_dispatch.h"
#include "game/honesty_games.h"
#include "game/kernel.h"
#include "game/nplayer_game.h"
#include "game/thresholds.h"

namespace hsis::game::kernel {
namespace {

/// Forces `HSIS_SIMD_LANE` for the lifetime of the object and restores
/// the caller's environment on destruction, so a failing test cannot
/// leak its lane override into later tests.
class ScopedLane {
 public:
  explicit ScopedLane(common::SimdLane lane) {
    const char* prev = std::getenv(common::kSimdLaneEnvVar);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    ::setenv(common::kSimdLaneEnvVar, common::SimdLaneName(lane), 1);
  }
  ~ScopedLane() {
    if (had_) {
      ::setenv(common::kSimdLaneEnvVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(common::kSimdLaneEnvVar);
    }
  }
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

/// The raw IEEE-754 bit pattern — differential equality must not go
/// through operator== (which identifies +0.0 with -0.0 and never
/// matches NaN).
uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Batch sizes covering both vector widths' edge cases plus realistic
/// loads: W-1 / W / W+1 for W = 2 and W = 4, an empty batch, a batch
/// spanning many tiles, and (appended per evaluator) the figure-sized
/// count.
const size_t kEdgeCounts[] = {0, 1, 2, 3, 4, 5, 1000};

std::vector<common::SimdLane> VectorLanes() {
  std::vector<common::SimdLane> lanes;
  for (common::SimdLane lane : common::SupportedSimdLanes()) {
    if (lane != common::SimdLane::kScalar) lanes.push_back(lane);
  }
  return lanes;
}

#define EXPECT_COLUMN_EQ(col, k, lane, count, begin)                       \
  EXPECT_EQ(expected.col[k], actual.col[k])                                \
      << "lane " << common::SimdLaneName(lane) << ", count " << count      \
      << ", begin " << begin << ", row " << k << ": column '" #col "'"

#define EXPECT_COLUMN_BITS_EQ(col, k, lane, count, begin)                  \
  EXPECT_EQ(Bits(expected.col[k]), Bits(actual.col[k]))                    \
      << "lane " << common::SimdLaneName(lane) << ", count " << count      \
      << ", begin " << begin << ", row " << k << ": column '" #col "' ("   \
      << expected.col[k] << " vs " << actual.col[k] << ")"

void ExpectIdentical(const FrequencyRowsSoA& expected,
                     const FrequencyRowsSoA& actual, common::SimdLane lane,
                     size_t count, size_t begin) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_COLUMN_BITS_EQ(frequency, k, lane, count, begin);
    EXPECT_COLUMN_EQ(region, k, lane, count, begin);
    EXPECT_COLUMN_EQ(nash_mask, k, lane, count, begin);
    EXPECT_COLUMN_EQ(honest_is_dse, k, lane, count, begin);
    EXPECT_COLUMN_EQ(matches, k, lane, count, begin);
  }
}

void ExpectIdentical(const PenaltyRowsSoA& expected,
                     const PenaltyRowsSoA& actual, common::SimdLane lane,
                     size_t count, size_t begin) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_COLUMN_BITS_EQ(penalty, k, lane, count, begin);
    EXPECT_COLUMN_EQ(region, k, lane, count, begin);
    EXPECT_COLUMN_EQ(nash_mask, k, lane, count, begin);
    EXPECT_COLUMN_EQ(honest_is_dse, k, lane, count, begin);
    EXPECT_COLUMN_EQ(matches, k, lane, count, begin);
  }
}

void ExpectIdentical(const AsymmetricCellsSoA& expected,
                     const AsymmetricCellsSoA& actual, common::SimdLane lane,
                     size_t count, size_t begin) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_COLUMN_BITS_EQ(f1, k, lane, count, begin);
    EXPECT_COLUMN_BITS_EQ(f2, k, lane, count, begin);
    EXPECT_COLUMN_EQ(region, k, lane, count, begin);
    EXPECT_COLUMN_EQ(nash_mask, k, lane, count, begin);
    EXPECT_COLUMN_EQ(matches, k, lane, count, begin);
  }
}

void ExpectIdentical(const NPlayerBandRowsSoA& expected,
                     const NPlayerBandRowsSoA& actual, common::SimdLane lane,
                     size_t count, size_t begin) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_COLUMN_BITS_EQ(penalty, k, lane, count, begin);
    EXPECT_COLUMN_EQ(analytic_honest_count, k, lane, count, begin);
    EXPECT_COLUMN_EQ(count_mask, k, lane, count, begin);
    EXPECT_COLUMN_EQ(honest_is_dominant, k, lane, count, begin);
    EXPECT_COLUMN_EQ(cheat_is_dominant, k, lane, count, begin);
    EXPECT_COLUMN_EQ(matches, k, lane, count, begin);
  }
}

void ExpectIdentical(const DeviceAnswersSoA& expected,
                     const DeviceAnswersSoA& actual, common::SimdLane lane,
                     size_t count, size_t begin) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_COLUMN_EQ(effectiveness, k, lane, count, begin);
    EXPECT_COLUMN_BITS_EQ(min_frequency, k, lane, count, begin);
    EXPECT_COLUMN_BITS_EQ(min_penalty, k, lane, count, begin);
    EXPECT_COLUMN_BITS_EQ(zero_penalty_frequency, k, lane, count, begin);
  }
}

/// Runs `eval(out)` under the scalar lane and under every supported
/// vector lane and asserts bit-identity of the SoA buffers.
template <typename SoA, typename Eval>
void RunDifferential(const Eval& eval, size_t count, size_t begin) {
  SoA expected;
  {
    ScopedLane scalar(common::SimdLane::kScalar);
    ASSERT_TRUE(eval(expected).ok());
  }
  for (common::SimdLane lane : VectorLanes()) {
    SoA actual;
    ScopedLane forced(lane);
    ASSERT_TRUE(eval(actual).ok()) << common::SimdLaneName(lane);
    ExpectIdentical(expected, actual, lane, count, begin);
  }
}

/// Batch geometries per evaluator: every edge count at begin 0, the
/// same counts at a misaligned begin (tiles no longer start on a
/// vector-width boundary of the global index), and the figure-sized
/// full sweep.
template <typename SoA, typename EvalAt>
void RunGeometries(const EvalAt& eval_at, size_t figure_count) {
  for (size_t count : kEdgeCounts) {
    RunDifferential<SoA>(
        [&](SoA& out) { return eval_at(/*begin=*/0, count, out); }, count, 0);
    RunDifferential<SoA>(
        [&](SoA& out) { return eval_at(/*begin=*/7, count, out); }, count, 7);
  }
  RunDifferential<SoA>(
      [&](SoA& out) { return eval_at(/*begin=*/0, figure_count, out); },
      figure_count, 0);
}

TEST(KernelSimdDifferentialTest, FrequencyRowsBitIdenticalAcrossLanes) {
  const int kSteps = 20001;
  RunGeometries<FrequencyRowsSoA>(
      [&](size_t begin, size_t count, FrequencyRowsSoA& out) {
        return EvalFrequencyRows(10, 25, 8, 40, kSteps, begin, count, out, 2);
      },
      static_cast<size_t>(kSteps));
}

TEST(KernelSimdDifferentialTest, PenaltyRowsBitIdenticalAcrossLanes) {
  const int kSteps = 20001;
  RunGeometries<PenaltyRowsSoA>(
      [&](size_t begin, size_t count, PenaltyRowsSoA& out) {
        return EvalPenaltyRows(10, 25, 8, 0.2, 100, kSteps, begin, count, out,
                               2);
      },
      static_cast<size_t>(kSteps));
}

TEST(KernelSimdDifferentialTest,
     PenaltyRowsBitIdenticalAtZeroAndFullFrequency) {
  // f = 0 hits the +infinity critical-penalty branch; f = 1 the other
  // extreme of the region classifier.
  for (double frequency : {0.0, 1.0}) {
    RunGeometries<PenaltyRowsSoA>(
        [&](size_t begin, size_t count, PenaltyRowsSoA& out) {
          return EvalPenaltyRows(10, 25, 8, frequency, 100, 2001, begin, count,
                                 out, 1);
        },
        2001);
  }
}

TEST(KernelSimdDifferentialTest, AsymmetricCellsBitIdenticalAcrossLanes) {
  // The Figure 3 economics: asymmetric players so the boundary-strip
  // classifier sees genuinely different critical frequencies per axis.
  TwoPlayerGameParams params = TwoPlayerGameParams::Symmetric(10, 25, 8);
  params.player2.benefit = 9;
  params.player2.cheat_gain = 30;
  params.audit1.penalty = 40;
  params.audit2.penalty = 35;
  const int kGrid = 200;
  RunGeometries<AsymmetricCellsSoA>(
      [&](size_t begin, size_t count, AsymmetricCellsSoA& out) {
        return EvalAsymmetricCells(params, kGrid, begin, count, out, 2);
      },
      static_cast<size_t>(kGrid) * kGrid);
}

TEST(KernelSimdDifferentialTest, NPlayerBandRowsBitIdenticalAcrossLanes) {
  NPlayerHonestyGame::Params params;
  params.n = 8;
  params.benefit = 10;
  params.gain = LinearGain(20, 2);
  params.frequency = 0.3;
  params.uniform_loss = 4;
  const int kSteps = 2001;
  const double top =
      NPlayerPenaltyBound(params.benefit, params.gain, params.frequency,
                          params.n - 1);
  RunGeometries<NPlayerBandRowsSoA>(
      [&](size_t begin, size_t count, NPlayerBandRowsSoA& out) {
        return EvalNPlayerBandRows(params, top * 1.15, kSteps, begin, count,
                                   out, 2);
      },
      static_cast<size_t>(kSteps));
}

TEST(KernelSimdDifferentialTest, DevicePointsBitIdenticalAcrossLanes) {
  // A deterministic mix of operating points, including the branchy
  // extremes: f = 0 (min_penalty must be +infinity), f = 1, P = 0, and
  // near-critical frequencies.
  const size_t kPoints = 20001;
  DevicePointsSoA in;
  in.Resize(kPoints);
  for (size_t k = 0; k < kPoints; ++k) {
    const double t = static_cast<double>(k) / (kPoints - 1);
    in.benefit[k] = 5 + 10 * t;
    in.cheat_gain[k] = 20 + 15 * t;
    in.frequency[k] = k % 7 == 0 ? 0.0 : (k % 7 == 1 ? 1.0 : t);
    in.penalty[k] = k % 5 == 0 ? 0.0 : 60 * t;
  }
  RunGeometries<DeviceAnswersSoA>(
      [&](size_t begin, size_t count, DeviceAnswersSoA& out) {
        return EvalDevicePoints(in, 0.05, begin, count, out, 2);
      },
      kPoints);
}

TEST(KernelSimdDifferentialTest, LanesBitIdenticalAcrossThreadCounts) {
  // The determinism contract composes with lane choice: every lane must
  // be bit-identical to serial scalar at every thread count.
  const int kSteps = 4097;  // not a multiple of the tile size
  FrequencyRowsSoA expected;
  {
    ScopedLane scalar(common::SimdLane::kScalar);
    ASSERT_TRUE(EvalFrequencyRows(10, 25, 8, 40, kSteps, 0, kSteps, expected,
                                  /*threads=*/1)
                    .ok());
  }
  for (common::SimdLane lane : common::SupportedSimdLanes()) {
    for (int threads : {1, 2, 8}) {
      FrequencyRowsSoA actual;
      ScopedLane forced(lane);
      ASSERT_TRUE(EvalFrequencyRows(10, 25, 8, 40, kSteps, 0, kSteps, actual,
                                    threads)
                      .ok());
      ExpectIdentical(expected, actual, lane, kSteps, 0);
    }
  }
}

}  // namespace
}  // namespace hsis::game::kernel

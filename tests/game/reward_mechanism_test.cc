#include "game/reward_mechanism.h"

#include <gtest/gtest.h>

#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"

namespace hsis::game {
namespace {

constexpr double kB = 10, kF = 25, kL = 8;

TEST(RewardGameTest, PayoffCells) {
  RewardTerms terms{0.4, 12, 0};
  NormalFormGame g =
      std::move(MakeRewardAuditedGame(kB, kF, kL, terms).value());
  double honest = kB + 0.4 * 12;
  double cheat = 0.6 * kF;
  double spill = 0.6 * kL;
  EXPECT_DOUBLE_EQ(g.Payoff({kHonest, kHonest}, 0), honest);
  EXPECT_DOUBLE_EQ(g.Payoff({kHonest, kCheat}, 0), honest - spill);
  EXPECT_DOUBLE_EQ(g.Payoff({kHonest, kCheat}, 1), cheat);
  EXPECT_DOUBLE_EQ(g.Payoff({kCheat, kCheat}, 1), cheat - spill);
}

TEST(RewardGameTest, Validation) {
  EXPECT_FALSE(MakeRewardAuditedGame(10, 10, kL, {0.5, 1, 0}).ok());
  EXPECT_FALSE(MakeRewardAuditedGame(kB, kF, -1, {0.5, 1, 0}).ok());
  EXPECT_FALSE(MakeRewardAuditedGame(kB, kF, kL, {1.5, 1, 0}).ok());
  EXPECT_FALSE(MakeRewardAuditedGame(kB, kF, kL, {0.5, -1, 0}).ok());
  EXPECT_FALSE(MakeRewardAuditedGame(kB, kF, kL, {0.5, 1, -1}).ok());
  EXPECT_TRUE(MakeRewardAuditedGame(kB, kF, kL, {0.5, 1, 1}).ok());
}

TEST(RewardGameTest, CriticalRewardClosedForm) {
  // R* = ((1-f)F - B)/f - P.
  EXPECT_DOUBLE_EQ(CriticalReward(kB, kF, 0.2, 0), (0.8 * kF - kB) / 0.2);
  EXPECT_DOUBLE_EQ(CriticalReward(kB, kF, 0.2, 20),
                   (0.8 * kF - kB) / 0.2 - 20);
  // Floored at zero once the penalty (or frequency) already deters.
  EXPECT_DOUBLE_EQ(CriticalReward(kB, kF, 0.2, 1000), 0.0);
  EXPECT_DOUBLE_EQ(CriticalReward(kB, kF, 0.9, 0), 0.0);
}

TEST(RewardGameTest, RewardAndPenaltyArePerfectSubstitutes) {
  // Only R + P matters for the incentive: same classification along an
  // iso-(R+P) line.
  const double f = 0.25;
  double total = CriticalReward(kB, kF, f, 0) + 2;  // above threshold
  for (double reward : {0.0, total / 3, total / 2, total}) {
    RewardTerms terms{f, reward, total - reward};
    EXPECT_EQ(ClassifyRewardDevice(kB, kF, terms),
              DeviceEffectiveness::kTransformative)
        << "R = " << reward;
  }
  RewardTerms weak{f, total / 3, total / 3};
  EXPECT_EQ(ClassifyRewardDevice(kB, kF, weak),
            DeviceEffectiveness::kIneffective);
}

TEST(RewardGameTest, PureRewardDeviceClassificationMatchesEnumeration) {
  const double f = 0.3;
  double r_star = CriticalReward(kB, kF, f, 0);
  struct Case {
    double reward;
    DeviceEffectiveness expected;
    const char* unique_ne;  // nullptr = boundary
  };
  Case cases[] = {
      {r_star * 0.8, DeviceEffectiveness::kIneffective, "CC"},
      {r_star, DeviceEffectiveness::kEffective, nullptr},
      {r_star * 1.2, DeviceEffectiveness::kTransformative, "HH"},
  };
  for (const Case& c : cases) {
    RewardTerms terms{f, c.reward, 0};
    EXPECT_EQ(ClassifyRewardDevice(kB, kF, terms), c.expected);
    NormalFormGame g =
        std::move(MakeRewardAuditedGame(kB, kF, kL, terms).value());
    auto ne = PureNashEquilibria(g);
    if (c.unique_ne != nullptr) {
      ASSERT_EQ(ne.size(), 1u) << c.reward;
      EXPECT_EQ(ProfileLabel(ne[0]), c.unique_ne);
    } else {
      EXPECT_TRUE(IsNashEquilibrium(g, {kHonest, kHonest}));
    }
  }
}

TEST(RewardGameTest, ZeroRewardZeroPenaltyReducesToTable2AtP0) {
  RewardTerms terms{0.3, 0, 40};
  NormalFormGame reward_game =
      std::move(MakeRewardAuditedGame(kB, kF, kL, terms).value());
  NormalFormGame penalty_game =
      std::move(MakeSymmetricAuditedGame(kB, kF, kL, 0.3, 40).value());
  for (size_t i = 0; i < reward_game.num_profiles(); ++i) {
    StrategyProfile p = reward_game.ProfileFromIndex(i);
    for (int player = 0; player < 2; ++player) {
      EXPECT_DOUBLE_EQ(reward_game.Payoff(p, player),
                       penalty_game.Payoff(p, player));
    }
  }
}

TEST(RewardGameTest, OperatorEconomicsDifferSharply) {
  // Same deterrence, very different operator cost at equilibrium.
  const double f = 0.25;
  double total = CriticalReward(kB, kF, f, 0) + 1;
  RewardTerms pure_reward{f, total, 0};
  RewardTerms pure_penalty{f, 0, total};
  const int n = 10;

  // All honest (the equilibrium both devices induce):
  EXPECT_GT(OperatorCostAtHonestEquilibrium(n, pure_reward), 0.0);
  EXPECT_DOUBLE_EQ(OperatorCostAtHonestEquilibrium(n, pure_penalty), 0.0);
  EXPECT_DOUBLE_EQ(OperatorCostAtHonestEquilibrium(n, pure_reward),
                   n * f * total);

  // Off equilibrium, penalties make the operator money.
  EXPECT_LT(OperatorCostAtHonestCount(n, 0, pure_penalty), 0.0);
  EXPECT_DOUBLE_EQ(OperatorCostAtHonestCount(n, 0, pure_reward), 0.0);
  // Hybrid at half honest: pays some, collects some.
  RewardTerms hybrid{f, total / 2, total / 2};
  EXPECT_DOUBLE_EQ(OperatorCostAtHonestCount(n, 5, hybrid), 0.0);
}

}  // namespace
}  // namespace hsis::game

// Randomized property suite for the SIMD kernel lanes: 200 trials of
// adversarial economics — denormals, signed zeros, and payoff gaps
// straddling kPayoffEpsilon — each evaluated at a random batch
// geometry (steps, misaligned begin, remainder-tail count) under the
// scalar lane and every supported vector lane, asserting per-row
// bit-equality of every output column. Where the differential suite
// pins the figure workloads, this suite hunts the inputs most likely
// to expose a vector lane that differs by one ulp, one compare
// semantic (±0.0, NaN ordering), or one reassociation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/simd_dispatch.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/kernel.h"
#include "game/nplayer_game.h"
#include "game/thresholds.h"

namespace hsis::game::kernel {
namespace {

class ScopedLane {
 public:
  explicit ScopedLane(common::SimdLane lane) {
    const char* prev = std::getenv(common::kSimdLaneEnvVar);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    ::setenv(common::kSimdLaneEnvVar, common::SimdLaneName(lane), 1);
  }
  ~ScopedLane() {
    if (had_) {
      ::setenv(common::kSimdLaneEnvVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(common::kSimdLaneEnvVar);
    }
  }
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Draws one non-negative magnitude from a mixture tuned to break
/// vector lanes: plain uniforms, log-uniform spans reaching into the
/// denormal range, exact zeros of both signs, and values placed a few
/// ulps around kPayoffEpsilon and the 1e-12 boundary tolerance.
double DrawMagnitude(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pick(0, 5);
  std::uniform_real_distribution<double> uniform(0.0, 50.0);
  std::uniform_real_distribution<double> exponent(-320.0, 2.0);
  std::uniform_int_distribution<int> ulps(-4, 4);
  switch (pick(rng)) {
    case 0:
    case 1:
      return uniform(rng);
    case 2:  // log-uniform: most draws denormal or deeply subnormal
      return std::pow(10.0, exponent(rng));
    case 3:  // signed zero: -0.0 must classify exactly like +0.0
      return (rng() & 1) ? 0.0 : -0.0;
    case 4: {  // a few ulps around the equilibrium comparison epsilon
      double v = kPayoffEpsilon;
      int n = ulps(rng);
      for (int i = 0; i < n; ++i) v = std::nextafter(v, 1.0);
      for (int i = 0; i > n; --i) v = std::nextafter(v, 0.0);
      return v;
    }
    default: {  // around the analytic boundary tolerance
      double v = 1e-12;
      int n = ulps(rng);
      for (int i = 0; i < n; ++i) v = std::nextafter(v, 1.0);
      for (int i = 0; i > n; --i) v = std::nextafter(v, 0.0);
      return v;
    }
  }
}

/// A frequency in [0, 1] biased toward the exact endpoints (including
/// -0.0) and near-critical interior values.
double DrawFrequency(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pick(0, 4);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  switch (pick(rng)) {
    case 0:
      return (rng() & 1) ? 0.0 : -0.0;
    case 1:
      return 1.0;
    case 2:
      return std::pow(10.0, std::uniform_real_distribution<double>(
                                -320.0, -1.0)(rng));  // denormal-to-tiny
    default:
      return uniform(rng);
  }
}

struct Geometry {
  int steps;
  size_t begin;
  size_t count;
};

/// Random sweep geometry exercising every remainder-tail length and
/// misaligned tile starts: steps up to a few vector widths past the
/// tile boundary, begin anywhere, count the rest or shorter.
Geometry DrawGeometry(std::mt19937_64& rng) {
  Geometry g;
  g.steps = std::uniform_int_distribution<int>(1, 70)(rng);
  g.begin = std::uniform_int_distribution<size_t>(
      0, static_cast<size_t>(g.steps) - 1)(rng);
  g.count = std::uniform_int_distribution<size_t>(
      0, static_cast<size_t>(g.steps) - g.begin)(rng);
  return g;
}

std::vector<common::SimdLane> VectorLanes() {
  std::vector<common::SimdLane> lanes;
  for (common::SimdLane lane : common::SupportedSimdLanes()) {
    if (lane != common::SimdLane::kScalar) lanes.push_back(lane);
  }
  return lanes;
}

constexpr int kTrials = 200;

TEST(KernelSimdPropertyTest, RandomFrequencySweepsBitIdentical) {
  std::mt19937_64 rng(0x5151'0001);
  for (int trial = 0; trial < kTrials; ++trial) {
    const double benefit = DrawMagnitude(rng);
    const double cheat_gain = benefit + DrawMagnitude(rng) + 1e-300;
    const double loss = DrawMagnitude(rng);
    const double penalty = DrawMagnitude(rng);
    const Geometry g = DrawGeometry(rng);

    FrequencyRowsSoA expected;
    Status ref;
    {
      ScopedLane scalar(common::SimdLane::kScalar);
      ref = EvalFrequencyRows(benefit, cheat_gain, loss, penalty, g.steps,
                              g.begin, g.count, expected, 1);
    }
    for (common::SimdLane lane : VectorLanes()) {
      FrequencyRowsSoA actual;
      ScopedLane forced(lane);
      Status got = EvalFrequencyRows(benefit, cheat_gain, loss, penalty,
                                     g.steps, g.begin, g.count, actual, 1);
      ASSERT_EQ(ref.ok(), got.ok()) << "trial " << trial;
      if (!ref.ok()) continue;
      ASSERT_EQ(expected.size(), actual.size()) << "trial " << trial;
      for (size_t k = 0; k < expected.size(); ++k) {
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << ", lane "
                     << common::SimdLaneName(lane) << ", row " << k << ", B="
                     << benefit << " F=" << cheat_gain << " L=" << loss
                     << " P=" << penalty << ", steps=" << g.steps
                     << " begin=" << g.begin << " count=" << g.count);
        EXPECT_EQ(Bits(expected.frequency[k]), Bits(actual.frequency[k]));
        EXPECT_EQ(expected.region[k], actual.region[k]);
        EXPECT_EQ(expected.nash_mask[k], actual.nash_mask[k]);
        EXPECT_EQ(expected.honest_is_dse[k], actual.honest_is_dse[k]);
        EXPECT_EQ(expected.matches[k], actual.matches[k]);
      }
    }
  }
}

TEST(KernelSimdPropertyTest, RandomPenaltySweepsBitIdentical) {
  std::mt19937_64 rng(0x5151'0002);
  for (int trial = 0; trial < kTrials; ++trial) {
    const double benefit = DrawMagnitude(rng);
    const double cheat_gain = benefit + DrawMagnitude(rng) + 1e-300;
    const double loss = DrawMagnitude(rng);
    const double frequency = DrawFrequency(rng);
    const double max_penalty = DrawMagnitude(rng);
    const Geometry g = DrawGeometry(rng);

    PenaltyRowsSoA expected;
    Status ref;
    {
      ScopedLane scalar(common::SimdLane::kScalar);
      ref = EvalPenaltyRows(benefit, cheat_gain, loss, frequency, max_penalty,
                            g.steps, g.begin, g.count, expected, 1);
    }
    for (common::SimdLane lane : VectorLanes()) {
      PenaltyRowsSoA actual;
      ScopedLane forced(lane);
      Status got =
          EvalPenaltyRows(benefit, cheat_gain, loss, frequency, max_penalty,
                          g.steps, g.begin, g.count, actual, 1);
      ASSERT_EQ(ref.ok(), got.ok()) << "trial " << trial;
      if (!ref.ok()) continue;
      ASSERT_EQ(expected.size(), actual.size()) << "trial " << trial;
      for (size_t k = 0; k < expected.size(); ++k) {
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << ", lane "
                     << common::SimdLaneName(lane) << ", row " << k << ", B="
                     << benefit << " F=" << cheat_gain << " L=" << loss
                     << " f=" << frequency << " Pmax=" << max_penalty
                     << ", steps=" << g.steps << " begin=" << g.begin
                     << " count=" << g.count);
        EXPECT_EQ(Bits(expected.penalty[k]), Bits(actual.penalty[k]));
        EXPECT_EQ(expected.region[k], actual.region[k]);
        EXPECT_EQ(expected.nash_mask[k], actual.nash_mask[k]);
        EXPECT_EQ(expected.honest_is_dse[k], actual.honest_is_dse[k]);
        EXPECT_EQ(expected.matches[k], actual.matches[k]);
      }
    }
  }
}

TEST(KernelSimdPropertyTest, RandomAsymmetricGridsBitIdentical) {
  std::mt19937_64 rng(0x5151'0003);
  for (int trial = 0; trial < kTrials; ++trial) {
    TwoPlayerGameParams params;
    params.player1.benefit = DrawMagnitude(rng);
    params.player1.cheat_gain =
        params.player1.benefit + DrawMagnitude(rng) + 1e-300;
    params.player2.benefit = DrawMagnitude(rng);
    params.player2.cheat_gain =
        params.player2.benefit + DrawMagnitude(rng) + 1e-300;
    params.loss_to_1 = DrawMagnitude(rng);
    params.loss_to_2 = DrawMagnitude(rng);
    params.audit1.penalty = DrawMagnitude(rng);
    params.audit2.penalty = DrawMagnitude(rng);
    // The grid overwrites frequencies; draw a small grid geometry.
    const int grid = std::uniform_int_distribution<int>(1, 9)(rng);
    const size_t cells = static_cast<size_t>(grid) * grid;
    const size_t begin =
        std::uniform_int_distribution<size_t>(0, cells - 1)(rng);
    const size_t count =
        std::uniform_int_distribution<size_t>(0, cells - begin)(rng);

    AsymmetricCellsSoA expected;
    Status ref;
    {
      ScopedLane scalar(common::SimdLane::kScalar);
      ref = EvalAsymmetricCells(params, grid, begin, count, expected, 1);
    }
    for (common::SimdLane lane : VectorLanes()) {
      AsymmetricCellsSoA actual;
      ScopedLane forced(lane);
      Status got = EvalAsymmetricCells(params, grid, begin, count, actual, 1);
      ASSERT_EQ(ref.ok(), got.ok()) << "trial " << trial;
      if (!ref.ok()) continue;
      ASSERT_EQ(expected.size(), actual.size()) << "trial " << trial;
      for (size_t k = 0; k < expected.size(); ++k) {
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << ", lane "
                     << common::SimdLaneName(lane) << ", cell " << k
                     << ", grid=" << grid << " begin=" << begin
                     << " count=" << count);
        EXPECT_EQ(Bits(expected.f1[k]), Bits(actual.f1[k]));
        EXPECT_EQ(Bits(expected.f2[k]), Bits(actual.f2[k]));
        EXPECT_EQ(expected.region[k], actual.region[k]);
        EXPECT_EQ(expected.nash_mask[k], actual.nash_mask[k]);
        EXPECT_EQ(expected.matches[k], actual.matches[k]);
      }
    }
  }
}

TEST(KernelSimdPropertyTest, RandomNPlayerBandsBitIdentical) {
  std::mt19937_64 rng(0x5151'0005);
  for (int trial = 0; trial < kTrials; ++trial) {
    NPlayerHonestyGame::Params params;
    params.n = std::uniform_int_distribution<int>(2, 12)(rng);
    params.benefit = DrawMagnitude(rng);
    params.gain = LinearGain(params.benefit + DrawMagnitude(rng) + 1e-300,
                             DrawMagnitude(rng));
    params.frequency = DrawFrequency(rng);
    params.uniform_loss = DrawMagnitude(rng);
    const double max_penalty = DrawMagnitude(rng);
    const Geometry g = DrawGeometry(rng);

    NPlayerBandRowsSoA expected;
    Status ref;
    {
      ScopedLane scalar(common::SimdLane::kScalar);
      ref = EvalNPlayerBandRows(params, max_penalty, g.steps, g.begin, g.count,
                                expected, 1);
    }
    for (common::SimdLane lane : VectorLanes()) {
      NPlayerBandRowsSoA actual;
      ScopedLane forced(lane);
      Status got = EvalNPlayerBandRows(params, max_penalty, g.steps, g.begin,
                                       g.count, actual, 1);
      ASSERT_EQ(ref.ok(), got.ok()) << "trial " << trial;
      if (!ref.ok()) continue;
      ASSERT_EQ(expected.size(), actual.size()) << "trial " << trial;
      for (size_t k = 0; k < expected.size(); ++k) {
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << ", lane "
                     << common::SimdLaneName(lane) << ", row " << k << ", n="
                     << params.n << " B=" << params.benefit << " f="
                     << params.frequency << " Pmax=" << max_penalty
                     << ", steps=" << g.steps << " begin=" << g.begin
                     << " count=" << g.count);
        EXPECT_EQ(Bits(expected.penalty[k]), Bits(actual.penalty[k]));
        EXPECT_EQ(expected.analytic_honest_count[k],
                  actual.analytic_honest_count[k]);
        EXPECT_EQ(expected.count_mask[k], actual.count_mask[k]);
        EXPECT_EQ(expected.honest_is_dominant[k],
                  actual.honest_is_dominant[k]);
        EXPECT_EQ(expected.cheat_is_dominant[k], actual.cheat_is_dominant[k]);
        EXPECT_EQ(expected.matches[k], actual.matches[k]);
      }
    }
  }
}

TEST(KernelSimdPropertyTest, RandomDevicePointsBitIdentical) {
  std::mt19937_64 rng(0x5151'0004);
  for (int trial = 0; trial < kTrials; ++trial) {
    const size_t points = std::uniform_int_distribution<size_t>(1, 70)(rng);
    DevicePointsSoA in;
    in.Resize(points);
    for (size_t k = 0; k < points; ++k) {
      in.benefit[k] = DrawMagnitude(rng);
      in.cheat_gain[k] = in.benefit[k] + DrawMagnitude(rng) + 1e-300;
      in.frequency[k] = DrawFrequency(rng);
      in.penalty[k] = DrawMagnitude(rng);
    }
    const double margin = DrawMagnitude(rng);
    const size_t begin =
        std::uniform_int_distribution<size_t>(0, points - 1)(rng);
    const size_t count =
        std::uniform_int_distribution<size_t>(0, points - begin)(rng);

    DeviceAnswersSoA expected;
    Status ref;
    {
      ScopedLane scalar(common::SimdLane::kScalar);
      ref = EvalDevicePoints(in, margin, begin, count, expected, 1);
    }
    for (common::SimdLane lane : VectorLanes()) {
      DeviceAnswersSoA actual;
      ScopedLane forced(lane);
      Status got = EvalDevicePoints(in, margin, begin, count, actual, 1);
      ASSERT_EQ(ref.ok(), got.ok()) << "trial " << trial;
      if (!ref.ok()) continue;
      ASSERT_EQ(expected.size(), actual.size()) << "trial " << trial;
      for (size_t k = 0; k < expected.size(); ++k) {
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << ", lane "
                     << common::SimdLaneName(lane) << ", point " << k
                     << ", B=" << in.benefit[begin + k] << " F="
                     << in.cheat_gain[begin + k] << " f="
                     << in.frequency[begin + k] << " P="
                     << in.penalty[begin + k] << " margin=" << margin);
        EXPECT_EQ(expected.effectiveness[k], actual.effectiveness[k]);
        EXPECT_EQ(Bits(expected.min_frequency[k]),
                  Bits(actual.min_frequency[k]));
        EXPECT_EQ(Bits(expected.min_penalty[k]), Bits(actual.min_penalty[k]));
        EXPECT_EQ(Bits(expected.zero_penalty_frequency[k]),
                  Bits(actual.zero_penalty_frequency[k]));
      }
    }
  }
}

}  // namespace
}  // namespace hsis::game::kernel

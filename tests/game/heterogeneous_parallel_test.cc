// Determinism suite for the parallelized heterogeneous design
// searches: bit-identical output at threads = 1, 2, and hardware
// concurrency and for every batch size; golden tests freezing the
// pre-parallelism serial output (values and IEEE-754 bit patterns
// recorded before the inner loops were threaded); and regression tests
// for the non-finite-input validation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>

#include "game/heterogeneous.h"
#include "game/thresholds.h"

namespace hsis::game {
namespace {

using Spec = HeterogeneousHonestyGame::PlayerSpec;

uint64_t Bits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

std::vector<Spec> Consortium() {
  auto member = [](double b, double gain_base, double gain_slope,
                   double penalty) {
    Spec s;
    s.benefit = b;
    s.gain = LinearGain(gain_base, gain_slope);
    s.penalty = penalty;
    s.frequency = 0.25;
    return s;
  };
  return {
      member(20, 22, 0.5, 50), member(15, 25, 1.0, 50),
      member(12, 28, 1.5, 40), member(10, 32, 2.0, 40),
      member(8, 40, 2.5, 30),  member(6, 55, 3.0, 30),
  };
}

/// A consortium big enough that parallel chunking actually splits it.
std::vector<Spec> BigPopulation(size_t n) {
  std::vector<Spec> players;
  players.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Spec s;
    s.benefit = 5.0 + static_cast<double>(i % 17);
    s.gain = LinearGain(20.0 + static_cast<double>(i % 41),
                        0.001 * static_cast<double>(i % 7));
    s.penalty = 10.0 + static_cast<double>(i % 29);
    s.frequency = 0.25;
    players.push_back(std::move(s));
  }
  return players;
}

const DesignSearchOptions kKnobs[] = {
    {2, 1}, {2, 7}, {2, 64}, {0, 1}, {0, 64}, {0, 1024},
};

TEST(HeterogeneousParallelTest, MinPenaltiesMatchesPreParallelGolden) {
  // Frozen from the serial implementation before the inner loop was
  // threaded, on the six-member consortium at f_i = 0.25, margin 1e-6.
  struct Golden {
    double penalty;
    uint64_t bits;
  };
  const Golden kGolden[] = {
      {9.9999999999999995e-07, 0x3eb0c6f7a0b5ed8dULL},
      {30.000001000000001, 0x403e000010c6f7a1ULL},
      {58.500000999999997, 0x404d400008637bd0ULL},
      {86.000000999999997, 0x405580000431bde8ULL},
      {125.500001, 0x405f60000431bde8ULL},
      {186.000001, 0x406740000218def4ULL},
  };
  for (int threads : {1, 2, 0}) {
    DesignSearchOptions options;
    options.threads = threads;
    auto penalties = MinPenaltiesForAllHonest(Consortium(), 1e-6, options);
    ASSERT_TRUE(penalties.ok());
    ASSERT_EQ(penalties->size(), std::size(kGolden));
    for (size_t i = 0; i < std::size(kGolden); ++i) {
      EXPECT_EQ(Bits((*penalties)[i]), kGolden[i].bits)
          << "player " << i << " expected " << kGolden[i].penalty << " got "
          << (*penalties)[i] << " (threads=" << threads << ")";
    }
  }
}

TEST(HeterogeneousParallelTest, MinCostFrequenciesMatchesPreParallelGolden) {
  // Frozen from the pre-parallelism serial run: frequencies and the
  // index-order cost accumulation (costs 1..6).
  struct Golden {
    double frequency;
    uint64_t bits;
  };
  const Golden kGolden[] = {
      {0.060403684563758393, 0x3faeed3b5384bb69ULL},
      {0.187501, 0x3fc80008637bd05bULL},
      {0.31125927814569532, 0x3fd3ebac090d96ccULL},
      {0.39024490243902438, 0x3fd8f9c5c15a0127ULL},
      {0.53939493939393945, 0x3fe142b92d0a655aULL},
      {0.64000100000000004, 0x3fe47ae3608d0892ULL},
  };
  const uint64_t kTotalCostBits = 0x4022ef2d79bc0c69ULL;  // 9.4671438257266392
  std::vector<double> costs = {1, 2, 3, 4, 5, 6};
  for (int threads : {1, 2, 0}) {
    DesignSearchOptions options;
    options.threads = threads;
    auto plan = MinCostFrequencies(Consortium(), costs, 1e-6, options);
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->frequencies.size(), std::size(kGolden));
    for (size_t i = 0; i < std::size(kGolden); ++i) {
      EXPECT_EQ(Bits(plan->frequencies[i]), kGolden[i].bits) << i;
    }
    EXPECT_EQ(Bits(plan->total_cost), kTotalCostBits) << threads;
  }
}

TEST(HeterogeneousParallelTest, MaxDeterredMatchesPreParallelGolden) {
  // Budget 1.3 funds the four cheapest members; frozen frequencies and
  // budget accounting from the pre-parallelism serial run.
  const uint64_t kFunded[] = {
      0x3faeed3b5384bb69ULL,  // 0.060403684563758393
      0x3fc80008637bd05bULL,  // 0.187501
      0x3fd3ebac090d96ccULL,  // 0.31125927814569532
      0x3fd8f9c5c15a0127ULL,  // 0.39024490243902438
  };
  const uint64_t kBudgetUsedBits = 0x3fee618eb34b0bc6ULL;  // 0.949408865148478
  for (int threads : {1, 2, 0}) {
    DesignSearchOptions options;
    options.threads = threads;
    auto alloc = MaxDeterredUnderBudget(Consortium(), 1.3, 1e-6, options);
    ASSERT_TRUE(alloc.ok());
    EXPECT_EQ(alloc->deterred_count, 4);
    EXPECT_EQ(Bits(alloc->budget_used), kBudgetUsedBits);
    ASSERT_EQ(alloc->frequencies.size(), 6u);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(alloc->deterred[i]) << i;
      EXPECT_EQ(Bits(alloc->frequencies[i]), kFunded[i]) << i;
    }
    for (size_t i = 4; i < 6; ++i) {
      EXPECT_FALSE(alloc->deterred[i]) << i;
      EXPECT_EQ(alloc->frequencies[i], 0.0) << i;
    }
  }
}

TEST(HeterogeneousParallelTest, BitIdenticalAcrossThreadsAndBatchSizes) {
  std::vector<Spec> players = BigPopulation(997);  // prime: ragged batches
  std::vector<double> costs(players.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    costs[i] = 1.0 + static_cast<double>(i % 13);
  }

  auto serial_penalties = MinPenaltiesForAllHonest(players).value();
  auto serial_plan = MinCostFrequencies(players, costs).value();
  auto serial_alloc = MaxDeterredUnderBudget(players, 120.0).value();

  for (const DesignSearchOptions& options : kKnobs) {
    auto penalties = MinPenaltiesForAllHonest(players, 1e-6, options).value();
    ASSERT_EQ(penalties.size(), serial_penalties.size());
    for (size_t i = 0; i < penalties.size(); ++i) {
      EXPECT_EQ(Bits(penalties[i]), Bits(serial_penalties[i])) << i;
    }

    auto plan = MinCostFrequencies(players, costs, 1e-6, options).value();
    EXPECT_EQ(Bits(plan.total_cost), Bits(serial_plan.total_cost));
    for (size_t i = 0; i < plan.frequencies.size(); ++i) {
      EXPECT_EQ(Bits(plan.frequencies[i]), Bits(serial_plan.frequencies[i]))
          << i;
    }

    auto alloc = MaxDeterredUnderBudget(players, 120.0, 1e-6, options).value();
    EXPECT_EQ(alloc.deterred_count, serial_alloc.deterred_count);
    EXPECT_EQ(Bits(alloc.budget_used), Bits(serial_alloc.budget_used));
    for (size_t i = 0; i < alloc.frequencies.size(); ++i) {
      EXPECT_EQ(Bits(alloc.frequencies[i]), Bits(serial_alloc.frequencies[i]))
          << i;
      EXPECT_EQ(alloc.deterred[i], serial_alloc.deterred[i]) << i;
    }
  }
}

TEST(HeterogeneousParallelTest, RejectsNegativeBudget) {
  for (int threads : {1, 2, 0}) {
    DesignSearchOptions options;
    options.threads = threads;
    auto alloc = MaxDeterredUnderBudget(Consortium(), -0.5, 1e-6, options);
    ASSERT_FALSE(alloc.ok());
    EXPECT_EQ(alloc.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(HeterogeneousParallelTest, RejectsNonFiniteInputs) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  // NaN budget.
  EXPECT_EQ(MaxDeterredUnderBudget(Consortium(), kNan).status().code(),
            StatusCode::kInvalidArgument);
  // Infinite budget.
  EXPECT_EQ(MaxDeterredUnderBudget(Consortium(), kInf).status().code(),
            StatusCode::kInvalidArgument);

  // Non-finite per-player bounds reject across all three searches.
  auto corrupt = [](void (*mutate)(Spec&)) {
    std::vector<Spec> players;
    auto base = Consortium();
    players = base;
    mutate(players[2]);
    return players;
  };
  std::vector<std::vector<Spec>> bad_populations = {
      corrupt([](Spec& s) { s.frequency = std::nan(""); }),
      corrupt([](Spec& s) {
        s.penalty = std::numeric_limits<double>::infinity();
      }),
      corrupt([](Spec& s) { s.benefit = std::nan(""); }),
      corrupt([](Spec& s) {
        s.gain = [](int) { return std::numeric_limits<double>::infinity(); };
      }),
  };
  for (const auto& players : bad_populations) {
    EXPECT_EQ(MinPenaltiesForAllHonest(players).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(MinCostFrequencies(players, std::vector<double>(6, 1.0))
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(MaxDeterredUnderBudget(players, 1.0).status().code(),
              StatusCode::kInvalidArgument);
  }

  // Non-finite audit costs and margin.
  EXPECT_EQ(MinCostFrequencies(Consortium(), {1, 2, kNan, 4, 5, 6})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MaxDeterredUnderBudget(Consortium(), 1.0, kNan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HeterogeneousParallelTest, ErrorsIndependentOfThreadCount) {
  // Player 2's f = 0 makes MinPenalties fail; every knob combination
  // reports the same (smallest-index) error.
  std::vector<Spec> players = Consortium();
  players[2].frequency = 0;
  players[4].frequency = 0;
  Status serial = MinPenaltiesForAllHonest(players).status();
  ASSERT_FALSE(serial.ok());
  for (const DesignSearchOptions& options : kKnobs) {
    Status parallel = MinPenaltiesForAllHonest(players, 1e-6, options).status();
    EXPECT_EQ(parallel.code(), serial.code());
    EXPECT_EQ(parallel.message(), serial.message());
  }
}

}  // namespace
}  // namespace hsis::game

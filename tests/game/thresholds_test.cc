#include "game/thresholds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/equilibrium.h"
#include "game/honesty_games.h"

namespace hsis::game {
namespace {

constexpr double kB = 10, kF = 25;

TEST(CriticalFrequencyTest, ClosedForm) {
  // f* = (F - B) / (P + F)
  EXPECT_DOUBLE_EQ(CriticalFrequency(kB, kF, 50), 15.0 / 75.0);
  EXPECT_DOUBLE_EQ(CriticalFrequency(kB, kF, 0), 15.0 / 25.0);
  EXPECT_GT(CriticalFrequency(kB, kF, 0), CriticalFrequency(kB, kF, 100));
}

TEST(CriticalPenaltyTest, ClosedForm) {
  // P* = ((1 - f) F - B) / f
  EXPECT_DOUBLE_EQ(CriticalPenalty(kB, kF, 0.2), (0.8 * kF - kB) / 0.2);
  EXPECT_TRUE(std::isinf(CriticalPenalty(kB, kF, 0.0)));
  // Beyond the zero-penalty frequency the critical penalty is negative.
  double f0 = ZeroPenaltyFrequency(kB, kF);
  EXPECT_LT(CriticalPenalty(kB, kF, f0 + 0.05), 0.0);
  EXPECT_GT(CriticalPenalty(kB, kF, f0 - 0.05), 0.0);
}

TEST(ZeroPenaltyFrequencyTest, ClosedForm) {
  EXPECT_DOUBLE_EQ(ZeroPenaltyFrequency(kB, kF), 15.0 / 25.0);
}

TEST(ThresholdDualityTest, FrequencyAndPenaltyFormsAgree) {
  // f = f*(P) and P = P*(f) describe the same boundary curve.
  for (double penalty : {0.0, 10.0, 50.0, 200.0}) {
    double f_star = CriticalFrequency(kB, kF, penalty);
    EXPECT_NEAR(CriticalPenalty(kB, kF, f_star), penalty, 1e-9);
  }
}

TEST(ClassifyDeviceTest, BoundaryToleranceScalesWithPayoffMagnitude) {
  // At f = f* the expected penalty f P and the net cheating gain
  // (1-f) F - B are algebraically equal, but with payoffs ~1e9 the
  // rounded doubles differ by ~1e-7 — far above the historical absolute
  // epsilon of 1e-12, which misclassified these boundary points as
  // interior. The tolerance must scale with the operand magnitude.
  struct Case {
    double benefit, cheat_gain, penalty;
  };
  // Chosen so the f* residue rounds positive for the first case and
  // negative for the second — the old bug misread them as
  // kTransformative and kIneffective respectively.
  const Case kCases[] = {{1.1e9, 2.7e9, 1.3e10}, {2e9, 5.1e9, 1.7e10}};
  for (const Case& c : kCases) {
    double f_star = CriticalFrequency(c.benefit, c.cheat_gain, c.penalty);
    EXPECT_EQ(ClassifySymmetricDevice(c.benefit, c.cheat_gain, f_star,
                                      c.penalty),
              DeviceEffectiveness::kEffective)
        << c.benefit << " " << c.cheat_gain << " " << c.penalty;
    // Genuinely interior points at the same magnitude stay interior.
    EXPECT_EQ(ClassifySymmetricDevice(c.benefit, c.cheat_gain, f_star * 1.01,
                                      c.penalty),
              DeviceEffectiveness::kTransformative);
    EXPECT_EQ(ClassifySymmetricDevice(c.benefit, c.cheat_gain, f_star * 0.99,
                                      c.penalty),
              DeviceEffectiveness::kIneffective);
  }
}

TEST(ClassifyDeviceTest, SmallPayoffBoundaryStillDetected) {
  // The magnitude floor keeps the historical behavior for O(1) payoffs.
  double f_star = CriticalFrequency(kB, kF, 50);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f_star, 50),
            DeviceEffectiveness::kEffective);
}

TEST(ClassifyDeviceTest, Observation2Regimes) {
  const double penalty = 50;
  double f_star = CriticalFrequency(kB, kF, penalty);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f_star - 0.05, penalty),
            DeviceEffectiveness::kIneffective);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f_star + 0.05, penalty),
            DeviceEffectiveness::kTransformative);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f_star, penalty),
            DeviceEffectiveness::kEffective);
}

TEST(ClassifyDeviceTest, Observation3Regimes) {
  const double f = 0.25;
  double p_star = CriticalPenalty(kB, kF, f);
  ASSERT_GT(p_star, 0);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f, p_star * 0.9),
            DeviceEffectiveness::kIneffective);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f, p_star * 1.1),
            DeviceEffectiveness::kTransformative);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f, p_star),
            DeviceEffectiveness::kEffective);
}

TEST(ClassifyDeviceTest, HighFrequencyNeedsNoPenalty) {
  // Observation 3 special case: f > (F-B)/F makes even P = 0 work.
  double f0 = ZeroPenaltyFrequency(kB, kF);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f0 + 0.01, 0.0),
            DeviceEffectiveness::kTransformative);
  EXPECT_EQ(ClassifySymmetricDevice(kB, kF, f0 - 0.01, 0.0),
            DeviceEffectiveness::kIneffective);
}

TEST(ClassifyDeviceTest, NoAuditIsAlwaysIneffective) {
  for (double penalty : {0.0, 100.0, 1e6}) {
    EXPECT_EQ(ClassifySymmetricDevice(kB, kF, 0.0, penalty),
              DeviceEffectiveness::kIneffective);
  }
}

TEST(ClassifyDeviceTest, NamesAreStable) {
  EXPECT_STREQ(DeviceEffectivenessName(DeviceEffectiveness::kTransformative),
               "transformative");
  EXPECT_STREQ(DeviceEffectivenessName(DeviceEffectiveness::kIneffective),
               "ineffective");
}

// Cross-check: the analytic classification agrees with brute-force
// equilibrium analysis of the actual Table 2 matrix over a parameter grid.
class ClassificationCrossCheck
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ClassificationCrossCheck, AnalyticMatchesEnumeration) {
  auto [f, penalty] = GetParam();
  const double loss = 8;
  Result<NormalFormGame> g =
      MakeSymmetricAuditedGame(kB, kF, loss, f, penalty);
  ASSERT_TRUE(g.ok());
  std::vector<StrategyProfile> ne = PureNashEquilibria(*g);
  DeviceEffectiveness cls = ClassifySymmetricDevice(kB, kF, f, penalty);
  switch (cls) {
    case DeviceEffectiveness::kIneffective:
      ASSERT_EQ(ne.size(), 1u);
      EXPECT_EQ(ne[0], (StrategyProfile{kCheat, kCheat}));
      break;
    case DeviceEffectiveness::kTransformative: {
      ASSERT_EQ(ne.size(), 1u);
      EXPECT_EQ(ne[0], (StrategyProfile{kHonest, kHonest}));
      std::optional<StrategyProfile> dse = DominantStrategyEquilibrium(*g);
      ASSERT_TRUE(dse.has_value());
      EXPECT_EQ(*dse, (StrategyProfile{kHonest, kHonest}));
      break;
    }
    default:
      // Boundary: (H,H) among the NE.
      EXPECT_TRUE(IsNashEquilibrium(*g, {kHonest, kHonest}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClassificationCrossCheck,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                         0.7, 0.8, 0.9, 1.0),
                       ::testing::Values(0.0, 10.0, 30.0, 75.0, 200.0)));

TEST(AsymmetricRegionTest, CornersOfFigure3) {
  const double b1 = 10, cg1 = 30, p1 = 20;
  const double b2 = 8, cg2 = 22, p2 = 15;
  double c1 = CriticalFrequency(b1, cg1, p1);
  double c2 = CriticalFrequency(b2, cg2, p2);
  EXPECT_EQ(ClassifyAsymmetricRegion(b1, cg1, p1, c1 / 2, b2, cg2, p2, c2 / 2),
            AsymmetricRegion::kBothCheat);
  EXPECT_EQ(ClassifyAsymmetricRegion(b1, cg1, p1, c1 / 2, b2, cg2, p2,
                                     (1 + c2) / 2),
            AsymmetricRegion::kOnlyP1Cheats);
  EXPECT_EQ(ClassifyAsymmetricRegion(b1, cg1, p1, (1 + c1) / 2, b2, cg2, p2,
                                     c2 / 2),
            AsymmetricRegion::kOnlyP2Cheats);
  EXPECT_EQ(ClassifyAsymmetricRegion(b1, cg1, p1, (1 + c1) / 2, b2, cg2, p2,
                                     (1 + c2) / 2),
            AsymmetricRegion::kBothHonest);
  EXPECT_EQ(ClassifyAsymmetricRegion(b1, cg1, p1, c1, b2, cg2, p2, 0.5),
            AsymmetricRegion::kBoundary);
}

TEST(GainFunctionTest, LinearGain) {
  GainFunction g = LinearGain(20, 3);
  EXPECT_DOUBLE_EQ(g(0), 20);
  EXPECT_DOUBLE_EQ(g(5), 35);
}

TEST(GainFunctionTest, SaturatingGainIsMonotoneBounded) {
  GainFunction g = SaturatingGain(20, 30, 0.5);
  EXPECT_DOUBLE_EQ(g(0), 20);
  double prev = g(0);
  for (int x = 1; x < 50; ++x) {
    EXPECT_GE(g(x), prev);
    prev = g(x);
  }
  EXPECT_LT(g(1000), 50.0 + 1e-9);
}

TEST(NPlayerBoundsTest, Proposition1And2AreBandEdges) {
  GainFunction gain = LinearGain(20, 2);
  const double f = 0.3;
  const int n = 10;
  double prop2 = NPlayerPenaltyBound(kB, gain, f, 0);      // (1-f)F(0)-B)/f
  double prop1 = NPlayerPenaltyBound(kB, gain, f, n - 1);  // transformative
  EXPECT_LT(prop2, prop1);
  EXPECT_DOUBLE_EQ(prop2, (0.7 * 20 - kB) / 0.3);
  EXPECT_DOUBLE_EQ(prop1, (0.7 * (20 + 2 * 9) - kB) / 0.3);
}

TEST(NPlayerBoundsTest, BandMonotoneInX) {
  GainFunction gain = LinearGain(15, 4);
  double prev = -1e18;
  for (int x = 0; x < 20; ++x) {
    double bound = NPlayerPenaltyBound(kB, gain, 0.25, x);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(NPlayerEquilibriumCountTest, Theorem1BandSelection) {
  GainFunction gain = LinearGain(20, 2);
  const double f = 0.3;
  const int n = 6;
  for (int x = 0; x < n; ++x) {
    double lo = NPlayerPenaltyBound(kB, gain, f, x == 0 ? 0 : x - 1);
    double hi = NPlayerPenaltyBound(kB, gain, f, x);
    if (x == 0) {
      // Below the Proposition 2 bound: everyone cheats.
      EXPECT_EQ(NPlayerEquilibriumHonestCount(n, kB, gain, f, hi - 1), 0);
    } else {
      double mid = (lo + hi) / 2;
      EXPECT_EQ(NPlayerEquilibriumHonestCount(n, kB, gain, f, mid), x)
          << "band " << x;
    }
  }
  // Above the Proposition 1 bound: everyone honest.
  double top = NPlayerPenaltyBound(kB, gain, f, n - 1);
  EXPECT_EQ(NPlayerEquilibriumHonestCount(n, kB, gain, f, top + 1), n);
}

}  // namespace
}  // namespace hsis::game

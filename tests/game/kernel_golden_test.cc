// Golden bit-identity for the kernel-path figure CSVs: every serial
// SHA-256 pin predates the kernel layer, so a match proves the
// allocation-free rewrite preserved each IEEE-754 bit pattern and every
// formatted byte — at every thread count, since the kernel batch
// evaluators honor the common/parallel.h determinism contract.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/simd_dispatch.h"
#include "crypto/sha256.h"
#include "game/landscape_shards.h"

namespace hsis::game {
namespace {

struct GoldenSweep {
  const char* name;
  const char* csv_sha256;
};

/// Frozen pre-kernel serial digests (tests/game/shard_golden_test.cc
/// pins the first four; figure4 was captured from the same pre-kernel
/// build). A change here must be a deliberate, reviewed act.
constexpr GoldenSweep kGoldenSweeps[] = {
    {"figure1",
     "69360b788a2b2c3aee9d8b819cfdb1401715f4df741d8106fadf4c50ff55cbe1"},
    {"figure2_f02",
     "ec2995c0cd9fc0d5525c9353299c1647bc50fcb3c82988f4eabfef0537e55f6b"},
    {"figure2_f07",
     "2e3e33061b80a4303f64638dd6751828342a4967e174a6ff8acd327149fd1d39"},
    {"figure3",
     "19f1b300c56be061b38d843d3e7e9b376e810e984a90f8ee128bb59286eeeac2"},
    {"figure4",
     "b5445df15e50679b369b5d2a85bb1c46554291a704ee90be3d09917fdda82753"},
};

TEST(KernelGoldenTest, KernelCsvsMatchPreKernelPinsAtEveryThreadCount) {
  for (const GoldenSweep& golden : kGoldenSweeps) {
    for (int threads : {1, 2, 3, 7}) {
      Result<std::string> csv = LandscapeCsv(golden.name, threads);
      ASSERT_TRUE(csv.ok())
          << golden.name << " x" << threads << ": " << csv.status().ToString();
      EXPECT_EQ(HexEncode(crypto::Sha256::Hash(*csv)), golden.csv_sha256)
          << golden.name << " with " << threads
          << " threads drifted from the pre-kernel golden CSV";
    }
  }
}

/// Forces `HSIS_SIMD_LANE` for the lifetime of the object and restores
/// the caller's environment afterwards.
class ScopedLane {
 public:
  explicit ScopedLane(common::SimdLane lane) {
    const char* prev = std::getenv(common::kSimdLaneEnvVar);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    ::setenv(common::kSimdLaneEnvVar, common::SimdLaneName(lane), 1);
  }
  ~ScopedLane() {
    if (had_) {
      ::setenv(common::kSimdLaneEnvVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(common::kSimdLaneEnvVar);
    }
  }
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(KernelGoldenTest, KernelCsvsMatchPreKernelPinsOnEveryLane) {
  // The same frozen serial digests, now under every supported SIMD
  // lane at several thread counts: the digests predate the vector
  // lanes entirely, so a match proves each lane's arithmetic is
  // bit-for-bit the pre-SIMD scalar arithmetic — the strongest form of
  // the lane bit-identity contract (DESIGN.md §6.7).
  for (common::SimdLane lane : common::SupportedSimdLanes()) {
    ScopedLane forced(lane);
    for (const GoldenSweep& golden : kGoldenSweeps) {
      for (int threads : {1, 2, 8}) {
        Result<std::string> csv = LandscapeCsv(golden.name, threads);
        ASSERT_TRUE(csv.ok())
            << golden.name << " x" << threads << " lane "
            << common::SimdLaneName(lane) << ": " << csv.status().ToString();
        EXPECT_EQ(HexEncode(crypto::Sha256::Hash(*csv)), golden.csv_sha256)
            << golden.name << " with " << threads << " threads on lane "
            << common::SimdLaneName(lane)
            << " drifted from the pre-kernel golden CSV";
      }
    }
  }
}

}  // namespace
}  // namespace hsis::game

#include "game/inspection_game.h"

#include <gtest/gtest.h>

namespace hsis::game {
namespace {

TEST(ZeroSum2x2Test, SaddlePoint) {
  // {{3, 1}, {0, -1}}: row 0 dominates, col 1 dominates -> value 1.
  ZeroSum2x2Solution s = SolveZeroSum2x2(3, 1, 0, -1);
  EXPECT_DOUBLE_EQ(s.value, 1.0);
  EXPECT_DOUBLE_EQ(s.row_first_probability, 1.0);
  EXPECT_DOUBLE_EQ(s.col_first_probability, 0.0);
}

TEST(ZeroSum2x2Test, MatchingPennies) {
  ZeroSum2x2Solution s = SolveZeroSum2x2(1, -1, -1, 1);
  EXPECT_DOUBLE_EQ(s.value, 0.0);
  EXPECT_DOUBLE_EQ(s.row_first_probability, 0.5);
  EXPECT_DOUBLE_EQ(s.col_first_probability, 0.5);
}

TEST(ZeroSum2x2Test, AsymmetricMixed) {
  // {{-1, 1}, {1, 0}}: value 1/3 (the V(2,1) stage game).
  ZeroSum2x2Solution s = SolveZeroSum2x2(-1, 1, 1, 0);
  EXPECT_NEAR(s.value, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.row_first_probability, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.col_first_probability, 1.0 / 3.0, 1e-12);
}

TEST(InspectionGameTest, HandComputedValues) {
  // V(n, 0) = 1: no inspections left, violate safely.
  EXPECT_DOUBLE_EQ(SolveInspectionGame(1, 0)->value, 1.0);
  EXPECT_DOUBLE_EQ(SolveInspectionGame(5, 0)->value, 1.0);
  // V(0, k) = 0: out of time, never violated.
  EXPECT_DOUBLE_EQ(SolveInspectionGame(0, 3)->value, 0.0);
  // V(1, 1) = 0: the inspector can cover the only period.
  EXPECT_DOUBLE_EQ(SolveInspectionGame(1, 1)->value, 0.0);
  // V(2, 1) = 1/3 (classical Dresher value).
  EXPECT_NEAR(SolveInspectionGame(2, 1)->value, 1.0 / 3.0, 1e-12);
  // V(3, 1): stage {{-1, 1}, {V(2,0)=1, V(2,1)=1/3}} -> mixed.
  // value = (ad - bc)/(a + d - b - c) = (-1/3 - 1)/(-1 + 1/3 - 1 - 1)
  //       = (-4/3)/(-8/3) = 1/2.
  EXPECT_NEAR(SolveInspectionGame(3, 1)->value, 0.5, 1e-12);
  // V(2, 2) = 0: full coverage again.
  EXPECT_DOUBLE_EQ(SolveInspectionGame(2, 2)->value, 0.0);
}

TEST(InspectionGameTest, ValueMonotoneInPeriodsAndInspections) {
  for (int k = 0; k <= 4; ++k) {
    double prev = -1;
    for (int n = 0; n <= 8; ++n) {
      double v = SolveInspectionGame(n, k)->value;
      EXPECT_GE(v, prev - 1e-12) << "n=" << n << " k=" << k;
      prev = v;
    }
  }
  for (int n = 0; n <= 8; ++n) {
    double prev = 2;
    for (int k = 0; k <= 4; ++k) {
      double v = SolveInspectionGame(n, k)->value;
      EXPECT_LE(v, prev + 1e-12) << "n=" << n << " k=" << k;
      prev = v;
    }
  }
}

TEST(InspectionGameTest, ValueBounds) {
  for (int n = 0; n <= 6; ++n) {
    for (int k = 0; k <= 6; ++k) {
      double v = SolveInspectionGame(n, k)->value;
      EXPECT_GE(v, 0.0) << n << "," << k;  // the inspectee can always wait
      EXPECT_LE(v, 1.0) << n << "," << k;
    }
  }
}

TEST(InspectionGameTest, FullCoverageIsWorthless) {
  // k >= n: the inspectee can never violate safely.
  for (int n = 1; n <= 5; ++n) {
    EXPECT_DOUBLE_EQ(SolveInspectionGame(n, n)->value, 0.0);
    EXPECT_DOUBLE_EQ(SolveInspectionGame(n, n + 2)->value, 0.0);
  }
}

TEST(InspectionGameTest, StrategiesAreProbabilities) {
  for (int n = 1; n <= 6; ++n) {
    for (int k = 0; k <= 3; ++k) {
      auto s = SolveInspectionGame(n, k);
      ASSERT_TRUE(s.ok());
      EXPECT_GE(s->violate_probability, 0.0);
      EXPECT_LE(s->violate_probability, 1.0);
      EXPECT_GE(s->inspect_probability, 0.0);
      EXPECT_LE(s->inspect_probability, 1.0);
    }
  }
}

TEST(InspectionGameTest, HarsherPunishmentLowersValue) {
  double lenient = SolveInspectionGame(4, 2, -1, 1)->value;
  double harsh = SolveInspectionGame(4, 2, -10, 1)->value;
  EXPECT_LT(harsh, lenient);
  EXPECT_GE(harsh, 0.0);  // ...but never below 0: the inspectee can wait.
}

TEST(InspectionGameTest, RefereeBeatsPlayerInspector) {
  // The paper's structural point: an equilibrium inspector leaves the
  // inspectee a positive value whenever k < n, while the committed
  // referee (frequency f, penalty P with fP > (1-f)F - B) drives the
  // *cheating advantage* negative. Here: inspectee value under optimal
  // inspector play vs the expected value of a single cheat against a
  // referee auditing with f = k/n and fining 1.
  for (int n : {4, 8}) {
    for (int k = 1; k < n; ++k) {
      double player_value = SolveInspectionGame(n, k)->value;
      EXPECT_GT(player_value, 0.0) << n << "," << k;
      double f = static_cast<double>(k) / n;
      double referee_value = (1 - f) * 1.0 + f * (-1.0);
      // The referee with the same inspection budget (plus commitment)
      // weakly improves on the strategic inspector: the cheater's value
      // is no higher, and for k <= n/2 strictly comparable...
      // At minimum, a referee with f > 1/2 makes cheating net-negative,
      // which no strategic inspector can.
      if (f > 0.5) {
        EXPECT_LT(referee_value, 0.0);
      }
    }
  }
}

TEST(InspectionGameTest, Validation) {
  EXPECT_FALSE(SolveInspectionGame(-1, 0).ok());
  EXPECT_FALSE(SolveInspectionGame(1, -1).ok());
  EXPECT_FALSE(SolveInspectionGame(1, 1, /*caught=*/0.5).ok());
  EXPECT_FALSE(SolveInspectionGame(1, 1, -1, -0.5).ok());
}

}  // namespace
}  // namespace hsis::game

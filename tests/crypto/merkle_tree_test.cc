#include "crypto/merkle_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hsis::crypto {
namespace {

std::vector<Bytes> Leaves(std::initializer_list<const char*> values) {
  std::vector<Bytes> out;
  for (const char* v : values) out.push_back(ToBytes(v));
  return out;
}

TEST(MerkleTreeTest, EmptyTreeHasStableRoot) {
  MerkleTree a = MerkleTree::Build({});
  MerkleTree b = MerkleTree::Build({});
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.leaf_count(), 0u);
}

TEST(MerkleTreeTest, SingleLeaf) {
  MerkleTree t = MerkleTree::Build(Leaves({"only"}));
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_NE(t.root(), MerkleTree::Build({}).root());
}

TEST(MerkleTreeTest, DeterministicRoot) {
  auto leaves = Leaves({"a", "b", "c", "d", "e"});
  EXPECT_EQ(MerkleTree::Build(leaves).root(), MerkleTree::Build(leaves).root());
}

TEST(MerkleTreeTest, OrderSensitive) {
  // The property that disqualifies a raw Merkle root as a *multiset*
  // commitment: permuting the leaves changes the root.
  EXPECT_NE(MerkleTree::Build(Leaves({"a", "b"})).root(),
            MerkleTree::Build(Leaves({"b", "a"})).root());
}

TEST(MerkleTreeTest, ContentSensitive) {
  EXPECT_NE(MerkleTree::Build(Leaves({"a", "b"})).root(),
            MerkleTree::Build(Leaves({"a", "c"})).root());
  EXPECT_NE(MerkleTree::Build(Leaves({"a"})).root(),
            MerkleTree::Build(Leaves({"a", "a"})).root());
}

TEST(MerkleTreeTest, LeafNodeDomainSeparation) {
  // A single leaf equal to an interior-node preimage must not produce
  // the two-leaf root (0x00/0x01 prefixes prevent it).
  MerkleTree two = MerkleTree::Build(Leaves({"x", "y"}));
  Bytes forged_leaf;
  forged_leaf.push_back(0x01);
  // (construction differs anyway; just assert inequality of the obvious forgery)
  MerkleTree one = MerkleTree::Build({forged_leaf});
  EXPECT_NE(one.root(), two.root());
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, ProveVerifyAllLeaves) {
  size_t n = GetParam();
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(ToBytes("leaf-" + std::to_string(i)));
  }
  MerkleTree tree = MerkleTree::Build(leaves);
  for (size_t i = 0; i < n; ++i) {
    Result<MerkleTree::Proof> proof = tree.Prove(i);
    ASSERT_TRUE(proof.ok()) << "n=" << n << " i=" << i;
    EXPECT_TRUE(MerkleTree::Verify(tree.root(), leaves[i], *proof, n))
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33));

TEST(MerkleTreeTest, VerifyRejectsWrongLeaf) {
  auto leaves = Leaves({"a", "b", "c", "d", "e"});
  MerkleTree tree = MerkleTree::Build(leaves);
  MerkleTree::Proof proof = std::move(tree.Prove(2).value());
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), ToBytes("z"), proof, 5));
}

TEST(MerkleTreeTest, VerifyRejectsWrongPosition) {
  auto leaves = Leaves({"a", "b", "c", "d"});
  MerkleTree tree = MerkleTree::Build(leaves);
  MerkleTree::Proof proof = std::move(tree.Prove(2).value());
  proof.leaf_index = 1;
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), ToBytes("c"), proof, 4));
}

TEST(MerkleTreeTest, VerifyRejectsTamperedSibling) {
  auto leaves = Leaves({"a", "b", "c", "d"});
  MerkleTree tree = MerkleTree::Build(leaves);
  MerkleTree::Proof proof = std::move(tree.Prove(0).value());
  proof.siblings[0][0] ^= 0x01;
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), ToBytes("a"), proof, 4));
}

TEST(MerkleTreeTest, ProveOutOfRangeFails) {
  MerkleTree tree = MerkleTree::Build(Leaves({"a", "b"}));
  EXPECT_FALSE(tree.Prove(2).ok());
}

TEST(MerkleTreeTest, UpdateLeafMatchesRebuild) {
  Rng rng(5);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 13; ++i) leaves.push_back(rng.RandomBytes(8));
  MerkleTree tree = MerkleTree::Build(leaves);
  for (size_t i : {size_t{0}, size_t{6}, size_t{12}}) {
    Bytes replacement = rng.RandomBytes(8);
    ASSERT_TRUE(tree.UpdateLeaf(i, replacement).ok());
    leaves[i] = replacement;
    EXPECT_EQ(tree.root(), MerkleTree::Build(leaves).root()) << i;
  }
  EXPECT_FALSE(tree.UpdateLeaf(99, ToBytes("x")).ok());
}

TEST(MerkleTreeTest, AppendLeafMatchesRebuild) {
  std::vector<Bytes> leaves = Leaves({"a", "b", "c"});
  MerkleTree tree = MerkleTree::Build(leaves);
  tree.AppendLeaf(ToBytes("d"));
  leaves.push_back(ToBytes("d"));
  EXPECT_EQ(tree.root(), MerkleTree::Build(leaves).root());
  EXPECT_EQ(tree.leaf_count(), 4u);
}

TEST(MerkleTreeTest, StateGrowsWithLeafCount) {
  MerkleTree small = MerkleTree::Build(Leaves({"a", "b"}));
  std::vector<Bytes> many;
  for (int i = 0; i < 256; ++i) many.push_back(ToBytes(std::to_string(i)));
  MerkleTree big = MerkleTree::Build(many);
  EXPECT_GT(big.StateBytes(), small.StateBytes() * 50);
}

}  // namespace
}  // namespace hsis::crypto

#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace hsis::crypto {
namespace {

std::string HashHex(std::string_view msg) {
  return HexEncode(Sha256::Hash(msg));
}

// NIST FIPS 180-4 / classic test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(reinterpret_cast<const uint8_t*>(msg.data()), split);
    h.Update(reinterpret_cast<const uint8_t*>(msg.data()) + split,
             msg.size() - split);
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, PaddingBoundaryLengths) {
  // Lengths straddling the 55/56/63/64-byte padding boundaries must all
  // produce distinct digests and not crash.
  std::set<std::string> digests;
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    digests.insert(HexEncode(Sha256::Hash(std::string(len, 'x'))));
  }
  EXPECT_EQ(digests.size(), 10u);
}

TEST(Sha256Test, DigestSizeIs32) {
  EXPECT_EQ(Sha256::Hash("x").size(), 32u);
}

}  // namespace
}  // namespace hsis::crypto

#include "crypto/multiset_hash.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

class MultisetHashSchemeTest
    : public ::testing::TestWithParam<MultisetHashScheme> {
 protected:
  MultisetHashFamily MakeFamily() const {
    MultisetHashScheme scheme = GetParam();
    bool keyed = scheme == MultisetHashScheme::kXor ||
                 scheme == MultisetHashScheme::kAdd;
    Result<MultisetHashFamily> f =
        MultisetHashFamily::Create(scheme, keyed ? ToBytes("test-key") : Bytes{});
    EXPECT_TRUE(f.ok());
    return *f;
  }

  static std::vector<Bytes> Elements(std::initializer_list<const char*> names) {
    std::vector<Bytes> out;
    for (const char* n : names) out.push_back(ToBytes(n));
    return out;
  }
};

TEST_P(MultisetHashSchemeTest, EmptyHashesEquivalent) {
  MultisetHashFamily f = MakeFamily();
  auto a = f.NewHash();
  auto b = f.NewHash();
  EXPECT_TRUE(a->Equivalent(*b));
  EXPECT_EQ(a->count(), 0u);
}

TEST_P(MultisetHashSchemeTest, OrderIndependence) {
  MultisetHashFamily f = MakeFamily();
  auto a = f.HashMultiset(Elements({"x", "y", "z"}));
  auto b = f.HashMultiset(Elements({"z", "x", "y"}));
  auto c = f.HashMultiset(Elements({"y", "z", "x"}));
  EXPECT_TRUE(a->Equivalent(*b));
  EXPECT_TRUE(b->Equivalent(*c));
  EXPECT_EQ(a->count(), 3u);
}

TEST_P(MultisetHashSchemeTest, DifferentMultisetsDiffer) {
  MultisetHashFamily f = MakeFamily();
  auto a = f.HashMultiset(Elements({"x", "y"}));
  auto b = f.HashMultiset(Elements({"x", "z"}));
  EXPECT_FALSE(a->Equivalent(*b));
}

TEST_P(MultisetHashSchemeTest, InsertionDetected) {
  // The auditing-device scenario: the cheater adds a fabricated tuple.
  MultisetHashFamily f = MakeFamily();
  auto honest = f.HashMultiset(Elements({"alice", "bob", "carol"}));
  auto cheater = f.HashMultiset(Elements({"alice", "bob", "carol", "mallory"}));
  EXPECT_FALSE(honest->Equivalent(*cheater));
}

TEST_P(MultisetHashSchemeTest, DeletionDetected) {
  MultisetHashFamily f = MakeFamily();
  auto honest = f.HashMultiset(Elements({"alice", "bob", "carol"}));
  auto cheater = f.HashMultiset(Elements({"alice", "bob"}));
  EXPECT_FALSE(honest->Equivalent(*cheater));
}

TEST_P(MultisetHashSchemeTest, MultiplicitySensitive) {
  MultisetHashFamily f = MakeFamily();
  auto once = f.HashMultiset(Elements({"x", "y"}));
  auto twice = f.HashMultiset(Elements({"x", "x", "y"}));
  EXPECT_FALSE(once->Equivalent(*twice));
}

TEST_P(MultisetHashSchemeTest, SubstitutionDetectedAtSameCount) {
  // Same cardinality, one element swapped — count alone cannot catch this.
  MultisetHashFamily f = MakeFamily();
  auto a = f.HashMultiset(Elements({"a", "b", "c", "d"}));
  auto b = f.HashMultiset(Elements({"a", "b", "c", "e"}));
  EXPECT_EQ(a->count(), b->count());
  EXPECT_FALSE(a->Equivalent(*b));
}

TEST_P(MultisetHashSchemeTest, IncrementalityMatchesBatch) {
  MultisetHashFamily f = MakeFamily();
  auto batch = f.HashMultiset(Elements({"1", "2", "3", "4", "5"}));
  auto incremental = f.NewHash();
  for (const char* e : {"1", "2", "3", "4", "5"}) {
    incremental->Add(ToBytes(e));
  }
  EXPECT_TRUE(batch->Equivalent(*incremental));
}

TEST_P(MultisetHashSchemeTest, UnionOperatorMatchesConcatenation) {
  // H(M ∪ M') ==H H(M) +H H(M') — the defining incrementality property.
  MultisetHashFamily f = MakeFamily();
  auto m1 = f.HashMultiset(Elements({"a", "b"}));
  auto m2 = f.HashMultiset(Elements({"c", "d", "b"}));
  ASSERT_TRUE(m1->Union(*m2).ok());
  auto all = f.HashMultiset(Elements({"a", "b", "b", "c", "d"}));
  EXPECT_TRUE(m1->Equivalent(*all));
  EXPECT_EQ(m1->count(), 5u);
}

TEST_P(MultisetHashSchemeTest, RemoveUndoesAdd) {
  MultisetHashFamily f = MakeFamily();
  auto h = f.HashMultiset(Elements({"a", "b"}));
  auto reference = h->Clone();
  h->Add(ToBytes("temp"));
  EXPECT_FALSE(h->Equivalent(*reference));
  ASSERT_TRUE(h->Remove(ToBytes("temp")).ok());
  EXPECT_TRUE(h->Equivalent(*reference));
}

TEST_P(MultisetHashSchemeTest, CloneIsIndependent) {
  MultisetHashFamily f = MakeFamily();
  auto h = f.HashMultiset(Elements({"a"}));
  auto clone = h->Clone();
  clone->Add(ToBytes("b"));
  EXPECT_FALSE(h->Equivalent(*clone));
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(clone->count(), 2u);
}

TEST_P(MultisetHashSchemeTest, SerializeDeserializeRoundTrip) {
  MultisetHashFamily f = MakeFamily();
  auto h = f.HashMultiset(Elements({"alpha", "beta", "gamma"}));
  Bytes wire = h->Serialize();
  Result<std::unique_ptr<MultisetHash>> back = f.Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(h->Equivalent(**back));
  EXPECT_EQ((*back)->count(), 3u);
  // The deserialized accumulator must remain incremental.
  (*back)->Add(ToBytes("delta"));
  h->Add(ToBytes("delta"));
  EXPECT_TRUE(h->Equivalent(**back));
}

TEST_P(MultisetHashSchemeTest, DeserializeRejectsGarbage) {
  MultisetHashFamily f = MakeFamily();
  EXPECT_FALSE(f.Deserialize(Bytes{}).ok());
  EXPECT_FALSE(f.Deserialize(Bytes(4, 0xff)).ok());
  Bytes wire = f.NewHash()->Serialize();
  wire[0] = 0x63;  // unknown scheme byte
  EXPECT_FALSE(f.Deserialize(wire).ok());
}

TEST_P(MultisetHashSchemeTest, StateIsConstantSize) {
  // Compression property: accumulator size independent of multiset size.
  MultisetHashFamily f = MakeFamily();
  auto small = f.HashMultiset(Elements({"a"}));
  auto big = f.NewHash();
  for (int i = 0; i < 1000; ++i) big->Add(ToBytes("elem" + std::to_string(i)));
  EXPECT_EQ(small->Serialize().size(), big->Serialize().size());
  EXPECT_LE(big->Serialize().size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MultisetHashSchemeTest,
    ::testing::Values(MultisetHashScheme::kXor, MultisetHashScheme::kAdd,
                      MultisetHashScheme::kMu, MultisetHashScheme::kVAdd),
    [](const ::testing::TestParamInfo<MultisetHashScheme>& info) {
      switch (info.param) {
        case MultisetHashScheme::kXor: return std::string("Xor");
        case MultisetHashScheme::kAdd: return std::string("Add");
        case MultisetHashScheme::kMu: return std::string("Mu");
        case MultisetHashScheme::kVAdd: return std::string("VAdd");
      }
      return std::string("Unknown");
    });

TEST(MultisetHashFamilyTest, KeyedSchemesRequireKey) {
  EXPECT_FALSE(MultisetHashFamily::Create(MultisetHashScheme::kXor).ok());
  EXPECT_FALSE(MultisetHashFamily::Create(MultisetHashScheme::kAdd).ok());
  EXPECT_TRUE(
      MultisetHashFamily::Create(MultisetHashScheme::kXor, ToBytes("k")).ok());
}

TEST(MultisetHashFamilyTest, UnkeyedSchemesRejectKey) {
  EXPECT_FALSE(
      MultisetHashFamily::Create(MultisetHashScheme::kMu, ToBytes("k")).ok());
  EXPECT_FALSE(
      MultisetHashFamily::Create(MultisetHashScheme::kVAdd, ToBytes("k")).ok());
}

TEST(MultisetHashFamilyTest, DifferentKeysProduceDifferentHashes) {
  Result<MultisetHashFamily> f1 =
      MultisetHashFamily::Create(MultisetHashScheme::kAdd, ToBytes("key1"));
  Result<MultisetHashFamily> f2 =
      MultisetHashFamily::Create(MultisetHashScheme::kAdd, ToBytes("key2"));
  ASSERT_TRUE(f1.ok() && f2.ok());
  auto h1 = f1->HashMultiset({ToBytes("x")});
  auto h2 = f2->HashMultiset({ToBytes("x")});
  EXPECT_NE(h1->Serialize(), h2->Serialize());
}

TEST(MultisetHashFamilyTest, RandomizedNoncesCompareEquivalent) {
  // Comparability (Definition 3): a multiset need not hash to the same
  // value, but ==H must still identify equal multisets.
  Result<MultisetHashFamily> f =
      MultisetHashFamily::Create(MultisetHashScheme::kAdd, ToBytes("key"));
  ASSERT_TRUE(f.ok());
  Rng rng(42);
  auto a = f->NewHashRandomized(rng);
  auto b = f->NewHashRandomized(rng);
  for (const char* e : {"p", "q", "r"}) {
    a->Add(ToBytes(e));
    b->Add(ToBytes(e));
  }
  EXPECT_NE(a->Serialize(), b->Serialize());  // different nonces
  EXPECT_TRUE(a->Equivalent(*b));             // same multiset
  b->Add(ToBytes("s"));
  EXPECT_FALSE(a->Equivalent(*b));
}

TEST(MultisetHashFamilyTest, RandomizedUnionStillCorrect) {
  Result<MultisetHashFamily> f =
      MultisetHashFamily::Create(MultisetHashScheme::kXor, ToBytes("key"));
  ASSERT_TRUE(f.ok());
  Rng rng(43);
  auto a = f->NewHashRandomized(rng);
  a->Add(ToBytes("1"));
  auto b = f->NewHashRandomized(rng);
  b->Add(ToBytes("2"));
  ASSERT_TRUE(a->Union(*b).ok());
  auto expected = f->HashMultiset({ToBytes("1"), ToBytes("2")});
  EXPECT_TRUE(a->Equivalent(*expected));
}

TEST(MultisetHashFamilyTest, CrossSchemeOperationsRejected) {
  Result<MultisetHashFamily> mu = MultisetHashFamily::Create(MultisetHashScheme::kMu);
  Result<MultisetHashFamily> vadd =
      MultisetHashFamily::Create(MultisetHashScheme::kVAdd);
  ASSERT_TRUE(mu.ok() && vadd.ok());
  auto a = mu->NewHash();
  auto b = vadd->NewHash();
  EXPECT_FALSE(a->Union(*b).ok());
  EXPECT_FALSE(a->Equivalent(*b));
  EXPECT_FALSE(mu->Deserialize(b->Serialize()).ok());
}

TEST(MultisetHashFamilyTest, MuHashOnCustomGroup) {
  Result<MultisetHashFamily> f =
      MultisetHashFamily::CreateMu(PrimeGroup::SmallTestGroup());
  ASSERT_TRUE(f.ok());
  auto a = f->HashMultiset({ToBytes("x"), ToBytes("y")});
  auto b = f->HashMultiset({ToBytes("y"), ToBytes("x")});
  EXPECT_TRUE(a->Equivalent(*b));
}

TEST(MultisetHashFamilyTest, SchemeNames) {
  EXPECT_STREQ(MultisetHashSchemeName(MultisetHashScheme::kXor), "MSet-XOR-Hash");
  EXPECT_STREQ(MultisetHashSchemeName(MultisetHashScheme::kAdd), "MSet-Add-Hash");
  EXPECT_STREQ(MultisetHashSchemeName(MultisetHashScheme::kMu), "MSet-Mu-Hash");
  EXPECT_STREQ(MultisetHashSchemeName(MultisetHashScheme::kVAdd), "MSet-VAdd-Hash");
}

}  // namespace
}  // namespace hsis::crypto

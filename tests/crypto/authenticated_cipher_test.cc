#include "crypto/authenticated_cipher.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

AuthenticatedCipher MakeCipher() {
  Result<AuthenticatedCipher> c = AuthenticatedCipher::Create(Bytes(32, 0x5a));
  EXPECT_TRUE(c.ok());
  return *c;
}

TEST(AuthenticatedCipherTest, SealOpenRoundTrip) {
  AuthenticatedCipher c = MakeCipher();
  Bytes nonce(12, 0x01);
  Bytes msg = ToBytes("secret payload");
  Bytes aad = ToBytes("header");

  Result<Bytes> sealed = c.Seal(nonce, msg, aad);
  ASSERT_TRUE(sealed.ok());
  Result<Bytes> opened = c.Open(*sealed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, msg);
}

TEST(AuthenticatedCipherTest, CiphertextHidesPlaintext) {
  AuthenticatedCipher c = MakeCipher();
  Bytes msg = ToBytes("secret payload");
  Result<Bytes> sealed = c.Seal(Bytes(12, 0x01), msg, {});
  ASSERT_TRUE(sealed.ok());
  std::string blob = BytesToString(*sealed);
  EXPECT_EQ(blob.find("secret"), std::string::npos);
}

TEST(AuthenticatedCipherTest, DetectsCiphertextTamper) {
  AuthenticatedCipher c = MakeCipher();
  Result<Bytes> sealed = c.Seal(Bytes(12, 0x01), ToBytes("data"), {});
  ASSERT_TRUE(sealed.ok());
  for (size_t i = 0; i < sealed->size(); i += 7) {
    Bytes corrupted = *sealed;
    corrupted[i] ^= 0x01;
    Result<Bytes> opened = c.Open(corrupted, {});
    EXPECT_FALSE(opened.ok()) << "tamper at byte " << i << " not detected";
    EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityViolation);
  }
}

TEST(AuthenticatedCipherTest, DetectsAadMismatch) {
  AuthenticatedCipher c = MakeCipher();
  Result<Bytes> sealed = c.Seal(Bytes(12, 0x01), ToBytes("data"), ToBytes("aad1"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(c.Open(*sealed, ToBytes("aad2")).ok());
  EXPECT_TRUE(c.Open(*sealed, ToBytes("aad1")).ok());
}

TEST(AuthenticatedCipherTest, DetectsTruncation) {
  AuthenticatedCipher c = MakeCipher();
  Result<Bytes> sealed = c.Seal(Bytes(12, 0x01), ToBytes("data"), {});
  ASSERT_TRUE(sealed.ok());
  Bytes truncated(sealed->begin(), sealed->end() - 1);
  EXPECT_FALSE(c.Open(truncated, {}).ok());
  EXPECT_FALSE(c.Open(Bytes(10, 0x00), {}).ok());
}

TEST(AuthenticatedCipherTest, DifferentKeysCannotOpen) {
  AuthenticatedCipher a = MakeCipher();
  Result<AuthenticatedCipher> b = AuthenticatedCipher::Create(Bytes(32, 0x77));
  ASSERT_TRUE(b.ok());
  Result<Bytes> sealed = a.Seal(Bytes(12, 0x01), ToBytes("data"), {});
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(b->Open(*sealed, {}).ok());
}

TEST(AuthenticatedCipherTest, RejectsBadSizes) {
  EXPECT_FALSE(AuthenticatedCipher::Create(Bytes(16, 0)).ok());
  AuthenticatedCipher c = MakeCipher();
  EXPECT_FALSE(c.Seal(Bytes(8, 0), ToBytes("x"), {}).ok());
}

TEST(AuthenticatedCipherTest, EmptyPlaintextAllowed) {
  AuthenticatedCipher c = MakeCipher();
  Result<Bytes> sealed = c.Seal(Bytes(12, 0x09), Bytes{}, ToBytes("aad"));
  ASSERT_TRUE(sealed.ok());
  Result<Bytes> opened = c.Open(*sealed, ToBytes("aad"));
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

}  // namespace
}  // namespace hsis::crypto

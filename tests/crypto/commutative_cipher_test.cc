#include "crypto/commutative_cipher.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

TEST(CommutativeCipherTest, EncryptDecryptRoundTrip) {
  Rng rng(1);
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 20; ++i) {
    U256 x = g.HashToElement(rng.RandomBytes(8));
    EXPECT_EQ(c->Decrypt(c->Encrypt(x)), x);
  }
}

TEST(CommutativeCipherTest, CommutativityTwoKeys) {
  Rng rng(2);
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c1 = CommutativeCipher::Create(g, rng);
  Result<CommutativeCipher> c2 = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  for (int i = 0; i < 20; ++i) {
    U256 x = g.HashToElement(rng.RandomBytes(8));
    EXPECT_EQ(c1->Encrypt(c2->Encrypt(x)), c2->Encrypt(c1->Encrypt(x)));
  }
}

TEST(CommutativeCipherTest, CommutativityThreeKeys) {
  Rng rng(3);
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c1 = CommutativeCipher::Create(g, rng);
  Result<CommutativeCipher> c2 = CommutativeCipher::Create(g, rng);
  Result<CommutativeCipher> c3 = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c1.ok() && c2.ok() && c3.ok());
  U256 x = g.HashToElement(ToBytes("tuple"));
  U256 a = c1->Encrypt(c2->Encrypt(c3->Encrypt(x)));
  U256 b = c3->Encrypt(c1->Encrypt(c2->Encrypt(x)));
  U256 c = c2->Encrypt(c3->Encrypt(c1->Encrypt(x)));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(CommutativeCipherTest, PartialDecryptionPeelsOneLayer) {
  Rng rng(4);
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c1 = CommutativeCipher::Create(g, rng);
  Result<CommutativeCipher> c2 = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  U256 x = g.HashToElement(ToBytes("t"));
  U256 doubly = c1->Encrypt(c2->Encrypt(x));
  EXPECT_EQ(c1->Decrypt(doubly), c2->Encrypt(x));
  EXPECT_EQ(c2->Decrypt(doubly), c1->Encrypt(x));
}

TEST(CommutativeCipherTest, EncryptionIsInjectiveOnSamples) {
  Rng rng(5);
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c.ok());
  std::set<std::string> images;
  for (int i = 0; i < 100; ++i) {
    U256 x = g.HashToElement(ToBytes("elem" + std::to_string(i)));
    images.insert(c->Encrypt(x).ToHex());
  }
  EXPECT_EQ(images.size(), 100u);
}

TEST(CommutativeCipherTest, EqualPlaintextsEqualCiphertexts) {
  // Deterministic: matching is exactly what the intersection protocol uses.
  Rng rng(6);
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->EncryptBytes(ToBytes("alice")), c->EncryptBytes(ToBytes("alice")));
  EXPECT_NE(c->EncryptBytes(ToBytes("alice")), c->EncryptBytes(ToBytes("bob")));
}

TEST(CommutativeCipherTest, CreateWithKeyValidatesRange) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  EXPECT_FALSE(CommutativeCipher::CreateWithKey(g, U256(0)).ok());
  EXPECT_FALSE(CommutativeCipher::CreateWithKey(g, g.order()).ok());
  EXPECT_TRUE(CommutativeCipher::CreateWithKey(g, U256(12345)).ok());
}

TEST(CommutativeCipherTest, DistinctKeysDistinctCiphertexts) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Result<CommutativeCipher> c1 = CommutativeCipher::CreateWithKey(g, U256(11));
  Result<CommutativeCipher> c2 = CommutativeCipher::CreateWithKey(g, U256(13));
  ASSERT_TRUE(c1.ok() && c2.ok());
  U256 x = g.HashToElement(ToBytes("v"));
  EXPECT_NE(c1->Encrypt(x), c2->Encrypt(x));
}

TEST(CommutativeCipherTest, WorksOnDefault256BitGroup) {
  Rng rng(7);
  const PrimeGroup& g = PrimeGroup::Default();
  Result<CommutativeCipher> c1 = CommutativeCipher::Create(g, rng);
  Result<CommutativeCipher> c2 = CommutativeCipher::Create(g, rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  U256 x = g.HashToElement(ToBytes("production-sized group"));
  EXPECT_EQ(c1->Encrypt(c2->Encrypt(x)), c2->Encrypt(c1->Encrypt(x)));
  EXPECT_EQ(c1->Decrypt(c1->Encrypt(x)), x);
}

}  // namespace
}  // namespace hsis::crypto

// Differential suite pinning `FixedExponentContext` (the fixed-window
// Montgomery ladder behind `CommutativeCipher`) bit-identical to the
// naive `MontgomeryContext::ModExp` ladder — random exponents,
// adversarial exponent shapes (0, 1, 2^k, all-ones, q-1, n-2),
// window-boundary bit patterns, every window width, and adversarial
// bases including unreduced ones (PR 9).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/group.h"
#include "crypto/modmath.h"
#include "crypto/prime.h"

namespace hsis::crypto {
namespace {

U256 RandBelow(Rng& rng, const U256& m) {
  return DivMod(U256::FromBytesBE(rng.RandomBytes(32)), m).remainder;
}

std::vector<U256> TestModuli() {
  return {
      U256(101),
      U256(0x9390aa633eae9f7fULL),
      DefaultSafePrime(),
      DefaultSubgroupOrder(),
  };
}

/// Checks windowed == naive for `exp` over a spread of bases under
/// every explicit window width plus the auto-selected one.
void ExpectWindowedMatchesLadder(const MontgomeryContext& ctx,
                                 const U256& exp) {
  Rng rng(exp.BitLength() * 1000003 + 17);
  std::vector<U256> bases = {U256(0), U256(1), U256(2),
                             ctx.modulus() - U256(1)};
  for (int i = 0; i < 8; ++i) bases.push_back(RandBelow(rng, ctx.modulus()));
  for (int w = 0; w <= FixedExponentContext::kMaxWindowBits; ++w) {
    Result<FixedExponentContext> windowed =
        FixedExponentContext::Create(ctx, exp, w);
    ASSERT_TRUE(windowed.ok()) << windowed.status().message();
    for (const U256& base : bases) {
      EXPECT_EQ(windowed->ModExp(base), ctx.ModExp(base, exp))
          << "modulus " << ctx.modulus().ToHex() << " exp " << exp.ToHex()
          << " base " << base.ToHex() << " w " << w;
    }
  }
}

TEST(FixedExponentTest, RandomExponentDifferential) {
  Rng rng(2024);
  for (const U256& m : TestModuli()) {
    Result<MontgomeryContext> ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int i = 0; i < 6; ++i) {
      ExpectWindowedMatchesLadder(*ctx, RandBelow(rng, m));
    }
  }
}

TEST(FixedExponentTest, AdversarialExponentShapes) {
  const U256 n = DefaultSafePrime();
  const U256 q = DefaultSubgroupOrder();
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(n);
  ASSERT_TRUE(ctx.ok());

  std::vector<U256> exps = {U256(0), U256(1), U256(2), q - U256(1),
                            n - U256(2)};
  // Single-bit exponents 2^k: one nonzero window digit, everything else
  // pure squarings.
  for (size_t k : {size_t{1}, size_t{5}, size_t{63}, size_t{64}, size_t{255}}) {
    exps.push_back(U256(1) << k);
  }
  // All-ones runs: every window digit is the maximal value, so the full
  // power table is exercised.
  for (size_t bits : {size_t{4}, size_t{17}, size_t{64}, size_t{255}}) {
    exps.push_back((U256(1) << bits) - U256(1));
  }
  for (const U256& e : exps) ExpectWindowedMatchesLadder(*ctx, e);
}

TEST(FixedExponentTest, WindowBoundaryBitPatterns) {
  // Exponents whose bit lengths straddle window boundaries: the top
  // (ragged) digit takes every size from 1 bit up to a full window, and
  // a zero just below the boundary forces a skipped-multiply window.
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(DefaultSafePrime());
  ASSERT_TRUE(ctx.ok());
  for (size_t bits = 1; bits <= 26; ++bits) {
    const U256 top = U256(1) << (bits - 1);
    ExpectWindowedMatchesLadder(*ctx, top);            // 100...0
    ExpectWindowedMatchesLadder(*ctx, top + U256(1));  // 100...01
    if (bits >= 2) {
      // 101...1 with a zero at the second-highest position.
      ExpectWindowedMatchesLadder(*ctx, top + (top >> 2) + U256(1));
    }
  }
}

TEST(FixedExponentTest, UnreducedBaseMatchesPreReduction) {
  // base >= n must behave exactly like base mod n, for both ladders.
  const U256 m(0x9390aa633eae9f7fULL);
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(m);
  ASSERT_TRUE(ctx.ok());
  Rng rng(31337);
  const U256 exp = RandBelow(rng, m);
  Result<FixedExponentContext> windowed =
      FixedExponentContext::Create(*ctx, exp);
  ASSERT_TRUE(windowed.ok());
  for (int i = 0; i < 16; ++i) {
    const U256 reduced = RandBelow(rng, m);
    const U256 lifted = reduced + m + m;  // same residue, >= n
    EXPECT_EQ(windowed->ModExp(lifted), windowed->ModExp(reduced));
    EXPECT_EQ(ctx->ModExp(lifted, exp), ctx->ModExp(reduced, exp));
    EXPECT_EQ(windowed->ModExp(lifted), ctx->ModExp(reduced, exp));
  }
}

TEST(FixedExponentTest, MontSqrMatchesMontMul) {
  Rng rng(4242);
  for (const U256& m : TestModuli()) {
    Result<MontgomeryContext> ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    std::vector<U256> values = {U256(0), U256(1), m - U256(1)};
    for (int i = 0; i < 50; ++i) values.push_back(RandBelow(rng, m));
    for (const U256& a : values) {
      EXPECT_EQ(ctx->MontSqr(a), ctx->MontMul(a, a))
          << "modulus " << m.ToHex() << " a " << a.ToHex();
    }
  }
}

TEST(FixedExponentTest, TrivialExponentsShortCircuit) {
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(U256(1000003));
  ASSERT_TRUE(ctx.ok());
  Result<FixedExponentContext> zero =
      FixedExponentContext::Create(*ctx, U256(0));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->ModExp(U256(5)), U256(1));
  EXPECT_EQ(zero->ModExp(U256(0)), U256(1));  // 0^0 == 1, like the ladder
  Result<FixedExponentContext> one = FixedExponentContext::Create(*ctx, U256(1));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->ModExp(U256(7)), U256(7));
  EXPECT_EQ(one->ModExp(U256(1000003 + 7)), U256(7));  // pre-reduced
}

TEST(FixedExponentTest, CreateValidatesWindowBits) {
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(U256(101));
  ASSERT_TRUE(ctx.ok());
  EXPECT_FALSE(FixedExponentContext::Create(*ctx, U256(5), 7).ok());
  EXPECT_FALSE(FixedExponentContext::Create(*ctx, U256(5), -1).ok());
  Result<FixedExponentContext> auto_w =
      FixedExponentContext::Create(*ctx, U256(5));
  ASSERT_TRUE(auto_w.ok());
  EXPECT_GE(auto_w->window_bits(), 1);
  EXPECT_LE(auto_w->window_bits(), FixedExponentContext::kMaxWindowBits);
}

TEST(FixedExponentTest, GroupFixedExpMatchesGroupExp) {
  // The exact path `CommutativeCipher` takes: per-key schedule over the
  // production group, compared against `PrimeGroup::Exp` on hashed
  // elements — the same differential the protocol suites inherit.
  const PrimeGroup& group = PrimeGroup::Default();
  Rng rng(777);
  for (int trial = 0; trial < 3; ++trial) {
    const U256 key = group.RandomExponent(rng);
    Result<FixedExponentContext> windowed = group.FixedExp(key);
    ASSERT_TRUE(windowed.ok());
    EXPECT_EQ(windowed->exponent(), key);
    for (int i = 0; i < 8; ++i) {
      const U256 x = group.HashToElement(
          ToBytes("fixed-exp-" + std::to_string(trial * 100 + i)));
      EXPECT_EQ(windowed->ModExp(x), group.Exp(x, key));
    }
  }
}

}  // namespace
}  // namespace hsis::crypto

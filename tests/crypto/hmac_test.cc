#include "crypto/hmac_sha256.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = ToBytes("Hi There");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Bytes msg = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes msg = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, KeySensitivity) {
  Bytes msg = ToBytes("message");
  EXPECT_NE(HmacSha256(ToBytes("key1"), msg), HmacSha256(ToBytes("key2"), msg));
}

TEST(HmacPrfTest, TagSeparatesDomains) {
  Bytes key = ToBytes("k");
  Bytes msg = ToBytes("m");
  EXPECT_NE(HmacPrf(key, 0, msg), HmacPrf(key, 1, msg));
}

TEST(HmacPrfTest, MatchesManualTagging) {
  Bytes key = ToBytes("k");
  Bytes tagged = {0x01, 'm'};
  EXPECT_EQ(HmacPrf(key, 1, ToBytes("m")), HmacSha256(key, tagged));
}

TEST(DeriveKeyTest, ProducesRequestedLength) {
  Bytes master = ToBytes("master-secret");
  EXPECT_EQ(DeriveKey(master, "label", 16).size(), 16u);
  EXPECT_EQ(DeriveKey(master, "label", 32).size(), 32u);
  EXPECT_EQ(DeriveKey(master, "label", 100).size(), 100u);
}

TEST(DeriveKeyTest, LabelsAreIndependent) {
  Bytes master = ToBytes("master-secret");
  EXPECT_NE(DeriveKey(master, "enc", 32), DeriveKey(master, "mac", 32));
}

TEST(DeriveKeyTest, PrefixConsistency) {
  // A shorter derivation is a prefix of a longer one with the same label.
  Bytes master = ToBytes("m");
  Bytes long_key = DeriveKey(master, "x", 64);
  Bytes short_key = DeriveKey(master, "x", 16);
  EXPECT_TRUE(std::equal(short_key.begin(), short_key.end(), long_key.begin()));
}

}  // namespace
}  // namespace hsis::crypto

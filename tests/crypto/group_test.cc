#include "crypto/group.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

TEST(PrimeGroupTest, DefaultGroupProperties) {
  const PrimeGroup& g = PrimeGroup::Default();
  EXPECT_EQ(g.modulus().BitLength(), 256u);
  EXPECT_EQ(g.order(), (g.modulus() - U256(1)) >> 1);
}

TEST(PrimeGroupTest, CreateRejectsNonOdd) {
  EXPECT_FALSE(PrimeGroup::Create(U256(100)).ok());
  EXPECT_FALSE(PrimeGroup::Create(U256(5)).ok());  // below minimum
}

TEST(PrimeGroupTest, CreateWithPrimalityCheckRejectsComposite) {
  // 2q+1 with composite q shape: 27 = 2*13+1 and 13 is prime but 27 = 3^3.
  EXPECT_FALSE(PrimeGroup::Create(U256(27), true).ok());
  EXPECT_TRUE(PrimeGroup::Create(U256(23), true).ok());  // 23 = 2*11+1
}

TEST(PrimeGroupTest, HashToElementProducesSubgroupElements) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  for (int i = 0; i < 30; ++i) {
    Bytes data = ToBytes("element-" + std::to_string(i));
    U256 e = g.HashToElement(data);
    EXPECT_TRUE(g.IsElement(e)) << i;
  }
}

TEST(PrimeGroupTest, HashToElementDeterministic) {
  const PrimeGroup& g = PrimeGroup::Default();
  EXPECT_EQ(g.HashToElement(ToBytes("x")), g.HashToElement(ToBytes("x")));
  EXPECT_NE(g.HashToElement(ToBytes("x")), g.HashToElement(ToBytes("y")));
}

TEST(PrimeGroupTest, IsElementRejectsOutOfRange) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  EXPECT_FALSE(g.IsElement(U256(0)));
  EXPECT_FALSE(g.IsElement(g.modulus()));
  EXPECT_TRUE(g.IsElement(U256(1)));  // identity
  EXPECT_TRUE(g.IsElement(U256(4)));  // 2^2 is always a QR
}

TEST(PrimeGroupTest, NonResidueRejected) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  // p = 2q+1 with q odd => 2 divides (p-1)/2 never... -1 is a non-residue
  // for p ≡ 3 (mod 4), which holds for all safe primes > 7.
  U256 minus_one = g.modulus() - U256(1);
  EXPECT_FALSE(g.IsElement(minus_one));
}

TEST(PrimeGroupTest, MulExpInverseConsistency) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    U256 a = g.HashToElement(rng.RandomBytes(8));
    U256 b = g.HashToElement(rng.RandomBytes(8));
    EXPECT_EQ(g.Mul(a, b), g.Mul(b, a));
    Result<U256> inv = g.Inverse(a);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(g.Mul(a, *inv), PrimeGroup::One());
    // a^q == 1 (Lagrange)
    EXPECT_EQ(g.Exp(a, g.order()), PrimeGroup::One());
  }
}

TEST(PrimeGroupTest, RandomExponentInRange) {
  const PrimeGroup& g = PrimeGroup::Default();
  Rng rng(321);
  for (int i = 0; i < 20; ++i) {
    U256 e = g.RandomExponent(rng);
    EXPECT_FALSE(e.IsZero());
    EXPECT_LT(e, g.order());
  }
}

TEST(PrimeGroupTest, InverseExponentUndoesExp) {
  const PrimeGroup& g = PrimeGroup::SmallTestGroup();
  Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    U256 x = g.HashToElement(rng.RandomBytes(8));
    U256 e = g.RandomExponent(rng);
    Result<U256> d = g.InverseExponent(e);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(g.Exp(g.Exp(x, e), *d), x);
  }
}

}  // namespace
}  // namespace hsis::crypto

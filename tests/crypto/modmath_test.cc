#include "crypto/modmath.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/prime.h"

namespace hsis::crypto {
namespace {

U256 RandBelow(Rng& rng, const U256& m) {
  return DivMod(U256::FromBytesBE(rng.RandomBytes(32)), m).remainder;
}

TEST(ModMathTest, ModAddWraps) {
  U256 m(97);
  EXPECT_EQ(ModAdd(U256(50), U256(60), m), U256(13));
  EXPECT_EQ(ModAdd(U256(0), U256(0), m), U256(0));
  EXPECT_EQ(ModAdd(U256(96), U256(1), m), U256(0));
}

TEST(ModMathTest, ModAddHandlesCarryOut) {
  // Modulus with the top bit set: a + b can overflow 256 bits.
  U256 m = (U256(1) << 255) + U256(1);  // odd, > 2^255
  U256 a = m - U256(1);
  U256 b = m - U256(2);
  // (a + b) mod m == m - 3
  EXPECT_EQ(ModAdd(a, b, m), m - U256(3));
}

TEST(ModMathTest, ModSubWraps) {
  U256 m(97);
  EXPECT_EQ(ModSub(U256(10), U256(20), m), U256(87));
  EXPECT_EQ(ModSub(U256(20), U256(10), m), U256(10));
  EXPECT_EQ(ModSub(U256(5), U256(5), m), U256(0));
}

TEST(ModMathTest, ModMulSlowSmall) {
  EXPECT_EQ(ModMulSlow(U256(12), U256(13), U256(100)), U256(56));
}

TEST(ModMathTest, GcdBasics) {
  EXPECT_EQ(Gcd(U256(12), U256(18)), U256(6));
  EXPECT_EQ(Gcd(U256(17), U256(13)), U256(1));
  EXPECT_EQ(Gcd(U256(0), U256(5)), U256(5));
  EXPECT_EQ(Gcd(U256(5), U256(0)), U256(5));
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_FALSE(MontgomeryContext::Create(U256(100)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(U256(1)).ok());
  EXPECT_TRUE(MontgomeryContext::Create(U256(101)).ok());
}

TEST(MontgomeryTest, MontMulMatchesSlowMul) {
  Rng rng(1234);
  std::vector<U256> moduli = {
      U256(101),
      U256(0x9390aa633eae9f7fULL),
      DefaultSafePrime(),
      DefaultSubgroupOrder(),
  };
  for (const U256& m : moduli) {
    Result<MontgomeryContext> ctx = MontgomeryContext::Create(m);
    ASSERT_TRUE(ctx.ok());
    for (int i = 0; i < 50; ++i) {
      U256 a = RandBelow(rng, m), b = RandBelow(rng, m);
      EXPECT_EQ(ctx->ModMul(a, b), ModMulSlow(a, b, m))
          << "modulus " << m.ToHex();
    }
  }
}

TEST(MontgomeryTest, ToFromMontRoundTrip) {
  Rng rng(99);
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(DefaultSafePrime());
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 50; ++i) {
    U256 a = RandBelow(rng, ctx->modulus());
    EXPECT_EQ(ctx->FromMont(ctx->ToMont(a)), a);
  }
}

TEST(MontgomeryTest, ModExpSmallCases) {
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(U256(1000003));
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(ctx->ModExp(U256(2), U256(10)), U256(1024));
  EXPECT_EQ(ctx->ModExp(U256(5), U256(0)), U256(1));
  EXPECT_EQ(ctx->ModExp(U256(0), U256(5)), U256(0));
  EXPECT_EQ(ctx->ModExp(U256(7), U256(1)), U256(7));
}

TEST(MontgomeryTest, ModExpFermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p and a not divisible by p.
  Rng rng(55);
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(DefaultSafePrime());
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 10; ++i) {
    U256 a = RandBelow(rng, ctx->modulus());
    if (a.IsZero()) continue;
    EXPECT_EQ(ctx->ModExp(a, ctx->modulus() - U256(1)), U256(1));
  }
}

TEST(MontgomeryTest, ModExpMultiplicativeHomomorphism) {
  // a^(x+y) == a^x * a^y mod p.
  Rng rng(66);
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(DefaultSafePrime());
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 10; ++i) {
    U256 a = RandBelow(rng, ctx->modulus());
    U256 x = U256(rng.UniformUint64(1 << 20));
    U256 y = U256(rng.UniformUint64(1 << 20));
    EXPECT_EQ(ctx->ModExp(a, x + y),
              ctx->ModMul(ctx->ModExp(a, x), ctx->ModExp(a, y)));
  }
}

TEST(MontgomeryTest, ModInversePrime) {
  Rng rng(77);
  Result<MontgomeryContext> ctx = MontgomeryContext::Create(DefaultSafePrime());
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 10; ++i) {
    U256 a = RandBelow(rng, ctx->modulus());
    if (a.IsZero()) continue;
    Result<U256> inv = ctx->ModInversePrime(a);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(ctx->ModMul(a, *inv), U256(1));
  }
  EXPECT_FALSE(ctx->ModInversePrime(U256(0)).ok());
}

}  // namespace
}  // namespace hsis::crypto

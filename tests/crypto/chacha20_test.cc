#include "crypto/chacha20.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

Bytes MustHex(std::string_view h) {
  Result<Bytes> r = HexDecode(h);
  EXPECT_TRUE(r.ok());
  return *r;
}

// RFC 8439 section 2.3.2 block-function test vector.
TEST(ChaCha20Test, Rfc8439BlockFunction) {
  std::array<uint32_t, 8> key;
  for (uint32_t i = 0; i < 8; ++i) {
    key[i] = (4 * i) | ((4 * i + 1) << 8) | ((4 * i + 2) << 16) |
             ((4 * i + 3) << 24);
  }
  std::array<uint32_t, 3> nonce = {0x09000000, 0x4a000000, 0x00000000};
  std::array<uint8_t, 64> block = ChaCha20::Block(key, nonce, 1);
  Bytes got(block.begin(), block.end());
  EXPECT_EQ(HexEncode(got),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2 encryption test vector.
TEST(ChaCha20Test, Rfc8439Encryption) {
  Bytes key = MustHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = MustHex("000000000000004a00000000");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Result<Bytes> ct =
      ChaCha20::Apply(key, nonce, ToBytes(plaintext), /*initial_counter=*/1);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(HexEncode(*ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20Test, EncryptDecryptRoundTrip) {
  Bytes key(32, 0x42);
  Bytes nonce(12, 0x07);
  Bytes msg = ToBytes("round trip message of arbitrary length 12345");
  Result<Bytes> ct = ChaCha20::Apply(key, nonce, msg);
  ASSERT_TRUE(ct.ok());
  EXPECT_NE(*ct, msg);
  Result<Bytes> pt = ChaCha20::Apply(key, nonce, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
}

TEST(ChaCha20Test, StreamingMatchesOneShot) {
  Bytes key(32, 0x11);
  Bytes nonce(12, 0x22);
  Bytes msg(1000);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);

  Result<Bytes> oneshot = ChaCha20::Apply(key, nonce, msg);
  ASSERT_TRUE(oneshot.ok());

  Result<ChaCha20> cipher = ChaCha20::Create(key, nonce);
  ASSERT_TRUE(cipher.ok());
  Bytes streamed;
  for (size_t off = 0; off < msg.size(); off += 37) {
    size_t n = std::min<size_t>(37, msg.size() - off);
    Bytes chunk(msg.begin() + static_cast<ptrdiff_t>(off),
                msg.begin() + static_cast<ptrdiff_t>(off + n));
    cipher->Process(chunk);
    Append(streamed, chunk);
  }
  EXPECT_EQ(streamed, *oneshot);
}

TEST(ChaCha20Test, RejectsBadKeyOrNonceSize) {
  EXPECT_FALSE(ChaCha20::Create(Bytes(31, 0), Bytes(12, 0)).ok());
  EXPECT_FALSE(ChaCha20::Create(Bytes(32, 0), Bytes(11, 0)).ok());
  EXPECT_TRUE(ChaCha20::Create(Bytes(32, 0), Bytes(12, 0)).ok());
}

TEST(ChaCha20Test, DifferentNoncesDifferentStreams) {
  Bytes key(32, 0x01);
  Bytes msg(64, 0x00);
  Result<Bytes> a = ChaCha20::Apply(key, Bytes(12, 0x01), msg);
  Result<Bytes> b = ChaCha20::Apply(key, Bytes(12, 0x02), msg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

}  // namespace
}  // namespace hsis::crypto

#include "crypto/prime.h"

#include <gtest/gtest.h>

namespace hsis::crypto {
namespace {

TEST(PrimeTest, SmallPrimesRecognized) {
  Rng rng(1);
  for (uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 97u, 101u, 65537u}) {
    EXPECT_TRUE(IsProbablePrime(U256(p), 20, rng)) << p;
  }
}

TEST(PrimeTest, SmallCompositesRejected) {
  Rng rng(2);
  for (uint64_t c : {0u, 1u, 4u, 6u, 9u, 15u, 91u, 100u, 65535u, 1000001u}) {
    EXPECT_FALSE(IsProbablePrime(U256(c), 20, rng)) << c;
  }
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes that fool a^(n-1) == 1 tests but not Miller–Rabin.
  Rng rng(3);
  for (uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 6601u, 8911u}) {
    EXPECT_FALSE(IsProbablePrime(U256(c), 20, rng)) << c;
  }
}

TEST(PrimeTest, LargeKnownPrime) {
  Rng rng(4);
  // 2^127 - 1 is a Mersenne prime.
  U256 m127 = (U256(1) << 127) - U256(1);
  EXPECT_TRUE(IsProbablePrime(m127, 20, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(IsProbablePrime((U256(1) << 128) - U256(1), 20, rng));
}

TEST(PrimeTest, DefaultSafePrimeIsSafe) {
  Rng rng(5);
  const U256& p = DefaultSafePrime();
  const U256& q = DefaultSubgroupOrder();
  EXPECT_EQ(p, q + q + U256(1));
  EXPECT_TRUE(IsProbablePrime(p, 20, rng));
  EXPECT_TRUE(IsProbablePrime(q, 20, rng));
  EXPECT_EQ(p.BitLength(), 256u);
}

TEST(PrimeTest, SmallSafePrimeIsSafe) {
  Rng rng(6);
  const U256& p = SmallSafePrime();
  U256 q = (p - U256(1)) >> 1;
  EXPECT_TRUE(IsProbablePrime(p, 20, rng));
  EXPECT_TRUE(IsProbablePrime(q, 20, rng));
}

TEST(PrimeTest, GeneratePrimeHasRequestedBits) {
  Rng rng(7);
  for (size_t bits : {16u, 32u, 64u, 128u}) {
    Result<U256> p = GeneratePrime(bits, 20, rng);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(*p, 20, rng));
  }
}

TEST(PrimeTest, GeneratePrimeRejectsBadSizes) {
  Rng rng(8);
  EXPECT_FALSE(GeneratePrime(4, 10, rng).ok());
  EXPECT_FALSE(GeneratePrime(300, 10, rng).ok());
}

TEST(PrimeTest, GenerateSafePrimeSmall) {
  Rng rng(9);
  Result<U256> p = GenerateSafePrime(32, 20, rng);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->BitLength(), 32u);
  U256 q = (*p - U256(1)) >> 1;
  EXPECT_TRUE(IsProbablePrime(*p, 20, rng));
  EXPECT_TRUE(IsProbablePrime(q, 20, rng));
}

}  // namespace
}  // namespace hsis::crypto

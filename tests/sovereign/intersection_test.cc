#include "sovereign/intersection_protocol.h"

#include <gtest/gtest.h>

#include "sovereign/multiparty.h"

namespace hsis::sovereign {
namespace {

crypto::MultisetHashFamily MuFamily() {
  Result<crypto::MultisetHashFamily> f =
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup());
  EXPECT_TRUE(f.ok());
  return *f;
}

const crypto::PrimeGroup& Group() {
  return crypto::PrimeGroup::SmallTestGroup();
}

TEST(IntersectionProtocolTest, PaperSection1Example) {
  // V_R = {b, u, v, y}, V_S = {a, u, v, x}; result {u, v}, nothing more.
  Rng rng(1);
  Dataset vr = Dataset::FromStrings({"b", "u", "v", "y"});
  Dataset vs = Dataset::FromStrings({"a", "u", "v", "x"});
  auto outcomes = RunTwoPartyIntersection(vr, vs, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  Dataset expected = Dataset::FromStrings({"u", "v"});
  EXPECT_EQ(outcomes->first.intersection, expected);
  EXPECT_EQ(outcomes->second.intersection, expected);
  EXPECT_EQ(outcomes->first.intersection_size, 2u);
  EXPECT_EQ(outcomes->second.intersection_size, 2u);
}

TEST(IntersectionProtocolTest, MatchesGroundTruthOnRandomSets) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::string> universe;
    for (int i = 0; i < 60; ++i) universe.push_back("cust" + std::to_string(i));
    std::vector<std::string> a, b;
    for (const std::string& u : universe) {
      if (rng.Bernoulli(0.5)) a.push_back(u);
      if (rng.Bernoulli(0.5)) b.push_back(u);
    }
    Dataset da = Dataset::FromStrings(a);
    Dataset db = Dataset::FromStrings(b);
    auto outcomes = RunTwoPartyIntersection(da, db, Group(), MuFamily(), rng);
    ASSERT_TRUE(outcomes.ok());
    EXPECT_EQ(outcomes->first.intersection, da.Intersect(db)) << trial;
    EXPECT_EQ(outcomes->second.intersection, db.Intersect(da)) << trial;
  }
}

TEST(IntersectionProtocolTest, DisjointAndIdenticalSets) {
  Rng rng(3);
  Dataset a = Dataset::FromStrings({"p", "q"});
  Dataset b = Dataset::FromStrings({"r", "s"});
  auto disjoint = RunTwoPartyIntersection(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_TRUE(disjoint->first.intersection.empty());

  auto identical = RunTwoPartyIntersection(a, a, Group(), MuFamily(), rng);
  ASSERT_TRUE(identical.ok());
  EXPECT_EQ(identical->first.intersection, a);
}

TEST(IntersectionProtocolTest, EmptyInputs) {
  Rng rng(4);
  Dataset empty;
  Dataset b = Dataset::FromStrings({"x"});
  auto outcomes = RunTwoPartyIntersection(empty, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_TRUE(outcomes->first.intersection.empty());
  EXPECT_TRUE(outcomes->second.intersection.empty());
}

TEST(IntersectionProtocolTest, MultisetMultiplicity) {
  Rng rng(5);
  Dataset a = Dataset::FromStrings({"x", "x", "x", "y"});
  Dataset b = Dataset::FromStrings({"x", "x", "z"});
  auto outcomes = RunTwoPartyIntersection(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->first.intersection, Dataset::FromStrings({"x", "x"}));
  EXPECT_EQ(outcomes->second.intersection, Dataset::FromStrings({"x", "x"}));
}

TEST(IntersectionProtocolTest, SizeOnlyModeHidesMembers) {
  Rng rng(6);
  Dataset a = Dataset::FromStrings({"b", "u", "v", "y"});
  Dataset b = Dataset::FromStrings({"a", "u", "v", "x"});
  IntersectionOptions options;
  options.size_only = true;
  auto outcomes =
      RunTwoPartyIntersection(a, b, Group(), MuFamily(), rng, options);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->first.intersection_size, 2u);
  EXPECT_EQ(outcomes->second.intersection_size, 2u);
  EXPECT_TRUE(outcomes->first.intersection.empty());
  EXPECT_TRUE(outcomes->second.intersection.empty());
}

TEST(IntersectionProtocolTest, CommitmentsMatchReportedData) {
  Rng rng(7);
  Dataset a = Dataset::FromStrings({"p", "q"});
  Dataset b = Dataset::FromStrings({"q", "r"});
  crypto::MultisetHashFamily family = MuFamily();
  auto outcomes = RunTwoPartyIntersection(a, b, Group(), family, rng);
  ASSERT_TRUE(outcomes.ok());

  // A's own commitment equals the multiset hash of its reported data.
  auto expected_a = family.NewHash();
  for (const Tuple& t : a.tuples()) expected_a->Add(t.value);
  auto got = family.Deserialize(outcomes->first.own_commitment);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(expected_a->Equivalent(**got));

  // Cross: A's peer commitment is B's own commitment.
  EXPECT_EQ(outcomes->first.peer_commitment, outcomes->second.own_commitment);
  EXPECT_EQ(outcomes->second.peer_commitment, outcomes->first.own_commitment);
}

TEST(IntersectionProtocolTest, MaliciousInsertionProbesPeer) {
  // The Section 1 attack this paper is about: R adds "x" to learn
  // whether S has it. The protocol computes the altered intersection —
  // exactly why the auditing device is needed.
  Rng rng(8);
  Dataset honest_r = Dataset::FromStrings({"b", "u", "v", "y"});
  Dataset cheating_r = honest_r;
  cheating_r.Add(Tuple::FromString("x"));  // fabricated probe
  Dataset s = Dataset::FromStrings({"a", "u", "v", "x"});

  auto outcomes =
      RunTwoPartyIntersection(cheating_r, s, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  // R now learns S has "x" — more than the honest result {u, v}.
  EXPECT_TRUE(outcomes->first.intersection.Contains(Tuple::FromString("x")));
  EXPECT_EQ(outcomes->first.intersection_size, 3u);
}

TEST(IntersectionProtocolTest, ReportsWireBytes) {
  Rng rng(9);
  Dataset a = Dataset::FromStrings({"1", "2", "3"});
  Dataset b = Dataset::FromStrings({"2", "3", "4"});
  auto outcomes = RunTwoPartyIntersection(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_GT(outcomes->first.bytes_sent, 0u);
  EXPECT_GT(outcomes->second.bytes_sent, 0u);
}

TEST(IntersectionProtocolTest, WorksOnProductionGroup) {
  Rng rng(10);
  Dataset a = Dataset::FromStrings({"alice", "bob", "carol"});
  Dataset b = Dataset::FromStrings({"bob", "dave"});
  Result<crypto::MultisetHashFamily> family =
      crypto::MultisetHashFamily::Create(crypto::MultisetHashScheme::kMu);
  ASSERT_TRUE(family.ok());
  auto outcomes = RunTwoPartyIntersection(a, b, crypto::PrimeGroup::Default(),
                                          *family, rng);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->first.intersection, Dataset::FromStrings({"bob"}));
}

TEST(MultiPartyTest, ThreePartyIntersection) {
  Rng rng(11);
  std::vector<Dataset> reported = {
      Dataset::FromStrings({"a", "b", "c", "d"}),
      Dataset::FromStrings({"b", "c", "d", "e"}),
      Dataset::FromStrings({"c", "d", "e", "f"}),
  };
  auto outcomes = RunMultiPartyIntersection(reported, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 3u);
  Dataset expected = Dataset::FromStrings({"c", "d"});
  for (const MultiPartyOutcome& o : *outcomes) {
    EXPECT_EQ(o.intersection, expected);
    EXPECT_FALSE(o.own_commitment.empty());
  }
}

TEST(MultiPartyTest, FivePartiesMatchGroundTruth) {
  Rng rng(12);
  std::vector<Dataset> reported;
  for (int p = 0; p < 5; ++p) {
    std::vector<std::string> vals;
    for (int i = 0; i < 40; ++i) {
      if (rng.Bernoulli(0.6)) vals.push_back("item" + std::to_string(i));
    }
    reported.push_back(Dataset::FromStrings(vals));
  }
  auto outcomes = RunMultiPartyIntersection(reported, Group(), MuFamily(), rng);
  ASSERT_TRUE(outcomes.ok());
  Dataset truth = reported[0];
  for (int p = 1; p < 5; ++p) truth = truth.Intersect(reported[static_cast<size_t>(p)]);
  for (const MultiPartyOutcome& o : *outcomes) {
    EXPECT_EQ(o.intersection, truth);
  }
}

TEST(MultiPartyTest, RequiresTwoPlus) {
  Rng rng(13);
  std::vector<Dataset> one = {Dataset::FromStrings({"x"})};
  EXPECT_FALSE(RunMultiPartyIntersection(one, Group(), MuFamily(), rng).ok());
}

}  // namespace
}  // namespace hsis::sovereign

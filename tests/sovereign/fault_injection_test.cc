// Robustness of the intersection protocol against a deviating peer.
//
// Structural deviations (dropped pairs, malformed frames, wrong message
// types) are detected as ProtocolViolation. A *covert* deviation —
// swapping double-encryptions within well-formed pairs — is not
// detectable inside the protocol: that is precisely the semi-honest
// boundary the paper draws, and why integrity of the *inputs* is
// enforced by the auditing device rather than by the protocol itself.

#include <gtest/gtest.h>

#include "sovereign/intersection_protocol.h"

namespace hsis::sovereign {
namespace {

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

const crypto::PrimeGroup& Group() {
  return crypto::PrimeGroup::SmallTestGroup();
}

Dataset SetA() { return Dataset::FromStrings({"a", "b", "c", "d"}); }
Dataset SetB() { return Dataset::FromStrings({"c", "d", "e", "f"}); }

TEST(FaultInjectionTest, CleanRunStillWorks) {
  Rng rng(1);
  IntersectionOptions options;  // no faults
  auto outcomes =
      RunTwoPartyIntersection(SetA(), SetB(), Group(), MuFamily(), rng, options);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->first.intersection, Dataset::FromStrings({"c", "d"}));
}

TEST(FaultInjectionTest, OmittedPairDetected) {
  Rng rng(2);
  IntersectionOptions options;
  options.fault_injection.omit_one_reply_pair = true;
  auto outcomes =
      RunTwoPartyIntersection(SetA(), SetB(), Group(), MuFamily(), rng, options);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.status().code(), StatusCode::kProtocolViolation);
}

TEST(FaultInjectionTest, CorruptCountDetected) {
  Rng rng(3);
  IntersectionOptions options;
  options.fault_injection.corrupt_reply_count = true;
  auto outcomes =
      RunTwoPartyIntersection(SetA(), SetB(), Group(), MuFamily(), rng, options);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.status().code(), StatusCode::kProtocolViolation);
}

TEST(FaultInjectionTest, WrongMessageTypeDetected) {
  Rng rng(4);
  IntersectionOptions options;
  options.fault_injection.wrong_message_type = true;
  auto outcomes =
      RunTwoPartyIntersection(SetA(), SetB(), Group(), MuFamily(), rng, options);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.status().code(), StatusCode::kProtocolViolation);
}

TEST(FaultInjectionTest, CovertSwapIsTheSemiHonestBoundary) {
  // Swapping the double-encryptions inside well-formed pairs completes
  // the protocol but can change party A's result — undetectable at the
  // protocol layer. This is the deviation class (like input alteration)
  // that cryptographic protocol checks cannot catch; the paper's whole
  // mechanism exists because of it.
  Rng rng(5);
  IntersectionOptions options;
  options.fault_injection.swap_reply_pairs = true;
  auto outcomes =
      RunTwoPartyIntersection(SetA(), SetB(), Group(), MuFamily(), rng, options);
  ASSERT_TRUE(outcomes.ok()) << "covert deviation must not be detectable";
  // Party B (the deviator) still computes the honest result for itself.
  EXPECT_EQ(outcomes->second.intersection, Dataset::FromStrings({"c", "d"}));
  // Party A's view may be corrupted; what matters for the test is that
  // the protocol had no way to flag it.
}

}  // namespace
}  // namespace hsis::sovereign

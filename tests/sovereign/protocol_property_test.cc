// Property-style tests of the intersection protocol: randomized
// workloads, binary tuple values, parameterized group choice, and
// invariants that must hold on every run.

#include <gtest/gtest.h>

#include "sovereign/intersection_protocol.h"

namespace hsis::sovereign {
namespace {

struct GroupCase {
  const char* name;
  const crypto::PrimeGroup* group;
};

class ProtocolPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const crypto::PrimeGroup& Group() const {
    return GetParam() == 0 ? crypto::PrimeGroup::SmallTestGroup()
                           : crypto::PrimeGroup::Default();
  }
  crypto::MultisetHashFamily Family() const {
    return std::move(crypto::MultisetHashFamily::CreateMu(Group()).value());
  }
};

TEST_P(ProtocolPropertyTest, RandomMultisetsMatchGroundTruth) {
  Rng rng(101 + static_cast<uint64_t>(GetParam()));
  const int trials = GetParam() == 0 ? 6 : 2;  // production group is slower
  for (int trial = 0; trial < trials; ++trial) {
    // Multisets over a small domain, so duplicates are frequent.
    auto random_multiset = [&](size_t max_size) {
      std::vector<Tuple> tuples;
      size_t n = rng.UniformUint64(max_size + 1);
      for (size_t i = 0; i < n; ++i) {
        tuples.push_back(
            Tuple::FromString("v" + std::to_string(rng.UniformUint64(12))));
      }
      return Dataset(std::move(tuples));
    };
    Dataset a = random_multiset(24);
    Dataset b = random_multiset(24);
    auto outcomes =
        RunTwoPartyIntersection(a, b, Group(), Family(), rng);
    ASSERT_TRUE(outcomes.ok()) << trial;
    EXPECT_EQ(outcomes->first.intersection, a.Intersect(b)) << trial;
    EXPECT_EQ(outcomes->second.intersection, b.Intersect(a)) << trial;
    // Symmetry of the size and of commitments' cross-consistency.
    EXPECT_EQ(outcomes->first.intersection_size,
              outcomes->second.intersection_size);
    EXPECT_EQ(outcomes->first.peer_commitment,
              outcomes->second.own_commitment);
  }
}

TEST_P(ProtocolPropertyTest, BinaryTupleValues) {
  // Tuples are opaque bytes: embedded NULs, high bytes, length 0..64.
  Rng rng(202);
  std::vector<Tuple> shared, a_only, b_only;
  for (int i = 0; i < 8; ++i) {
    shared.push_back(Tuple(rng.RandomBytes(rng.UniformUint64(65))));
    a_only.push_back(Tuple(rng.RandomBytes(1 + rng.UniformUint64(64))));
    b_only.push_back(Tuple(rng.RandomBytes(1 + rng.UniformUint64(64))));
  }
  std::vector<Tuple> a_tuples = shared, b_tuples = shared;
  a_tuples.insert(a_tuples.end(), a_only.begin(), a_only.end());
  b_tuples.insert(b_tuples.end(), b_only.begin(), b_only.end());
  Dataset a(a_tuples), b(b_tuples);

  auto outcomes = RunTwoPartyIntersection(a, b, Group(), Family(), rng);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes->first.intersection, a.Intersect(b));
}

TEST_P(ProtocolPropertyTest, SizeOnlyAgreesWithFullMode) {
  Rng rng(303);
  Dataset a = Dataset::FromStrings({"p", "q", "r", "s", "q"});
  Dataset b = Dataset::FromStrings({"q", "q", "s", "t"});
  auto full = RunTwoPartyIntersection(a, b, Group(), Family(), rng);
  IntersectionOptions size_only;
  size_only.size_only = true;
  auto sized = RunTwoPartyIntersection(a, b, Group(), Family(), rng, size_only);
  ASSERT_TRUE(full.ok() && sized.ok());
  EXPECT_EQ(full->first.intersection_size, sized->first.intersection_size);
  EXPECT_EQ(sized->first.intersection_size, 3u);  // {q, q, s}
}

TEST_P(ProtocolPropertyTest, IntersectionIsSubsetOfBothInputs) {
  Rng rng(404);
  Dataset a = Dataset::FromStrings({"1", "2", "3", "3"});
  Dataset b = Dataset::FromStrings({"3", "3", "3", "4"});
  auto outcomes = RunTwoPartyIntersection(a, b, Group(), Family(), rng);
  ASSERT_TRUE(outcomes.ok());
  for (const Tuple& t : outcomes->first.intersection.tuples()) {
    EXPECT_LE(outcomes->first.intersection.Count(t), a.Count(t));
    EXPECT_LE(outcomes->first.intersection.Count(t), b.Count(t));
  }
  EXPECT_EQ(outcomes->first.intersection.Count(Tuple::FromString("3")), 2u);
}

INSTANTIATE_TEST_SUITE_P(Groups, ProtocolPropertyTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("TestGroup64")
                                                  : std::string("Prod256");
                         });

}  // namespace
}  // namespace hsis::sovereign

#include "sovereign/channel.h"

#include <gtest/gtest.h>

namespace hsis::sovereign {
namespace {

std::pair<ChannelEndpoint, ChannelEndpoint> MakePair(uint64_t seed = 1) {
  Rng rng(seed);
  Result<std::pair<ChannelEndpoint, ChannelEndpoint>> pair =
      SecureChannel::CreatePair(Bytes(32, 0x33), rng);
  EXPECT_TRUE(pair.ok());
  return std::move(*pair);
}

TEST(SecureChannelTest, SendReceiveBothDirections) {
  auto [a, b] = MakePair();
  ASSERT_TRUE(a.Send(ToBytes("from a")).ok());
  ASSERT_TRUE(b.Send(ToBytes("from b")).ok());

  Result<Bytes> at_b = b.Receive();
  ASSERT_TRUE(at_b.ok());
  EXPECT_EQ(BytesToString(*at_b), "from a");

  Result<Bytes> at_a = a.Receive();
  ASSERT_TRUE(at_a.ok());
  EXPECT_EQ(BytesToString(*at_a), "from b");
}

TEST(SecureChannelTest, PreservesMessageOrder) {
  auto [a, b] = MakePair();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.Send(ToBytes("msg" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 10; ++i) {
    Result<Bytes> m = b.Receive();
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(BytesToString(*m), "msg" + std::to_string(i));
  }
}

TEST(SecureChannelTest, ReceiveOnEmptyFails) {
  auto [a, b] = MakePair();
  EXPECT_EQ(b.Receive().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(b.HasPending());
  ASSERT_TRUE(a.Send(ToBytes("x")).ok());
  EXPECT_TRUE(b.HasPending());
}

TEST(SecureChannelTest, DetectsTamper) {
  auto [a, b] = MakePair();
  ASSERT_TRUE(a.Send(ToBytes("sensitive")).ok());
  b.CorruptNextInboundForTest();
  Result<Bytes> m = b.Receive();
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kIntegrityViolation);
}

TEST(SecureChannelTest, MessagesAreEncryptedOnWire) {
  Rng rng(7);
  Result<std::pair<ChannelEndpoint, ChannelEndpoint>> pair =
      SecureChannel::CreatePair(Bytes(32, 0x44), rng);
  ASSERT_TRUE(pair.ok());
  size_t before = pair->first.bytes_sent();
  ASSERT_TRUE(pair->first.Send(ToBytes("plaintext-marker")).ok());
  EXPECT_GT(pair->first.bytes_sent(), before);
  // Wire cost = nonce + ciphertext + tag > plaintext size.
  EXPECT_GE(pair->first.bytes_sent() - before,
            std::string("plaintext-marker").size() + 44);
}

TEST(SecureChannelTest, RequiresValidKey) {
  Rng rng(9);
  EXPECT_FALSE(SecureChannel::CreatePair(Bytes(16, 0x01), rng).ok());
}

TEST(SecureChannelTest, EmptyMessageSupported) {
  auto [a, b] = MakePair();
  ASSERT_TRUE(a.Send(Bytes{}).ok());
  Result<Bytes> m = b.Receive();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->empty());
}

}  // namespace
}  // namespace hsis::sovereign

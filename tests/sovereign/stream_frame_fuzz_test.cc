// Fuzz suite for the chunk-framed element-stream codec
// (sovereign/stream_frame.h), in the style of the shard-merge fuzz
// tests: pristine streams round-trip exactly; every structural mutation
// — truncated frames, reordered or duplicated chunks, wrong kinds,
// patched count fields, mutated totals, trailing garbage — either fails
// with a typed ProtocolViolation or leaves the element list identical
// to the pristine stream. The reader never crashes and never yields a
// wrong-length list. Payload bit flips are opaque to the codec (32-byte
// elements carry no structure), so tamper there is exercised end to end
// through the AEAD channel, which must reject with IntegrityViolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sovereign/channel.h"
#include "sovereign/stream_frame.h"

namespace hsis::sovereign {
namespace {

std::vector<U256> MakeElements(size_t n, uint64_t salt) {
  std::vector<U256> elements;
  elements.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    elements.push_back(U256(salt, i, i * i, 7));
  }
  return elements;
}

/// Serializes `elements` as a pristine stream of `chunk`-sized frames.
std::vector<Bytes> BuildFrames(uint8_t kind, const std::vector<U256>& elements,
                               size_t chunk) {
  std::vector<Bytes> frames;
  const size_t n = elements.size();
  std::vector<U256> first(
      elements.begin(),
      elements.begin() + static_cast<ptrdiff_t>(std::min(chunk, n)));
  frames.push_back(SerializeFirstFrame(kind, static_cast<uint32_t>(n), first));
  for (size_t begin = chunk, index = 1; begin < n; begin += chunk, ++index) {
    const size_t end = std::min(begin + chunk, n);
    frames.push_back(SerializeContinuationFrame(
        kind, static_cast<uint32_t>(index),
        std::vector<U256>(elements.begin() + static_cast<ptrdiff_t>(begin),
                          elements.begin() + static_cast<ptrdiff_t>(end))));
  }
  return frames;
}

/// Feeds `frames` into a fresh reader. Returns the first error, or OK —
/// in which case `*out` holds the accumulated elements and `*complete`
/// whether the declared total was reached.
Status Replay(uint8_t kind, const std::vector<Bytes>& frames,
              std::vector<U256>* out, bool* complete) {
  ElementStreamReader reader(kind);
  for (const Bytes& frame : frames) {
    Status s = reader.Consume(frame);
    if (!s.ok()) return s;
  }
  *complete = reader.complete();
  *out = reader.TakeElements();
  return Status::OK();
}

TEST(StreamFrameFuzzTest, PristineStreamsRoundTrip) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{41}}) {
    for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, size_t{40},
                         size_t{41}, size_t{42}}) {
      const std::vector<U256> elements = MakeElements(n, 0xabc);
      const std::vector<Bytes> frames =
          BuildFrames(kMsgEncryptedSet, elements, chunk);
      std::vector<U256> got;
      bool complete = false;
      Status s = Replay(kMsgEncryptedSet, frames, &got, &complete);
      ASSERT_TRUE(s.ok()) << "n=" << n << " chunk=" << chunk << ": "
                          << s.message();
      EXPECT_TRUE(complete) << "n=" << n << " chunk=" << chunk;
      EXPECT_EQ(got, elements) << "n=" << n << " chunk=" << chunk;
      // A single-chunk stream is exactly the legacy whole-set message.
      if (chunk >= n) {
        EXPECT_EQ(frames.size(), 1u);
      }
    }
  }
}

TEST(StreamFrameFuzzTest, TruncatedFramesRejectedOrIncomplete) {
  const std::vector<U256> elements = MakeElements(17, 1);
  for (size_t chunk : {size_t{1}, size_t{5}, size_t{17}}) {
    std::vector<Bytes> frames = BuildFrames(kMsgEncryptedSet, elements, chunk);
    // Truncate the last frame at every interesting cut.
    for (size_t cut : {size_t{0}, size_t{1}, size_t{4}, size_t{9},
                       size_t{31}, size_t{33}}) {
      if (cut >= frames.back().size()) continue;
      std::vector<Bytes> mutated = frames;
      mutated.back().resize(cut);
      std::vector<U256> got;
      bool complete = false;
      Status s = Replay(kMsgEncryptedSet, mutated, &got, &complete);
      if (s.ok()) {
        // A clean cut can only look like a shorter (incomplete) stream —
        // never a complete stream with wrong elements.
        EXPECT_FALSE(complete) << "chunk=" << chunk << " cut=" << cut;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
      }
    }
    // Dropping the final frame entirely: incomplete, not wrong.
    std::vector<Bytes> dropped(frames.begin(), frames.end() - 1);
    std::vector<U256> got;
    bool complete = false;
    Status s = Replay(kMsgEncryptedSet, dropped, &got, &complete);
    if (s.ok()) {
      EXPECT_FALSE(complete && got != elements);
    }
  }
}

TEST(StreamFrameFuzzTest, ReorderedAndDuplicatedChunksRejected) {
  const std::vector<U256> elements = MakeElements(20, 2);
  std::vector<Bytes> frames = BuildFrames(kMsgEncryptedSet, elements, 4);
  ASSERT_EQ(frames.size(), 5u);

  std::vector<U256> got;
  bool complete = false;

  // Swap two continuation frames.
  std::vector<Bytes> swapped = frames;
  std::swap(swapped[2], swapped[3]);
  Status s = Replay(kMsgEncryptedSet, swapped, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);

  // Duplicate a continuation frame.
  std::vector<Bytes> duplicated = frames;
  duplicated.insert(duplicated.begin() + 2, frames[1]);
  s = Replay(kMsgEncryptedSet, duplicated, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);

  // Continuation before the opening frame.
  std::vector<Bytes> headless(frames.begin() + 1, frames.end());
  s = Replay(kMsgEncryptedSet, headless, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);

  // A frame after the stream completed.
  std::vector<Bytes> overrun = frames;
  overrun.push_back(frames.back());
  s = Replay(kMsgEncryptedSet, overrun, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
}

TEST(StreamFrameFuzzTest, WrongKindsRejected) {
  const std::vector<U256> elements = MakeElements(9, 3);
  std::vector<U256> got;
  bool complete = false;

  // Opening frame of the wrong kind.
  std::vector<Bytes> frames =
      BuildFrames(kMsgDoubleEncryptedSet, elements, 4);
  Status s = Replay(kMsgEncryptedSet, frames, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);

  // Continuation frame whose embedded kind disagrees with the stream.
  frames = BuildFrames(kMsgEncryptedSet, elements, 4);
  Bytes rogue = SerializeContinuationFrame(kMsgDoubleEncryptedPairs, 1,
                                           MakeElements(4, 4));
  frames[1] = rogue;
  s = Replay(kMsgEncryptedSet, frames, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
}

TEST(StreamFrameFuzzTest, CorruptHeaderFieldsRejected) {
  const std::vector<U256> elements = MakeElements(12, 5);
  const std::vector<Bytes> frames =
      BuildFrames(kMsgEncryptedSet, elements, 5);
  ASSERT_EQ(frames.size(), 3u);
  std::vector<U256> got;
  bool complete = false;

  // Patch the continuation count field (bytes 6..9) to every nearby
  // wrong value: count/length disagreement or total overflow.
  for (uint32_t wrong : {0u, 1u, 4u, 6u, 200u}) {
    std::vector<Bytes> mutated = frames;
    Bytes& frame = mutated[1];
    frame[6] = static_cast<uint8_t>(wrong >> 24);
    frame[7] = static_cast<uint8_t>(wrong >> 16);
    frame[8] = static_cast<uint8_t>(wrong >> 8);
    frame[9] = static_cast<uint8_t>(wrong);
    Status s = Replay(kMsgEncryptedSet, mutated, &got, &complete);
    ASSERT_FALSE(s.ok()) << "count=" << wrong;
    EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
  }

  // Mutate the declared total in the opening frame.
  for (uint32_t wrong : {0u, 3u, 11u, 13u, 1000u}) {
    std::vector<Bytes> mutated = frames;
    Bytes& frame = mutated[0];
    frame[1] = static_cast<uint8_t>(wrong >> 24);
    frame[2] = static_cast<uint8_t>(wrong >> 16);
    frame[3] = static_cast<uint8_t>(wrong >> 8);
    frame[4] = static_cast<uint8_t>(wrong);
    Status s = Replay(kMsgEncryptedSet, mutated, &got, &complete);
    if (s.ok()) {
      // Only a *larger* total can survive parsing — and then the stream
      // can never be complete, so the caller still detects truncation.
      EXPECT_GT(wrong, elements.size());
      EXPECT_FALSE(complete);
    } else {
      EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
    }
  }

  // Trailing garbage after the payload.
  std::vector<Bytes> garbage = frames;
  AppendUint32BE(garbage[0], 0xdeadbeef);
  Status s = Replay(kMsgEncryptedSet, garbage, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);

  // Empty continuation frame.
  std::vector<Bytes> empty_chunk = frames;
  empty_chunk[1] = SerializeContinuationFrame(kMsgEncryptedSet, 1, {});
  s = Replay(kMsgEncryptedSet, empty_chunk, &got, &complete);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
}

TEST(StreamFrameFuzzTest, RandomizedStructuralMutations) {
  // Random single-byte mutations anywhere in the stream: the reader
  // either fails typed, or — when the mutation lands in opaque payload
  // bytes — still yields a list of exactly the declared length. It
  // never crashes and never over- or under-delivers silently.
  Rng rng(77);
  const std::vector<U256> elements = MakeElements(23, 6);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t chunk = 1 + rng.UniformUint64(25);
    std::vector<Bytes> frames =
        BuildFrames(kMsgEncryptedSet, elements, chunk);
    const size_t victim = rng.UniformUint64(frames.size());
    Bytes& frame = frames[victim];
    const size_t offset = rng.UniformUint64(frame.size());
    frame[offset] ^= static_cast<uint8_t>(1 + rng.UniformUint64(255));

    std::vector<U256> got;
    bool complete = false;
    Status s = Replay(kMsgEncryptedSet, frames, &got, &complete);
    if (s.ok() && complete) {
      EXPECT_EQ(got.size(), elements.size()) << "trial " << trial;
    } else if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kProtocolViolation) << "trial " << trial;
    }
  }
}

TEST(StreamFrameFuzzTest, ReaderIsPoisonedAfterFailure) {
  const std::vector<U256> elements = MakeElements(8, 7);
  std::vector<Bytes> frames = BuildFrames(kMsgEncryptedSet, elements, 3);
  ElementStreamReader reader(kMsgEncryptedSet);
  ASSERT_TRUE(reader.Consume(frames[0]).ok());
  ASSERT_FALSE(reader.Consume(frames[2]).ok());  // out of order
  // Even the correct next frame is now rejected: no resynchronization.
  Status s = reader.Consume(frames[1]);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kProtocolViolation);
}

TEST(StreamFrameFuzzTest, PayloadBitFlipsCaughtByChannelAead) {
  // The layer split: payload tamper is invisible to the codec but must
  // never reach it — the AEAD channel rejects the sealed frame first.
  Rng rng(78);
  auto pair = SecureChannel::CreatePair(rng.RandomBytes(32), rng);
  ASSERT_TRUE(pair.ok());
  ChannelEndpoint sender = std::move(pair->first);
  ChannelEndpoint receiver = std::move(pair->second);
  const std::vector<U256> elements = MakeElements(10, 8);
  for (const Bytes& frame : BuildFrames(kMsgEncryptedSet, elements, 4)) {
    ASSERT_TRUE(sender.Send(frame).ok());
  }
  receiver.CorruptNextInboundForTest();
  Result<Bytes> tampered = receiver.Receive();
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kIntegrityViolation);
}

}  // namespace
}  // namespace hsis::sovereign

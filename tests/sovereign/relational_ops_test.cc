#include "sovereign/relational_ops.h"

#include <gtest/gtest.h>

namespace hsis::sovereign {
namespace {

crypto::MultisetHashFamily MuFamily() {
  Result<crypto::MultisetHashFamily> f =
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup());
  EXPECT_TRUE(f.ok());
  return *f;
}

const crypto::PrimeGroup& Group() {
  return crypto::PrimeGroup::SmallTestGroup();
}

TEST(SovereignJoinTest, JoinsOnCommonKeys) {
  Rng rng(1);
  Relation a = {{"alice", "gold"}, {"bob", "silver"}, {"carol", "bronze"}};
  Relation b = {{"bob", "premium"}, {"carol", "basic"}, {"dave", "basic"}};
  Result<std::vector<JoinedRow>> rows =
      RunSovereignJoin(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (JoinedRow{"bob", "silver", "premium"}));
  EXPECT_EQ((*rows)[1], (JoinedRow{"carol", "bronze", "basic"}));
}

TEST(SovereignJoinTest, EmptyJoin) {
  Rng rng(2);
  Relation a = {{"x", "1"}};
  Relation b = {{"y", "2"}};
  Result<std::vector<JoinedRow>> rows =
      RunSovereignJoin(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(SovereignJoinTest, RejectsDuplicateKeys) {
  Rng rng(3);
  Relation a = {{"k", "1"}, {"k", "2"}};
  Relation b = {{"k", "3"}};
  EXPECT_FALSE(RunSovereignJoin(a, b, Group(), MuFamily(), rng).ok());
}

TEST(SovereignDifferenceTest, ComputesAMinusB) {
  Rng rng(4);
  Dataset a = Dataset::FromStrings({"p", "q", "r"});
  Dataset b = Dataset::FromStrings({"q", "s"});
  Result<Dataset> diff =
      RunSovereignDifference(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, Dataset::FromStrings({"p", "r"}));
}

TEST(SovereignDifferenceTest, DisjointReturnsAll) {
  Rng rng(5);
  Dataset a = Dataset::FromStrings({"p"});
  Dataset b = Dataset::FromStrings({"q"});
  Result<Dataset> diff =
      RunSovereignDifference(a, b, Group(), MuFamily(), rng);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, a);
}

}  // namespace
}  // namespace hsis::sovereign

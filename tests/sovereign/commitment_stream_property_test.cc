// Property suite for the incrementality the streamed pipeline's
// commitments lean on: feeding a dataset chunk-by-chunk into a multiset
// hash — either sequentially into one accumulator, or into per-chunk
// accumulators folded with Union — serializes to exactly the bytes of
// the whole-set hash, for every scheme, over randomized datasets with
// duplicates, empty chunks, and degenerate sizes. This is the property
// that lets RunTwoPartyIntersectionStreamed commit chunk by chunk while
// staying bit-identical to the legacy whole-set commitment.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/multiset_hash.h"
#include "sovereign/dataset.h"

namespace hsis::sovereign {
namespace {

using crypto::MultisetHashFamily;
using crypto::MultisetHashScheme;

std::vector<MultisetHashFamily> AllFamilies() {
  std::vector<MultisetHashFamily> families;
  families.push_back(std::move(
      MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value()));
  families.push_back(
      std::move(MultisetHashFamily::Create(MultisetHashScheme::kVAdd).value()));
  families.push_back(std::move(
      MultisetHashFamily::Create(MultisetHashScheme::kXor, ToBytes("key-x"))
          .value()));
  families.push_back(std::move(
      MultisetHashFamily::Create(MultisetHashScheme::kAdd, ToBytes("key-a"))
          .value()));
  return families;
}

/// A randomized dataset: values drawn from a small pool so duplicates
/// are common. Trial 0 is forced empty and trial 1 a single tuple.
Dataset RandomDataset(Rng& rng, int trial) {
  if (trial == 0) return Dataset();
  size_t n = trial == 1 ? 1 : rng.UniformUint64(51);
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back("v" + std::to_string(rng.UniformUint64(20)));
  }
  return Dataset::FromStrings(values);
}

Bytes WholeSetHash(const MultisetHashFamily& family, const Dataset& data) {
  std::unique_ptr<crypto::MultisetHash> hash = family.NewHash();
  for (const Tuple& t : data.tuples()) hash->Add(t.value);
  return hash->Serialize();
}

TEST(CommitmentStreamPropertyTest, ChunkedAddEqualsWholeSetHash) {
  Rng rng(31);
  const std::vector<MultisetHashFamily> families = AllFamilies();
  for (int trial = 0; trial < 110; ++trial) {
    Dataset data = RandomDataset(rng, trial);
    const size_t chunk = 1 + rng.UniformUint64(data.size() + 3);
    DatasetSource source(data, chunk);
    for (const MultisetHashFamily& family : families) {
      const Bytes whole = WholeSetHash(family, data);

      // Sequential: one accumulator fed chunk by chunk.
      std::unique_ptr<crypto::MultisetHash> sequential = family.NewHash();
      for (size_t c = 0; c < source.chunk_count(); ++c) {
        for (const Tuple& t : source.Chunk(c)) sequential->Add(t.value);
      }
      EXPECT_EQ(sequential->Serialize(), whole)
          << "trial " << trial << " chunk " << chunk;

      // Parallel shape: independent per-chunk accumulators, folded in
      // order with Union (+H) — the reduction a sharded committer uses.
      std::unique_ptr<crypto::MultisetHash> folded = family.NewHash();
      for (size_t c = 0; c < source.chunk_count(); ++c) {
        std::unique_ptr<crypto::MultisetHash> part = family.NewHash();
        for (const Tuple& t : source.Chunk(c)) part->Add(t.value);
        ASSERT_TRUE(folded->Union(*part).ok());
      }
      EXPECT_EQ(folded->Serialize(), whole)
          << "trial " << trial << " chunk " << chunk;
    }
  }
}

TEST(CommitmentStreamPropertyTest, EmptyChunksAreNoOps) {
  const std::vector<MultisetHashFamily> families = AllFamilies();
  Dataset data = Dataset::FromStrings({"a", "a", "b"});
  for (const MultisetHashFamily& family : families) {
    const Bytes whole = WholeSetHash(family, data);
    std::unique_ptr<crypto::MultisetHash> hash = family.NewHash();
    // Interleave Union with empty accumulators (an empty frame's
    // contribution) between real elements.
    for (const Tuple& t : data.tuples()) {
      std::unique_ptr<crypto::MultisetHash> empty = family.NewHash();
      ASSERT_TRUE(hash->Union(*empty).ok());
      hash->Add(t.value);
    }
    EXPECT_EQ(hash->Serialize(), whole);
  }
}

TEST(CommitmentStreamPropertyTest, ChunkCursorCoversEveryTupleOnce) {
  // The DatasetSource cursor itself: chunks partition the canonical
  // order — no tuple lost, duplicated, or reordered, for ragged and
  // oversized chunk sizes alike.
  Rng rng(32);
  for (int trial = 0; trial < 40; ++trial) {
    Dataset data = RandomDataset(rng, trial);
    const size_t chunk = 1 + rng.UniformUint64(data.size() + 3);
    DatasetSource source(data, chunk);
    EXPECT_EQ(source.total(), data.size());
    EXPECT_EQ(source.chunk_count(),
              (data.size() + chunk - 1) / chunk);
    std::vector<Tuple> seen;
    for (size_t c = 0; c < source.chunk_count(); ++c) {
      std::span<const Tuple> frame = source.Chunk(c);
      EXPECT_LE(frame.size(), chunk);
      if (c + 1 < source.chunk_count()) {
        EXPECT_EQ(frame.size(), chunk);
      }
      seen.insert(seen.end(), frame.begin(), frame.end());
    }
    EXPECT_EQ(seen, data.tuples()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hsis::sovereign

// Determinism suite for the parallelized n-party ring protocol:
// bit-identical intersections and commitments at threads = 1, 2, and
// hardware concurrency; a golden test freezing the pre-parallelism
// serial output (intersection members and commitment bytes); and the
// fault-injection extension — a party failing mid-round must abort
// with the same error no matter the thread count.

#include <gtest/gtest.h>

#include "sim/workload.h"
#include "sovereign/multiparty.h"

namespace hsis::sovereign {
namespace {

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

const crypto::PrimeGroup& Group() {
  return crypto::PrimeGroup::SmallTestGroup();
}

/// The supply-chain workload the golden values were recorded on:
/// 4 parties, catalog 40, p(hold) = 0.7, workload seed 42.
std::vector<Dataset> GoldenWorkload() {
  Rng rng(42);
  auto stocks = sim::MakeSupplyChainWorkload(4, 40, 0.7, rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  return reported;
}

TEST(MultiPartyParallelTest, MatchesPreParallelSerialGolden) {
  // Frozen from the serial implementation before the per-party loops
  // were threaded: every party sees the same 5-element intersection,
  // and publishes exactly these commitment bytes (protocol rng seed 7).
  const char* kCommitments[] = {
      "03000000000000001b000000000000000000000000000000000000000000000000"
      "19b897996f02c86e00000000",
      "03000000000000001c000000000000000000000000000000000000000000000000"
      "06a5524307a2b00800000000",
      "03000000000000001a000000000000000000000000000000000000000000000000"
      "66d33eba995d915a00000000",
      "030000000000000015000000000000000000000000000000000000000000000000"
      "83c515b342d8f1a000000000",
  };
  const Dataset kIntersection = Dataset::FromStrings(
      {"part-13", "part-16", "part-20", "part-5", "part-7"});

  std::vector<Dataset> reported = GoldenWorkload();
  auto family = MuFamily();
  for (int threads : {1, 2, 0}) {
    MultiPartyOptions options;
    options.threads = threads;
    Rng rng(7);
    auto outcomes =
        RunMultiPartyIntersection(reported, Group(), family, rng, options);
    ASSERT_TRUE(outcomes.ok());
    ASSERT_EQ(outcomes->size(), 4u);
    for (size_t i = 0; i < outcomes->size(); ++i) {
      EXPECT_EQ((*outcomes)[i].intersection, kIntersection)
          << "party " << i << " threads " << threads;
      EXPECT_EQ(HexEncode((*outcomes)[i].own_commitment), kCommitments[i])
          << "party " << i << " threads " << threads;
    }
  }
}

TEST(MultiPartyParallelTest, BitIdenticalAcrossThreadCounts) {
  // A bigger ring than the golden: 6 parties, catalog 80.
  Rng workload_rng(99);
  auto stocks = sim::MakeSupplyChainWorkload(6, 80, 0.8, workload_rng);
  std::vector<Dataset> reported;
  for (const auto& s : stocks) reported.push_back(Dataset::FromStrings(s));
  auto family = MuFamily();

  MultiPartyOptions options;
  options.threads = 1;
  Rng serial_rng(31);
  auto serial =
      RunMultiPartyIntersection(reported, Group(), family, serial_rng, options);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 0}) {
    options.threads = threads;
    Rng rng(31);
    auto parallel =
        RunMultiPartyIntersection(reported, Group(), family, rng, options);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i].intersection, (*parallel)[i].intersection) << i;
      EXPECT_EQ((*serial)[i].own_commitment, (*parallel)[i].own_commitment)
          << i;
    }
  }
}

TEST(MultiPartyParallelTest, PartyFailingMidRoundAbortsDeterministically) {
  std::vector<Dataset> reported = GoldenWorkload();
  auto family = MuFamily();

  MultiPartyOptions options;
  options.fault_injection.party_fails_mid_round = 2;
  options.threads = 1;
  Rng serial_rng(7);
  auto serial =
      RunMultiPartyIntersection(reported, Group(), family, serial_rng, options);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status().code(), StatusCode::kProtocolViolation);

  // Under threads > 1 several owners hit the dead party concurrently;
  // the reported error must be byte-identical to the serial abort.
  for (int threads : {2, 0}) {
    options.threads = threads;
    Rng rng(7);
    auto parallel =
        RunMultiPartyIntersection(reported, Group(), family, rng, options);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().code(), serial.status().code());
    EXPECT_EQ(parallel.status().message(), serial.status().message());
  }
}

TEST(MultiPartyParallelTest, EveryFailingPartyIndexAborts) {
  std::vector<Dataset> reported = GoldenWorkload();
  auto family = MuFamily();
  for (int fail = 0; fail < 4; ++fail) {
    MultiPartyOptions options;
    options.threads = 2;
    options.fault_injection.party_fails_mid_round = fail;
    Rng rng(7);
    auto outcomes =
        RunMultiPartyIntersection(reported, Group(), family, rng, options);
    ASSERT_FALSE(outcomes.ok()) << fail;
    EXPECT_EQ(outcomes.status().code(), StatusCode::kProtocolViolation)
        << fail;
  }
}

TEST(MultiPartyParallelTest, ValidatesFaultInjectionIndex) {
  std::vector<Dataset> reported = GoldenWorkload();
  auto family = MuFamily();
  MultiPartyOptions options;
  options.fault_injection.party_fails_mid_round = 4;  // out of range
  Rng rng(7);
  EXPECT_EQ(RunMultiPartyIntersection(reported, Group(), family, rng, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.fault_injection.party_fails_mid_round = -7;
  Rng rng2(7);
  EXPECT_EQ(RunMultiPartyIntersection(reported, Group(), family, rng2, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hsis::sovereign

// Differential suite pinning the streamed intersection pipeline
// (RunTwoPartyIntersectionStreamed) bit-identical to the legacy
// whole-set path: for every tested chunk size and thread count, the
// intersection, its size, and both commitment byte strings match the
// legacy outcome exactly, and bytes_sent is invariant across thread
// counts. A single-frame stream (chunk_size >= both set sizes) is
// wire-size-identical to the legacy path, so bytes_sent matches it
// exactly there; smaller chunks pay exactly the documented continuation
// framing overhead and nothing else. The fault-injection matrix and the
// sim-layer traffic campaign ride along under the same binary.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/protocol_traffic.h"
#include "sovereign/intersection_protocol.h"

namespace hsis::sovereign {
namespace {

constexpr size_t kChunkSizes[] = {1, 7, 64, 41, 42};
constexpr int kThreadCounts[] = {1, 2, 8};

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

const crypto::PrimeGroup& Group() {
  return crypto::PrimeGroup::SmallTestGroup();
}

/// The matrix datasets: |A| = 41, |B| = 40, overlap 20 — sized so the
/// tested chunk sizes cover sub-tuple (1), ragged (7), larger-than-set
/// (64), exactly-|A| (41), and |A|+1 (42) framings.
Dataset MatrixSetA() {
  std::vector<std::string> v;
  for (int i = 0; i < 20; ++i) v.push_back("common" + std::to_string(i));
  for (int i = 0; i < 21; ++i) v.push_back("a-only" + std::to_string(i));
  return Dataset::FromStrings(v);
}

Dataset MatrixSetB() {
  std::vector<std::string> v;
  for (int i = 0; i < 20; ++i) v.push_back("common" + std::to_string(i));
  for (int i = 0; i < 20; ++i) v.push_back("b-only" + std::to_string(i));
  return Dataset::FromStrings(v);
}

using Outcomes = std::pair<IntersectionOutcome, IntersectionOutcome>;

Outcomes RunLegacy(uint64_t seed, bool size_only) {
  Rng rng(seed);
  IntersectionOptions options;
  options.size_only = size_only;
  Result<Outcomes> run = RunTwoPartyIntersection(MatrixSetA(), MatrixSetB(),
                                                 Group(), MuFamily(), rng,
                                                 options);
  EXPECT_TRUE(run.ok()) << run.status().message();
  return std::move(*run);
}

Outcomes RunStreamed(uint64_t seed, bool size_only, size_t chunk_size,
                     int threads, size_t pipeline_depth = 1) {
  Rng rng(seed);
  IntersectionOptions options;
  options.size_only = size_only;
  options.chunk_size = chunk_size;
  options.threads = threads;
  options.pipeline_depth = pipeline_depth;
  Result<Outcomes> run = RunTwoPartyIntersectionStreamed(
      MatrixSetA(), MatrixSetB(), Group(), MuFamily(), rng, options);
  EXPECT_TRUE(run.ok()) << run.status().message();
  return std::move(*run);
}

/// Everything except bytes_sent must match the legacy outcome exactly.
void ExpectOutcomeEqual(const IntersectionOutcome& got,
                        const IntersectionOutcome& want,
                        const std::string& label) {
  EXPECT_EQ(got.intersection, want.intersection) << label;
  EXPECT_EQ(got.intersection_size, want.intersection_size) << label;
  EXPECT_EQ(got.own_commitment, want.own_commitment) << label;
  EXPECT_EQ(got.peer_commitment, want.peer_commitment) << label;
}

TEST(StreamedProtocolTest, DifferentialMatrixFullMode) {
  const Outcomes legacy = RunLegacy(101, /*size_only=*/false);
  ASSERT_EQ(legacy.first.intersection_size, 20u);
  for (size_t chunk : kChunkSizes) {
    // bytes_sent must not depend on the thread count; pin against the
    // single-threaded run of the same chunk size.
    const Outcomes baseline =
        RunStreamed(101, /*size_only=*/false, chunk, /*threads=*/1);
    for (int threads : kThreadCounts) {
      const std::string label = "chunk=" + std::to_string(chunk) +
                                " threads=" + std::to_string(threads);
      const Outcomes streamed =
          RunStreamed(101, /*size_only=*/false, chunk, threads);
      ExpectOutcomeEqual(streamed.first, legacy.first, "A " + label);
      ExpectOutcomeEqual(streamed.second, legacy.second, "B " + label);
      EXPECT_EQ(streamed.first.bytes_sent, baseline.first.bytes_sent) << label;
      EXPECT_EQ(streamed.second.bytes_sent, baseline.second.bytes_sent)
          << label;
    }
  }
}

TEST(StreamedProtocolTest, DifferentialMatrixSizeOnly) {
  const Outcomes legacy = RunLegacy(202, /*size_only=*/true);
  ASSERT_EQ(legacy.first.intersection_size, 20u);
  for (size_t chunk : kChunkSizes) {
    const Outcomes baseline =
        RunStreamed(202, /*size_only=*/true, chunk, /*threads=*/1);
    for (int threads : kThreadCounts) {
      const std::string label = "chunk=" + std::to_string(chunk) +
                                " threads=" + std::to_string(threads);
      const Outcomes streamed =
          RunStreamed(202, /*size_only=*/true, chunk, threads);
      ExpectOutcomeEqual(streamed.first, legacy.first, "A " + label);
      ExpectOutcomeEqual(streamed.second, legacy.second, "B " + label);
      EXPECT_TRUE(streamed.first.intersection.empty()) << label;
      EXPECT_EQ(streamed.first.bytes_sent, baseline.first.bytes_sent) << label;
      EXPECT_EQ(streamed.second.bytes_sent, baseline.second.bytes_sent)
          << label;
    }
  }
}

TEST(StreamedProtocolTest, PipelinedDifferentialMatrixFullMode) {
  // The crypto/wire overlap must be invisible on the wire: at every
  // chunk size × thread count × pipeline depth the outcome equals the
  // legacy path and bytes_sent equals the serial (depth-1) schedule of
  // the same chunk size — the producer may only run ahead, never
  // reorder or reframe.
  const Outcomes legacy = RunLegacy(101, /*size_only=*/false);
  for (size_t chunk : kChunkSizes) {
    const Outcomes serial =
        RunStreamed(101, /*size_only=*/false, chunk, /*threads=*/1);
    for (size_t depth : {size_t{2}, size_t{3}}) {
      for (int threads : kThreadCounts) {
        const std::string label = "chunk=" + std::to_string(chunk) +
                                  " depth=" + std::to_string(depth) +
                                  " threads=" + std::to_string(threads);
        const Outcomes piped =
            RunStreamed(101, /*size_only=*/false, chunk, threads, depth);
        ExpectOutcomeEqual(piped.first, legacy.first, "A " + label);
        ExpectOutcomeEqual(piped.second, legacy.second, "B " + label);
        EXPECT_EQ(piped.first.bytes_sent, serial.first.bytes_sent) << label;
        EXPECT_EQ(piped.second.bytes_sent, serial.second.bytes_sent) << label;
      }
    }
  }
}

TEST(StreamedProtocolTest, PipelinedDifferentialMatrixSizeOnly) {
  const Outcomes legacy = RunLegacy(202, /*size_only=*/true);
  for (size_t chunk : kChunkSizes) {
    const Outcomes serial =
        RunStreamed(202, /*size_only=*/true, chunk, /*threads=*/1);
    for (size_t depth : {size_t{2}, size_t{3}}) {
      const std::string label = "chunk=" + std::to_string(chunk) +
                                " depth=" + std::to_string(depth);
      const Outcomes piped =
          RunStreamed(202, /*size_only=*/true, chunk, /*threads=*/2, depth);
      ExpectOutcomeEqual(piped.first, legacy.first, "A " + label);
      ExpectOutcomeEqual(piped.second, legacy.second, "B " + label);
      EXPECT_TRUE(piped.first.intersection.empty()) << label;
      EXPECT_EQ(piped.first.bytes_sent, serial.first.bytes_sent) << label;
      EXPECT_EQ(piped.second.bytes_sent, serial.second.bytes_sent) << label;
    }
  }
}

TEST(StreamedProtocolTest, PipelineDepthBeyondChunkCountIsHarmless) {
  // A depth larger than the stream (or a single-chunk stream under any
  // depth) degenerates gracefully: same outcome, same bytes.
  const Outcomes serial = RunStreamed(505, /*size_only=*/false, 7, 1);
  for (size_t depth : {size_t{64}, size_t{1000}}) {
    const Outcomes piped = RunStreamed(505, false, 7, 2, depth);
    ExpectOutcomeEqual(piped.first, serial.first,
                       "depth=" + std::to_string(depth));
    EXPECT_EQ(piped.first.bytes_sent, serial.first.bytes_sent);
  }
  const Outcomes one_frame = RunStreamed(505, false, 64, 1);
  const Outcomes one_piped = RunStreamed(505, false, 64, 2, 3);
  ExpectOutcomeEqual(one_piped.first, one_frame.first, "single frame");
  EXPECT_EQ(one_piped.first.bytes_sent, one_frame.first.bytes_sent);
}

TEST(StreamedProtocolTest, SingleFrameStreamMatchesLegacyWireBytes) {
  // chunk_size >= both set sizes means every element list is a single
  // opening frame with the legacy layout: the sealed byte count must
  // match the legacy path exactly. 41 covers |A| exactly (and > |B|).
  const Outcomes legacy = RunLegacy(303, /*size_only=*/false);
  for (size_t chunk : {size_t{41}, size_t{42}, size_t{64}, size_t{4096}}) {
    const Outcomes streamed =
        RunStreamed(303, /*size_only=*/false, chunk, /*threads=*/2);
    EXPECT_EQ(streamed.first.bytes_sent, legacy.first.bytes_sent)
        << "chunk=" << chunk;
    EXPECT_EQ(streamed.second.bytes_sent, legacy.second.bytes_sent)
        << "chunk=" << chunk;
  }
  // Multi-frame streams pay framing overhead — strictly more bytes,
  // never fewer, and strictly decreasing as frames get larger.
  const Outcomes tiny = RunStreamed(303, false, 1, 1);
  const Outcomes mid = RunStreamed(303, false, 7, 1);
  EXPECT_GT(tiny.first.bytes_sent, mid.first.bytes_sent);
  EXPECT_GT(mid.first.bytes_sent, legacy.first.bytes_sent);
}

TEST(StreamedProtocolTest, ContinuationOverheadIsExactlyFraming) {
  // Each continuation frame costs the 10-byte chunk header plus one AEAD
  // seal. Both are fixed, so the overhead of a chunked run over the
  // single-frame run is linear in the number of extra frames — measure
  // the per-frame cost at chunk=7 and check chunk=1 against it.
  auto frames = [](size_t n, size_t chunk) {
    return (n + chunk - 1) / chunk;
  };
  const size_t n_a = MatrixSetA().size();  // 41
  const size_t n_b = MatrixSetB().size();  // 40
  const Outcomes whole = RunStreamed(404, false, 64, 1);
  const Outcomes by7 = RunStreamed(404, false, 7, 1);
  const Outcomes by1 = RunStreamed(404, false, 1, 1);
  // Party A ships its own set (frames(n_a)) and the reply about B's
  // stream (frames(n_b)); each beyond the first is a continuation.
  const size_t extra7 = (frames(n_a, 7) - 1) + (frames(n_b, 7) - 1);
  const size_t extra1 = (frames(n_a, 1) - 1) + (frames(n_b, 1) - 1);
  const size_t overhead7 = by7.first.bytes_sent - whole.first.bytes_sent;
  const size_t overhead1 = by1.first.bytes_sent - whole.first.bytes_sent;
  ASSERT_EQ(overhead7 % extra7, 0u);
  const size_t per_frame = overhead7 / extra7;
  EXPECT_EQ(overhead1, per_frame * extra1);
  EXPECT_GE(per_frame, 10u);  // at least the continuation header itself
}

TEST(StreamedProtocolTest, PaperSection1Example) {
  Rng rng(1);
  Dataset vr = Dataset::FromStrings({"b", "u", "v", "y"});
  Dataset vs = Dataset::FromStrings({"a", "u", "v", "x"});
  IntersectionOptions options;
  options.chunk_size = 2;
  options.threads = 2;
  auto outcomes = RunTwoPartyIntersectionStreamed(vr, vs, Group(), MuFamily(),
                                                  rng, options);
  ASSERT_TRUE(outcomes.ok());
  Dataset expected = Dataset::FromStrings({"u", "v"});
  EXPECT_EQ(outcomes->first.intersection, expected);
  EXPECT_EQ(outcomes->second.intersection, expected);
}

TEST(StreamedProtocolTest, EmptyDatasets) {
  for (size_t chunk : {size_t{1}, size_t{3}}) {
    Rng rng(7);
    Dataset empty;
    Dataset b = Dataset::FromStrings({"x", "y"});
    IntersectionOptions options;
    options.chunk_size = chunk;
    auto one_sided = RunTwoPartyIntersectionStreamed(empty, b, Group(),
                                                     MuFamily(), rng, options);
    ASSERT_TRUE(one_sided.ok()) << one_sided.status().message();
    EXPECT_TRUE(one_sided->first.intersection.empty());
    EXPECT_TRUE(one_sided->second.intersection.empty());

    auto both = RunTwoPartyIntersectionStreamed(empty, empty, Group(),
                                                MuFamily(), rng, options);
    ASSERT_TRUE(both.ok()) << both.status().message();
    EXPECT_EQ(both->first.intersection_size, 0u);
  }
}

TEST(StreamedProtocolTest, MultisetMultiplicity) {
  for (size_t chunk : {size_t{1}, size_t{3}}) {
    Rng rng(8);
    Dataset a = Dataset::FromStrings({"x", "x", "x", "y"});
    Dataset b = Dataset::FromStrings({"x", "x", "z"});
    IntersectionOptions options;
    options.chunk_size = chunk;
    auto outcomes = RunTwoPartyIntersectionStreamed(a, b, Group(), MuFamily(),
                                                    rng, options);
    ASSERT_TRUE(outcomes.ok());
    EXPECT_EQ(outcomes->first.intersection, Dataset::FromStrings({"x", "x"}))
        << "chunk=" << chunk;
    EXPECT_EQ(outcomes->second.intersection, Dataset::FromStrings({"x", "x"}))
        << "chunk=" << chunk;
  }
}

TEST(StreamedProtocolTest, OptionValidation) {
  IntersectionOptions zero_chunk;
  zero_chunk.chunk_size = 0;
  EXPECT_EQ(ValidateIntersectionOptions(zero_chunk).code(),
            StatusCode::kInvalidArgument);
  IntersectionOptions negative_threads;
  negative_threads.threads = -1;
  EXPECT_EQ(ValidateIntersectionOptions(negative_threads).code(),
            StatusCode::kInvalidArgument);
  IntersectionOptions zero_depth;
  zero_depth.pipeline_depth = 0;
  EXPECT_EQ(ValidateIntersectionOptions(zero_depth).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateIntersectionOptions(IntersectionOptions{}).ok());
  // Hardware-concurrency selection (threads == 0) is valid, per the
  // ParseThreadsValue contract.
  IntersectionOptions hw;
  hw.threads = 0;
  EXPECT_TRUE(ValidateIntersectionOptions(hw).ok());

  // The streamed entry point rejects bad options before any traffic.
  Rng rng(9);
  Dataset a = Dataset::FromStrings({"p"});
  auto run = RunTwoPartyIntersectionStreamed(a, a, Group(), MuFamily(), rng,
                                             zero_chunk);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  run = RunTwoPartyIntersectionStreamed(a, a, Group(), MuFamily(), rng,
                                        negative_threads);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  run = RunTwoPartyIntersectionStreamed(a, a, Group(), MuFamily(), rng,
                                        zero_depth);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

// --- Fault-injection matrix over the streamed path -----------------------

Dataset FaultSetA() { return Dataset::FromStrings({"a", "b", "c", "d"}); }
Dataset FaultSetB() { return Dataset::FromStrings({"c", "d", "e", "f"}); }

Result<Outcomes> RunStreamedFault(const FaultInjection& faults,
                                  size_t chunk_size) {
  Rng rng(11);
  IntersectionOptions options;
  options.chunk_size = chunk_size;
  options.fault_injection = faults;
  return RunTwoPartyIntersectionStreamed(FaultSetA(), FaultSetB(), Group(),
                                         MuFamily(), rng, options);
}

TEST(StreamedFaultInjectionTest, StructuralDeviationsDetected) {
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{64}}) {
    FaultInjection omit;
    omit.omit_one_reply_pair = true;
    auto run = RunStreamedFault(omit, chunk);
    ASSERT_FALSE(run.ok()) << "omit, chunk=" << chunk;
    EXPECT_EQ(run.status().code(), StatusCode::kProtocolViolation);

    FaultInjection count;
    count.corrupt_reply_count = true;
    run = RunStreamedFault(count, chunk);
    ASSERT_FALSE(run.ok()) << "count, chunk=" << chunk;
    EXPECT_EQ(run.status().code(), StatusCode::kProtocolViolation);

    FaultInjection wrong;
    wrong.wrong_message_type = true;
    run = RunStreamedFault(wrong, chunk);
    ASSERT_FALSE(run.ok()) << "type, chunk=" << chunk;
    EXPECT_EQ(run.status().code(), StatusCode::kProtocolViolation);
  }
}

TEST(StreamedFaultInjectionTest, CovertSwapIsTheSemiHonestBoundary) {
  // Same boundary as the legacy path: well-formed pairs with swapped
  // double-encryptions complete the protocol; B's own view stays honest.
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{64}}) {
    FaultInjection swap;
    swap.swap_reply_pairs = true;
    auto run = RunStreamedFault(swap, chunk);
    ASSERT_TRUE(run.ok()) << "covert deviation must not be detectable";
    EXPECT_EQ(run->second.intersection, Dataset::FromStrings({"c", "d"}));
  }
}

TEST(StreamedFaultInjectionTest, WireTamperRejectedByChannel) {
  // A bit flip on the sealed frame is the channel AEAD's job, below the
  // stream reader: IntegrityViolation, not a parse error.
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{64}}) {
    FaultInjection flip;
    flip.corrupt_reply_frame_bit = true;
    auto run = RunStreamedFault(flip, chunk);
    ASSERT_FALSE(run.ok()) << "chunk=" << chunk;
    EXPECT_EQ(run.status().code(), StatusCode::kIntegrityViolation)
        << run.status().message();
  }
}

TEST(StreamedFaultInjectionTest, WireTamperRejectedOnLegacyPathToo) {
  Rng rng(12);
  IntersectionOptions options;
  options.fault_injection.corrupt_reply_frame_bit = true;
  auto run = RunTwoPartyIntersection(FaultSetA(), FaultSetB(), Group(),
                                     MuFamily(), rng, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kIntegrityViolation);
}

// --- Heavy-traffic campaigns over the streamed pipeline ------------------

TEST(ProtocolTrafficTest, CampaignStatsAreSessionThreadInvariant) {
  sim::ProtocolTrafficOptions options;
  options.sessions = 12;
  options.tuples_per_party = 24;
  options.common_tuples = 8;
  options.chunk_size = 5;
  options.seed = 99;
  options.session_threads = 1;
  auto serial = sim::RunProtocolTrafficCampaign(options, Group(), MuFamily());
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  options.session_threads = 4;
  auto threaded =
      sim::RunProtocolTrafficCampaign(options, Group(), MuFamily());
  ASSERT_TRUE(threaded.ok()) << threaded.status().message();

  EXPECT_EQ(serial->sessions, 12u);
  EXPECT_EQ(serial->protocol_failures, 0u);
  // withhold and probe draw independently, so a session can be both;
  // the union of the three categories still covers every session.
  EXPECT_GE(serial->honest + serial->withheld + serial->probed,
            serial->sessions);
  EXPECT_LE(serial->honest, serial->sessions);
  EXPECT_GT(serial->tuples_processed, 0u);
  EXPECT_GT(serial->bytes_on_wire, 0u);
  EXPECT_LE(serial->audit_flags, serial->audited);

  EXPECT_EQ(serial->sessions, threaded->sessions);
  EXPECT_EQ(serial->honest, threaded->honest);
  EXPECT_EQ(serial->withheld, threaded->withheld);
  EXPECT_EQ(serial->probed, threaded->probed);
  EXPECT_EQ(serial->audited, threaded->audited);
  EXPECT_EQ(serial->audit_flags, threaded->audit_flags);
  EXPECT_EQ(serial->tuples_processed, threaded->tuples_processed);
  EXPECT_EQ(serial->intersections_total, threaded->intersections_total);
  EXPECT_EQ(serial->bytes_on_wire, threaded->bytes_on_wire);
  EXPECT_EQ(serial->protocol_failures, threaded->protocol_failures);
}

TEST(ProtocolTrafficTest, CampaignStatsArePipelineDepthInvariant) {
  // Same contract as thread invariance: the crypto/wire overlap inside
  // each session must not change a single aggregate statistic.
  sim::ProtocolTrafficOptions options;
  options.sessions = 12;
  options.tuples_per_party = 24;
  options.common_tuples = 8;
  options.chunk_size = 5;
  options.seed = 99;
  auto serial = sim::RunProtocolTrafficCampaign(options, Group(), MuFamily());
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  options.pipeline_depth = 3;
  options.session_threads = 4;
  auto piped = sim::RunProtocolTrafficCampaign(options, Group(), MuFamily());
  ASSERT_TRUE(piped.ok()) << piped.status().message();

  EXPECT_EQ(serial->sessions, piped->sessions);
  EXPECT_EQ(serial->honest, piped->honest);
  EXPECT_EQ(serial->withheld, piped->withheld);
  EXPECT_EQ(serial->probed, piped->probed);
  EXPECT_EQ(serial->audited, piped->audited);
  EXPECT_EQ(serial->audit_flags, piped->audit_flags);
  EXPECT_EQ(serial->tuples_processed, piped->tuples_processed);
  EXPECT_EQ(serial->intersections_total, piped->intersections_total);
  EXPECT_EQ(serial->bytes_on_wire, piped->bytes_on_wire);
  EXPECT_EQ(serial->protocol_failures, piped->protocol_failures);
}

TEST(ProtocolTrafficTest, AuditsFlagEveryCheater) {
  // All-cheat, all-audit: every audited session's commitment must
  // mismatch the hash of the true dataset.
  sim::ProtocolTrafficOptions options;
  options.sessions = 6;
  options.tuples_per_party = 16;
  options.common_tuples = 4;
  options.withhold_fraction = 1.0;
  options.probe_fraction = 0.0;
  options.audit_fraction = 1.0;
  options.chunk_size = 4;
  auto stats = sim::RunProtocolTrafficCampaign(options, Group(), MuFamily());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->withheld, stats->sessions);
  EXPECT_EQ(stats->audited, stats->sessions);
  EXPECT_EQ(stats->audit_flags, stats->sessions);
  EXPECT_EQ(stats->honest, 0u);
}

TEST(ProtocolTrafficTest, HonestCampaignNeverFlags) {
  sim::ProtocolTrafficOptions options;
  options.sessions = 6;
  options.tuples_per_party = 16;
  options.common_tuples = 4;
  options.withhold_fraction = 0.0;
  options.probe_fraction = 0.0;
  options.audit_fraction = 1.0;
  options.size_only = true;
  auto stats = sim::RunProtocolTrafficCampaign(options, Group(), MuFamily());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->honest, stats->sessions);
  EXPECT_EQ(stats->audit_flags, 0u);
  // Honest sessions: every intersection is exactly the common pool.
  EXPECT_EQ(stats->intersections_total, 6u * 4u);
}

TEST(ProtocolTrafficTest, RejectsInvalidOptions) {
  sim::ProtocolTrafficOptions bad_chunk;
  bad_chunk.chunk_size = 0;
  EXPECT_EQ(sim::RunProtocolTrafficCampaign(bad_chunk, Group(), MuFamily())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  sim::ProtocolTrafficOptions bad_threads;
  bad_threads.session_threads = -2;
  EXPECT_EQ(sim::RunProtocolTrafficCampaign(bad_threads, Group(), MuFamily())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hsis::sovereign

#include "sovereign/perturbation_defense.h"

#include <gtest/gtest.h>

namespace hsis::sovereign {
namespace {

crypto::MultisetHashFamily MuFamily() {
  return std::move(
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup())
          .value());
}

const crypto::PrimeGroup& Group() {
  return crypto::PrimeGroup::SmallTestGroup();
}

Dataset Defender() {
  std::vector<std::string> values;
  for (int i = 0; i < 30; ++i) values.push_back("shared-" + std::to_string(i));
  for (int i = 0; i < 30; ++i) values.push_back("private-" + std::to_string(i));
  return Dataset::FromStrings(values);
}

Dataset Adversary() {
  std::vector<std::string> values;
  for (int i = 0; i < 30; ++i) values.push_back("shared-" + std::to_string(i));
  for (int i = 0; i < 10; ++i) values.push_back("adv-" + std::to_string(i));
  return Dataset::FromStrings(values);
}

std::vector<std::string> Probes() {
  // The adversary guesses 10 of the defender's private tuples.
  std::vector<std::string> probes;
  for (int i = 0; i < 10; ++i) probes.push_back("private-" + std::to_string(i));
  return probes;
}

TEST(PerturbationTest, PerturbDatasetBehavior) {
  Rng rng(1);
  Dataset data = Dataset::FromStrings({"a", "b", "c", "d", "e"});
  PerturbationPolicy keep_all;
  EXPECT_EQ(PerturbDataset(data, keep_all, rng), data);

  PerturbationPolicy drop_all;
  drop_all.withhold_probability = 1.0;
  EXPECT_TRUE(PerturbDataset(data, drop_all, rng).empty());

  PerturbationPolicy decoys;
  decoys.decoy_count = 3;
  Dataset with_decoys = PerturbDataset(data, decoys, rng);
  EXPECT_EQ(with_decoys.size(), 8u);
  for (const Tuple& t : data.tuples()) {
    EXPECT_TRUE(with_decoys.Contains(t));
  }
}

TEST(PerturbationTest, NoDefenseFullRecallFullLeak) {
  Rng rng(2);
  PerturbationPolicy none;
  auto eval = EvaluatePerturbationDefense(Defender(), Adversary(), Probes(),
                                          none, Group(), MuFamily(), rng);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->intersection_recall, 1.0);
  EXPECT_DOUBLE_EQ(eval->probe_hit_rate, 1.0);
  EXPECT_EQ(eval->true_intersection_size, 30u);
}

TEST(PerturbationTest, FullWithholdingBlocksProbesAndResult) {
  Rng rng(3);
  PerturbationPolicy max_defense;
  max_defense.withhold_probability = 1.0;
  auto eval = EvaluatePerturbationDefense(Defender(), Adversary(), Probes(),
                                          max_defense, Group(), MuFamily(),
                                          rng);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->intersection_recall, 0.0);
  EXPECT_DOUBLE_EQ(eval->probe_hit_rate, 0.0);
}

TEST(PerturbationTest, TradeoffCouplesAccuracyAndPrivacy) {
  // The structural weakness of perturbation: recall and probe hit rate
  // are both ≈ (1 - q). You cannot buy privacy without paying accuracy.
  Rng rng(4);
  PerturbationPolicy half;
  half.withhold_probability = 0.5;
  double recall_sum = 0, hit_sum = 0;
  const int kTrials = 30;
  for (int i = 0; i < kTrials; ++i) {
    auto eval = EvaluatePerturbationDefense(Defender(), Adversary(), Probes(),
                                            half, Group(), MuFamily(), rng);
    ASSERT_TRUE(eval.ok());
    recall_sum += eval->intersection_recall;
    hit_sum += eval->probe_hit_rate;
  }
  EXPECT_NEAR(recall_sum / kTrials, 0.5, 0.1);
  EXPECT_NEAR(hit_sum / kTrials, 0.5, 0.12);
}

TEST(PerturbationTest, DecoysDoNotAffectRecallOrProbes) {
  // Decoys pollute the *adversary's* view of sizes but cannot block
  // probes (those target real tuples) nor reduce recall.
  Rng rng(5);
  PerturbationPolicy decoys;
  decoys.decoy_count = 20;
  auto eval = EvaluatePerturbationDefense(Defender(), Adversary(), Probes(),
                                          decoys, Group(), MuFamily(), rng);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->intersection_recall, 1.0);
  EXPECT_DOUBLE_EQ(eval->probe_hit_rate, 1.0);
}

TEST(PerturbationTest, Validation) {
  Rng rng(6);
  PerturbationPolicy bad;
  bad.withhold_probability = 1.5;
  EXPECT_FALSE(EvaluatePerturbationDefense(Defender(), Adversary(), Probes(),
                                           bad, Group(), MuFamily(), rng)
                   .ok());
}

TEST(PerturbationTest, EmptyTruthGivesFullRecall) {
  Rng rng(7);
  Dataset defender = Dataset::FromStrings({"x"});
  Dataset adversary = Dataset::FromStrings({"y"});
  PerturbationPolicy none;
  auto eval = EvaluatePerturbationDefense(defender, adversary, {}, none,
                                          Group(), MuFamily(), rng);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->intersection_recall, 1.0);
  EXPECT_EQ(eval->true_intersection_size, 0u);
}

}  // namespace
}  // namespace hsis::sovereign

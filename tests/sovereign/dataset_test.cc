#include "sovereign/dataset.h"

#include <gtest/gtest.h>

namespace hsis::sovereign {
namespace {

TEST(TupleTest, StringRoundTripAndOrdering) {
  Tuple t = Tuple::FromString("alice");
  EXPECT_EQ(t.ToString(), "alice");
  EXPECT_EQ(t, Tuple::FromString("alice"));
  EXPECT_LT(Tuple::FromString("alice"), Tuple::FromString("bob"));
}

TEST(DatasetTest, CanonicalOrderIndependentOfInsertion) {
  Dataset a = Dataset::FromStrings({"c", "a", "b"});
  Dataset b = Dataset::FromStrings({"a", "b", "c"});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.tuples()[0].ToString(), "a");
  EXPECT_EQ(a.tuples()[2].ToString(), "c");
}

TEST(DatasetTest, AddKeepsOrder) {
  Dataset d;
  d.Add(Tuple::FromString("m"));
  d.Add(Tuple::FromString("a"));
  d.Add(Tuple::FromString("z"));
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.tuples()[0].ToString(), "a");
  EXPECT_EQ(d.tuples()[1].ToString(), "m");
  EXPECT_EQ(d.tuples()[2].ToString(), "z");
}

TEST(DatasetTest, ContainsAndCount) {
  Dataset d = Dataset::FromStrings({"x", "y", "x"});
  EXPECT_TRUE(d.Contains(Tuple::FromString("x")));
  EXPECT_FALSE(d.Contains(Tuple::FromString("z")));
  EXPECT_EQ(d.Count(Tuple::FromString("x")), 2u);
  EXPECT_EQ(d.Count(Tuple::FromString("y")), 1u);
  EXPECT_EQ(d.Count(Tuple::FromString("z")), 0u);
}

TEST(DatasetTest, IntersectMatchesPaperExample) {
  // Section 1: V_R = {b, u, v, y}, V_S = {a, u, v, x} -> {u, v}.
  Dataset vr = Dataset::FromStrings({"b", "u", "v", "y"});
  Dataset vs = Dataset::FromStrings({"a", "u", "v", "x"});
  EXPECT_EQ(vr.Intersect(vs), Dataset::FromStrings({"u", "v"}));
}

TEST(DatasetTest, MultisetIntersection) {
  Dataset a = Dataset::FromStrings({"x", "x", "x", "y"});
  Dataset b = Dataset::FromStrings({"x", "x", "z"});
  EXPECT_EQ(a.Intersect(b), Dataset::FromStrings({"x", "x"}));
}

TEST(DatasetTest, UnionAndDifference) {
  Dataset a = Dataset::FromStrings({"p", "q"});
  Dataset b = Dataset::FromStrings({"q", "r"});
  EXPECT_EQ(a.Union(b), Dataset::FromStrings({"p", "q", "q", "r"}));
  EXPECT_EQ(a.Difference(b), Dataset::FromStrings({"p"}));
  EXPECT_EQ(b.Difference(a), Dataset::FromStrings({"r"}));
}

TEST(DatasetTest, EmptyDatasetBehaves) {
  Dataset empty;
  Dataset a = Dataset::FromStrings({"x"});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Intersect(a), Dataset());
  EXPECT_EQ(a.Intersect(empty), Dataset());
  EXPECT_EQ(a.Union(empty), a);
  EXPECT_EQ(a.Difference(empty), a);
}

TEST(DatasetTest, RemoveRandomShrinks) {
  Rng rng(1);
  Dataset d = Dataset::FromStrings({"a", "b", "c", "d", "e"});
  d.RemoveRandom(2, rng);
  EXPECT_EQ(d.size(), 3u);
  d.RemoveRandom(100, rng);
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace hsis::sovereign

#include "common/sweep_wire.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

namespace hsis::common {
namespace {

const std::string kSha(64, 'a');  // a syntactically valid digest

// One populated exemplar of every frame type, with every field set to
// a distinctive value so a field-order bug cannot round-trip.
std::vector<SweepFrame> Exemplars() {
  SweepComplete complete;
  complete.lease_id = 7;
  complete.shard = 3;
  complete.payload_sha256 = kSha;
  SweepFail fail;
  fail.lease_id = 9;
  fail.shard = 2;
  fail.message = "worker exploded";
  SweepLeaseGrant grant;
  grant.lease_id = 11;
  grant.shard = 4;
  grant.begin = 100;
  grant.end = 125;
  grant.lease_ms = 30000;
  grant.sweep = "figure1";
  grant.total = 201;
  grant.shards = 8;
  grant.seed = 42;
  SweepStatusReply status;
  status.sweep = "figure1";
  status.shards = 8;
  status.committed = 5;
  status.leased = 2;
  status.pending = 1;
  status.resumed = 3;
  status.retries = 4;
  status.expired = 2;
  status.quarantined = 1;
  status.drained = 0;
  return {
      SweepLeaseRequest{"host:123"},
      SweepHeartbeat{5, 1},
      complete,
      fail,
      SweepStatusRequest{},
      SweepShutdown{},
      grant,
      SweepNoWork{1, 250, 8, 8},
      SweepHeartbeatAck{5, 30000},
      SweepCompleteAck{3, 1, 6, 8},
      SweepFailAck{2, 1},
      status,
      SweepErrorReply{static_cast<uint8_t>(StatusCode::kNotFound), "gone"},
      SweepShutdownAck{6, 8},
  };
}

TEST(SweepWireTest, EveryFrameTypeRoundTrips) {
  for (const SweepFrame& frame : Exemplars()) {
    Bytes body = SerializeSweepFrame(frame);
    ASSERT_GE(body.size(), 2u);
    EXPECT_EQ(body[0], kSweepWireVersion);
    EXPECT_EQ(body[1], static_cast<uint8_t>(SweepFrameTypeOf(frame)));
    auto parsed = ParseSweepFrame(body);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, frame) << "frame type "
                              << SweepFrameTypeName(SweepFrameTypeOf(frame));
  }
}

TEST(SweepWireTest, FrameTypeNamesAreStable) {
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kLeaseRequest),
               "lease-request");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kHeartbeat), "heartbeat");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kComplete), "complete");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kFail), "fail");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kStatusRequest),
               "status-request");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kShutdown), "shutdown");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kLeaseGrant),
               "lease-grant");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kNoWork), "no-work");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kHeartbeatAck),
               "heartbeat-ack");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kCompleteAck),
               "complete-ack");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kFailAck), "fail-ack");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kStatusReply),
               "status-reply");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kErrorReply), "error");
  EXPECT_STREQ(SweepFrameTypeName(SweepFrameType::kShutdownAck),
               "shutdown-ack");
}

TEST(SweepWireTest, RequestAndReplyTagRanges) {
  for (const SweepFrame& frame : Exemplars()) {
    uint8_t tag = static_cast<uint8_t>(SweepFrameTypeOf(frame));
    bool is_reply = tag >= 0x80;
    bool worker_to_daemon = std::holds_alternative<SweepLeaseRequest>(frame) ||
                            std::holds_alternative<SweepHeartbeat>(frame) ||
                            std::holds_alternative<SweepComplete>(frame) ||
                            std::holds_alternative<SweepFail>(frame) ||
                            std::holds_alternative<SweepStatusRequest>(frame) ||
                            std::holds_alternative<SweepShutdown>(frame);
    EXPECT_NE(is_reply, worker_to_daemon);
  }
}

// ---------------------------------------------------------------------
// Rejection matrix: every structural defect is a ProtocolViolation
// ---------------------------------------------------------------------

void ExpectViolation(const Bytes& body, const char* what) {
  auto parsed = ParseSweepFrame(body);
  ASSERT_FALSE(parsed.ok()) << what;
  EXPECT_EQ(parsed.status().code(), StatusCode::kProtocolViolation) << what;
}

TEST(SweepWireTest, RejectsEmptyAndShortBodies) {
  ExpectViolation({}, "empty body");
  ExpectViolation({kSweepWireVersion}, "version byte only");
}

TEST(SweepWireTest, RejectsWrongVersion) {
  Bytes body = SerializeSweepFrame(SweepFrame(SweepLeaseRequest{"w"}));
  body[0] = 0x02;
  auto parsed = ParseSweepFrame(body);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kProtocolViolation);
  EXPECT_NE(parsed.status().message().find("hsis-sweepd-v1"),
            std::string::npos);
}

TEST(SweepWireTest, RejectsUnknownType) {
  ExpectViolation({kSweepWireVersion, 0x00}, "type 0x00");
  ExpectViolation({kSweepWireVersion, 0x42}, "unassigned request tag");
  ExpectViolation({kSweepWireVersion, 0xFF}, "unassigned reply tag");
}

TEST(SweepWireTest, RejectsTruncationAtEveryByte) {
  for (const SweepFrame& frame : Exemplars()) {
    Bytes body = SerializeSweepFrame(frame);
    for (size_t cut = 2; cut < body.size(); ++cut) {
      Bytes truncated(body.begin(), body.begin() + cut);
      auto parsed = ParseSweepFrame(truncated);
      ASSERT_FALSE(parsed.ok())
          << SweepFrameTypeName(SweepFrameTypeOf(frame)) << " cut at "
          << cut;
      EXPECT_EQ(parsed.status().code(), StatusCode::kProtocolViolation);
    }
  }
}

TEST(SweepWireTest, RejectsTrailingBytes) {
  for (const SweepFrame& frame : Exemplars()) {
    Bytes body = SerializeSweepFrame(frame);
    body.push_back(0x00);
    auto parsed = ParseSweepFrame(body);
    ASSERT_FALSE(parsed.ok())
        << SweepFrameTypeName(SweepFrameTypeOf(frame));
    EXPECT_EQ(parsed.status().code(), StatusCode::kProtocolViolation);
  }
}

TEST(SweepWireTest, RejectsOversizedString) {
  SweepLeaseRequest request;
  request.worker = std::string(kSweepWireMaxString + 1, 'w');
  ExpectViolation(SerializeSweepFrame(SweepFrame(request)),
                  "string above the cap");
  // Exactly at the cap is legal.
  request.worker = std::string(kSweepWireMaxString, 'w');
  auto parsed = ParseSweepFrame(SerializeSweepFrame(SweepFrame(request)));
  EXPECT_TRUE(parsed.ok());
}

TEST(SweepWireTest, RejectsMalformedSha256) {
  SweepComplete complete;
  complete.lease_id = 1;
  complete.shard = 0;
  for (const std::string& bad :
       {std::string(63, 'a'), std::string(65, 'a'), std::string(64, 'G'),
        std::string(64, 'A'), std::string()}) {
    complete.payload_sha256 = bad;
    ExpectViolation(SerializeSweepFrame(SweepFrame(complete)),
                    "malformed digest");
  }
  complete.payload_sha256 = std::string(64, 'f');
  EXPECT_TRUE(ParseSweepFrame(SerializeSweepFrame(SweepFrame(complete))).ok());
}

TEST(SweepWireTest, RejectsBadErrorCodes) {
  ExpectViolation(SerializeSweepFrame(SweepFrame(
                      SweepErrorReply{static_cast<uint8_t>(StatusCode::kOk),
                                      "not an error"})),
                  "OK code in an error reply");
  ExpectViolation(
      SerializeSweepFrame(SweepFrame(SweepErrorReply{200, "junk code"})),
      "code beyond the taxonomy");
}

// ---------------------------------------------------------------------
// Status <-> error-reply mapping
// ---------------------------------------------------------------------

TEST(SweepWireTest, StatusRoundTripsThroughErrorReply) {
  for (Status status :
       {Status::InvalidArgument("bad flag"), Status::NotFound("lease 5"),
        Status::IntegrityViolation("sha mismatch"),
        Status::ProtocolViolation("trailing bytes"),
        Status::Internal("run failed"), Status::FailedPrecondition("nope")}) {
    SweepErrorReply reply = ToSweepError(status);
    EXPECT_EQ(FromSweepError(reply), status);
    // And the reply itself survives the wire.
    auto parsed = ParseSweepFrame(SerializeSweepFrame(SweepFrame(reply)));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(FromSweepError(std::get<SweepErrorReply>(*parsed)), status);
  }
}

TEST(SweepWireTest, ToSweepErrorTruncatesHugeMessages) {
  SweepErrorReply reply = ToSweepError(
      Status::Internal(std::string(2 * kSweepWireMaxString, 'm')));
  EXPECT_EQ(reply.message.size(), kSweepWireMaxString);
  EXPECT_TRUE(ParseSweepFrame(SerializeSweepFrame(SweepFrame(reply))).ok());
}

}  // namespace
}  // namespace hsis::common

#include "common/sweep_service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/file.h"
#include "common/scheduler.h"
#include "common/shard.h"

namespace hsis::common {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);  // committed shards would resume
  EXPECT_TRUE(CreateDirectories(dir).ok());
  return dir;
}

/// Same irregular-record toy sweep as shard_test.cc / scheduler_test.cc,
/// so the lease table exercises the exact codec the merge validates.
ShardSweepSpec ToySpec(size_t total) {
  ShardSweepSpec spec;
  spec.name = "toy";
  spec.total = total;
  spec.seed = 7;
  spec.record = [](size_t i) -> Result<Bytes> {
    return ToBytes("r" + std::to_string(i) + std::string(i % 5, 'x') + "\n");
  };
  return spec;
}

Bytes SerialReference(const ShardSweepSpec& spec) {
  Bytes all;
  for (size_t i = 0; i < spec.total; ++i) {
    Bytes record = spec.record(i).value();
    all.insert(all.end(), record.begin(), record.end());
  }
  return all;
}

struct Fixture {
  ShardSweepSpec spec;
  ShardPlan plan;
  ShardPlanInfo info;
  std::string dir;
};

Fixture MakeFixture(const char* name, size_t total, int shards) {
  Fixture f{ToySpec(total), ShardPlan::Create(total, shards).value(), {},
            FreshDir(name)};
  EXPECT_TRUE(WriteShardPlan(f.spec, f.plan, f.dir).ok());
  f.info = ReadShardPlan(f.dir).value();
  return f;
}

SweepLeaseOptions FastLease() {
  SweepLeaseOptions options;
  options.lease_ms = 1000;
  options.max_attempts = 3;
  options.retry_ms = 10;
  options.backoff_initial_ms = 0;  // table tests pace with the fake clock
  return options;
}

ShardLeaseTable MakeTable(const Fixture& f,
                          SweepLeaseOptions options = FastLease()) {
  auto table = ShardLeaseTable::Create(f.info, f.dir, options);
  EXPECT_TRUE(table.ok()) << table.status();
  return std::move(table).value();
}

void RunShard(const Fixture& f, int shard) {
  ASSERT_TRUE(ShardRunner(f.spec, f.plan).Run(shard, f.dir, 1).ok());
}

std::string ShaOf(const Fixture& f, int shard) {
  auto text = ReadFile(ShardManifestPath(f.dir, shard));
  EXPECT_TRUE(text.ok());
  auto manifest = ParseShardManifest(*text);
  EXPECT_TRUE(manifest.ok());
  return manifest->payload_sha256;
}

SweepGrant GrantOf(Result<std::variant<SweepGrant, SweepNoGrant>> acquired) {
  EXPECT_TRUE(acquired.ok()) << acquired.status();
  EXPECT_TRUE(std::holds_alternative<SweepGrant>(*acquired));
  return std::get<SweepGrant>(*acquired);
}

// ---------------------------------------------------------------------
// Lease table: grant / complete lifecycle (fake clock throughout)
// ---------------------------------------------------------------------

TEST(ShardLeaseTableTest, GrantsInShardOrderAndDrains) {
  Fixture f = MakeFixture("lease_drain", 40, 4);
  ShardLeaseTable table = MakeTable(f);

  for (int k = 0; k < 4; ++k) {
    SweepGrant grant = GrantOf(table.Acquire("w", 0));
    EXPECT_EQ(grant.shard, k);
    EXPECT_EQ(grant.range, f.plan.Range(k));
    EXPECT_EQ(grant.attempt, 1);
    RunShard(f, k);
    auto outcome = table.Complete(grant.lease_id, k, ShaOf(f, k), 1);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_FALSE(outcome->duplicate);
    EXPECT_EQ(outcome->committed, k + 1);
  }
  EXPECT_TRUE(table.drained());
  EXPECT_TRUE(table.run_status().ok());

  auto drained = table.Acquire("w", 2);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(std::get<SweepNoGrant>(*drained).drained);

  EXPECT_EQ(MergeShards(f.dir, "toy").value(), SerialReference(f.spec));
}

TEST(ShardLeaseTableTest, ConcurrentLeasesAndNoWorkRetryHint) {
  Fixture f = MakeFixture("lease_nowork", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant a = GrantOf(table.Acquire("w1", 0));
  SweepGrant b = GrantOf(table.Acquire("w2", 0));
  EXPECT_NE(a.shard, b.shard);

  auto none = table.Acquire("w3", 0);
  ASSERT_TRUE(none.ok());
  const auto& no_grant = std::get<SweepNoGrant>(*none);
  EXPECT_FALSE(no_grant.drained);
  EXPECT_GT(no_grant.retry_ms, 0);
  EXPECT_EQ(table.stats().leased, 2);
}

TEST(ShardLeaseTableTest, ExpiredLeaseIsRegranted) {
  Fixture f = MakeFixture("lease_expiry", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant first = GrantOf(table.Acquire("slow", 0));
  EXPECT_EQ(first.shard, 0);

  // One tick before the deadline the lease still holds.
  EXPECT_EQ(table.ExpireLeases(999), 0);
  // At the deadline the shard is reclaimed and re-granted.
  SweepGrant second = GrantOf(table.Acquire("fresh", 1000));
  EXPECT_EQ(second.shard, 0);
  EXPECT_EQ(second.attempt, 2);
  EXPECT_NE(second.lease_id, first.lease_id);
  EXPECT_EQ(table.stats().expired, 1);
  EXPECT_EQ(table.stats().retries, 1);
}

TEST(ShardLeaseTableTest, HeartbeatKeepsASlowWorkerAlive) {
  Fixture f = MakeFixture("lease_heartbeat", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant grant = GrantOf(table.Acquire("slow", 0));
  for (int64_t now = 800; now <= 4000; now += 800) {
    auto renewed = table.Renew(grant.lease_id, grant.shard, now);
    ASSERT_TRUE(renewed.ok()) << renewed.status();
    EXPECT_EQ(*renewed, 1000);
  }
  // Well past the original deadline, the lease survives...
  EXPECT_EQ(table.ExpireLeases(4500), 0);
  RunShard(f, grant.shard);
  auto outcome =
      table.Complete(grant.lease_id, grant.shard, ShaOf(f, grant.shard), 4600);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->duplicate);
  EXPECT_EQ(table.stats().expired, 0);

  // ...but without renewal it would not have: the renewed deadline
  // still expires eventually.
  SweepGrant other = GrantOf(table.Acquire("slow", 4600));
  EXPECT_EQ(table.ExpireLeases(5600), 1);
  auto renewed = table.Renew(other.lease_id, other.shard, 5700);
  EXPECT_EQ(renewed.status().code(), StatusCode::kNotFound);
}

TEST(ShardLeaseTableTest, DuplicateCompletionIsIdempotent) {
  Fixture f = MakeFixture("lease_duplicate", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant grant = GrantOf(table.Acquire("w", 0));
  RunShard(f, grant.shard);
  const std::string sha = ShaOf(f, grant.shard);
  ASSERT_TRUE(table.Complete(grant.lease_id, grant.shard, sha, 1).ok());

  auto again = table.Complete(grant.lease_id, grant.shard, sha, 2);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->duplicate);
  EXPECT_EQ(table.stats().committed, 1);

  // A duplicate with a contradicting digest is not acknowledged.
  auto wrong =
      table.Complete(grant.lease_id, grant.shard, std::string(64, '0'), 3);
  EXPECT_EQ(wrong.status().code(), StatusCode::kIntegrityViolation);
}

TEST(ShardLeaseTableTest, WorkerDeadAfterCommitIsReclaimedAsCommitted) {
  Fixture f = MakeFixture("lease_dead_commit", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant grant = GrantOf(table.Acquire("doomed", 0));
  RunShard(f, grant.shard);  // committed, but the worker dies unreported

  EXPECT_EQ(table.ExpireLeases(1000), 1);
  EXPECT_EQ(table.stats().committed, 1);
  EXPECT_EQ(table.stats().expired, 1);

  // The zombie's late claim over the dead lease is a duplicate, not an
  // error — records are pure functions of the index.
  auto late =
      table.Complete(grant.lease_id, grant.shard, ShaOf(f, grant.shard), 2000);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_TRUE(late->duplicate);
}

TEST(ShardLeaseTableTest, CompletionClaimWithoutFilesIsRejected) {
  Fixture f = MakeFixture("lease_phantom", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant grant = GrantOf(table.Acquire("liar", 0));
  auto claim =
      table.Complete(grant.lease_id, grant.shard, std::string(64, 'a'), 1);
  EXPECT_EQ(claim.status().code(), StatusCode::kNotFound);

  // The attempt is consumed and the shard goes back to pending.
  SweepGrant retry = GrantOf(table.Acquire("honest", 2));
  EXPECT_EQ(retry.shard, grant.shard);
  EXPECT_EQ(retry.attempt, 2);
}

TEST(ShardLeaseTableTest, CorruptCompletionQuarantinesThenRecovers) {
  Fixture f = MakeFixture("lease_corrupt", 20, 2);
  ShardLeaseTable table = MakeTable(f);

  SweepGrant grant = GrantOf(table.Acquire("w", 0));
  RunShard(f, grant.shard);
  const std::string sha = ShaOf(f, grant.shard);
  // Corrupt the payload after the manifest was written.
  auto payload = ReadFile(ShardPayloadPath(f.dir, grant.shard));
  ASSERT_TRUE(payload.ok());
  std::string corrupted = *payload;
  corrupted.back() ^= 1;
  ASSERT_TRUE(WriteFile(ShardPayloadPath(f.dir, grant.shard), corrupted).ok());

  auto claim = table.Complete(grant.lease_id, grant.shard, sha, 1);
  EXPECT_EQ(claim.status().code(), StatusCode::kIntegrityViolation);
  EXPECT_EQ(table.stats().quarantined, 1);
  EXPECT_TRUE(FileExists(ShardQuarantineDir(f.dir) + "/shard-" +
                         std::to_string(grant.shard) + ".q0.bin"));

  // The shard re-grants, re-runs clean, and the merge is still serial.
  SweepGrant retry = GrantOf(table.Acquire("w", 2));
  EXPECT_EQ(retry.shard, grant.shard);
  RunShard(f, retry.shard);
  ASSERT_TRUE(
      table.Complete(retry.lease_id, retry.shard, ShaOf(f, retry.shard), 3)
          .ok());
  SweepGrant other = GrantOf(table.Acquire("w", 4));
  RunShard(f, other.shard);
  ASSERT_TRUE(
      table.Complete(other.lease_id, other.shard, ShaOf(f, other.shard), 5)
          .ok());
  EXPECT_TRUE(table.drained());
  EXPECT_EQ(MergeShards(f.dir, "toy").value(), SerialReference(f.spec));
}

TEST(ShardLeaseTableTest, AttemptExhaustionFailsTheRun) {
  Fixture f = MakeFixture("lease_exhaust", 20, 2);
  SweepLeaseOptions options = FastLease();
  options.max_attempts = 2;
  ShardLeaseTable table = MakeTable(f, options);

  int64_t now = 0;
  for (int attempt = 1; attempt <= 2; ++attempt) {
    SweepGrant grant = GrantOf(table.Acquire("crashy", now));
    EXPECT_EQ(grant.shard, 0);
    EXPECT_EQ(grant.attempt, attempt);
    now += options.lease_ms;  // worker dies, lease expires
  }
  table.ExpireLeases(now);
  EXPECT_EQ(table.run_status().code(), StatusCode::kInternal);
  EXPECT_NE(table.run_status().message().find("shard 0"), std::string::npos);

  auto refused = table.Acquire("w", now + 1);
  EXPECT_EQ(refused.status().code(), StatusCode::kInternal);
}

TEST(ShardLeaseTableTest, WorkerFailureReportRequeuesWithBackoff) {
  Fixture f = MakeFixture("lease_fail_report", 20, 2);
  SweepLeaseOptions options = FastLease();
  options.backoff_initial_ms = 100;
  options.backoff_max_ms = 400;
  ShardLeaseTable table = MakeTable(f, options);

  SweepGrant grant = GrantOf(table.Acquire("w", 0));
  auto will_retry = table.ReportFailure(grant.lease_id, grant.shard,
                                        "injected failure", 10);
  ASSERT_TRUE(will_retry.ok()) << will_retry.status();
  EXPECT_TRUE(*will_retry);
  EXPECT_EQ(table.stats().failed_reports, 1);

  // Shard 0 is backing off: the next grant is shard 1, and the no-work
  // hint for a third worker is bounded by the remaining backoff.
  SweepGrant other = GrantOf(table.Acquire("w2", 10));
  EXPECT_EQ(other.shard, 1);
  auto none = table.Acquire("w3", 10);
  ASSERT_TRUE(none.ok());
  EXPECT_LE(std::get<SweepNoGrant>(*none).retry_ms, 100);

  // After the backoff the shard re-grants.
  SweepGrant retry = GrantOf(table.Acquire("w3", 110));
  EXPECT_EQ(retry.shard, 0);
  EXPECT_EQ(retry.attempt, 2);

  // Reporting a reclaimed lease is NotFound, not a crash.
  auto stale = table.ReportFailure(grant.lease_id, grant.shard, "late", 200);
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound);
}

TEST(ShardLeaseTableTest, RenewRejectsShardMismatch) {
  Fixture f = MakeFixture("lease_mismatch", 20, 2);
  ShardLeaseTable table = MakeTable(f);
  SweepGrant grant = GrantOf(table.Acquire("w", 0));
  auto renewed = table.Renew(grant.lease_id, grant.shard + 1, 1);
  EXPECT_EQ(renewed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardLeaseTableTest, StartupScanResumesCommittedShards) {
  Fixture f = MakeFixture("lease_resume", 30, 3);
  RunShard(f, 0);
  RunShard(f, 2);

  ShardLeaseTable table = MakeTable(f);
  SweepServiceStats stats = table.stats();
  EXPECT_EQ(stats.resumed, 2);
  EXPECT_EQ(stats.committed, 2);
  EXPECT_EQ(stats.pending, 1);

  SweepGrant grant = GrantOf(table.Acquire("w", 0));
  EXPECT_EQ(grant.shard, 1);
  RunShard(f, 1);
  ASSERT_TRUE(table.Complete(grant.lease_id, 1, ShaOf(f, 1), 1).ok());
  EXPECT_TRUE(table.drained());
  EXPECT_EQ(MergeShards(f.dir, "toy").value(), SerialReference(f.spec));
}

TEST(ShardLeaseTableTest, StartupScanQuarantinesCorruptShards) {
  Fixture f = MakeFixture("lease_scan_corrupt", 30, 3);
  RunShard(f, 1);
  ASSERT_TRUE(
      WriteFile(ShardPayloadPath(f.dir, 1), "truncated garbage").ok());

  ShardLeaseTable table = MakeTable(f);
  EXPECT_EQ(table.stats().quarantined, 1);
  EXPECT_EQ(table.stats().resumed, 0);
  EXPECT_EQ(table.stats().pending, 3);
}

TEST(ShardLeaseTableTest, StartupScanRefusesContradictingDirectory) {
  Fixture f = MakeFixture("lease_scan_contradiction", 30, 3);
  RunShard(f, 0);
  // Stand shard 0's files in for shard 1: parses fine, contradicts the
  // plan — an operator error, not a transient fault.
  ASSERT_TRUE(std::filesystem::copy_file(
      ShardPayloadPath(f.dir, 0), ShardPayloadPath(f.dir, 1)));
  ASSERT_TRUE(std::filesystem::copy_file(
      ShardManifestPath(f.dir, 0), ShardManifestPath(f.dir, 1)));

  auto table = ShardLeaseTable::Create(f.info, f.dir, FastLease());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardLeaseTableTest, ValidatesOptions) {
  Fixture f = MakeFixture("lease_options", 10, 1);
  SweepLeaseOptions bad = FastLease();
  bad.lease_ms = 0;
  EXPECT_EQ(ShardLeaseTable::Create(f.info, f.dir, bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = FastLease();
  bad.max_attempts = 0;
  EXPECT_EQ(ShardLeaseTable::Create(f.info, f.dir, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// The TCP daemon + client (real sockets, loopback, short real leases)
// ---------------------------------------------------------------------

std::unique_ptr<SweepService> StartService(const Fixture& f,
                                           int64_t lease_ms = 60000) {
  SweepServiceOptions options;
  options.lease.lease_ms = lease_ms;
  options.lease.backoff_initial_ms = 0;
  options.lease.retry_ms = 5;
  options.expiry_poll_ms = 5;
  auto service = SweepService::Start(f.info, f.dir, options);
  EXPECT_TRUE(service.ok()) << service.status();
  return std::move(service).value();
}

std::unique_ptr<SweepServiceClient> Connect(const SweepService& service) {
  auto client = SweepServiceClient::Connect("127.0.0.1", service.port());
  EXPECT_TRUE(client.ok()) << client.status();
  return std::move(client).value();
}

// A worker loop over the RPC client: pull, run, report, until drained.
void DrainWorker(const Fixture& f, const SweepService& service,
                 const std::string& name) {
  auto client = SweepServiceClient::Connect("127.0.0.1", service.port());
  ASSERT_TRUE(client.ok()) << client.status();
  ShardRunner runner(f.spec, f.plan);
  for (;;) {
    auto lease = (*client)->RequestLease(name);
    ASSERT_TRUE(lease.ok()) << lease.status();
    if (const auto* none = std::get_if<SweepNoWork>(&*lease)) {
      if (none->drained != 0) return;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(none->retry_ms));
      continue;
    }
    const auto& grant = std::get<SweepLeaseGrant>(*lease);
    const int shard = static_cast<int>(grant.shard);
    ASSERT_TRUE(runner.Run(shard, f.dir, 1).ok());
    auto manifest =
        ParseShardManifest(ReadFile(ShardManifestPath(f.dir, shard)).value());
    ASSERT_TRUE(manifest.ok());
    auto ack =
        (*client)->Complete(grant.lease_id, shard, manifest->payload_sha256);
    ASSERT_TRUE(ack.ok()) << ack.status();
  }
}

TEST(SweepServiceTest, ConcurrentWorkersDrainByteIdentical) {
  Fixture f = MakeFixture("svc_drain", 60, 6);
  auto service = StartService(f);

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back(
        [&f, &service, w] { DrainWorker(f, *service, "w" + std::to_string(w)); });
  }
  for (auto& t : workers) t.join();

  EXPECT_TRUE(service->WaitUntilDone().ok());
  EXPECT_TRUE(service->drained());
  service->Stop();
  EXPECT_EQ(MergeShards(f.dir, "toy").value(), SerialReference(f.spec));
}

TEST(SweepServiceTest, AbandonedLeaseExpiresAndRegrants) {
  Fixture f = MakeFixture("svc_expiry", 20, 2);
  auto service = StartService(f, /*lease_ms=*/100);

  {
    // This client takes a lease and vanishes without completing — the
    // daemon's own expiry poll must reclaim it.
    auto doomed = Connect(*service);
    auto lease = doomed->RequestLease("doomed");
    ASSERT_TRUE(lease.ok()) << lease.status();
    ASSERT_TRUE(std::holds_alternative<SweepLeaseGrant>(*lease));
  }

  DrainWorker(f, *service, "survivor");
  EXPECT_TRUE(service->WaitUntilDone().ok());
  SweepStatusReply snap = service->Snapshot();
  EXPECT_GE(snap.expired, 1u);
  EXPECT_GE(snap.retries, 1u);
  service->Stop();
  EXPECT_EQ(MergeShards(f.dir, "toy").value(), SerialReference(f.spec));
}

TEST(SweepServiceTest, DaemonRestartResumesCommittedShards) {
  Fixture f = MakeFixture("svc_restart", 40, 4);
  {
    auto first = StartService(f);
    auto client = Connect(*first);
    ShardRunner runner(f.spec, f.plan);
    for (int i = 0; i < 2; ++i) {
      auto lease = client->RequestLease("w");
      ASSERT_TRUE(lease.ok());
      const auto& grant = std::get<SweepLeaseGrant>(*lease);
      const int shard = static_cast<int>(grant.shard);
      ASSERT_TRUE(runner.Run(shard, f.dir, 1).ok());
      auto manifest = ParseShardManifest(
          ReadFile(ShardManifestPath(f.dir, shard)).value());
      ASSERT_TRUE(
          client->Complete(grant.lease_id, shard, manifest->payload_sha256)
              .ok());
    }
    first->Stop();  // daemon dies with 2 of 4 shards committed
  }

  auto second = StartService(f);
  SweepStatusReply snap = second->Snapshot();
  EXPECT_EQ(snap.resumed, 2u);
  EXPECT_EQ(snap.committed, 2u);

  DrainWorker(f, *second, "w");
  EXPECT_TRUE(second->WaitUntilDone().ok());
  second->Stop();
  EXPECT_EQ(MergeShards(f.dir, "toy").value(), SerialReference(f.spec));
}

TEST(SweepServiceTest, StatusAndShutdownRpcs) {
  Fixture f = MakeFixture("svc_status", 20, 2);
  auto service = StartService(f);
  auto client = Connect(*service);

  auto status = client->QueryStatus();
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_EQ(status->sweep, "toy");
  EXPECT_EQ(status->shards, 2u);
  EXPECT_EQ(status->committed, 0u);
  EXPECT_EQ(status->drained, 0u);

  auto ack = client->RequestShutdown();
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->shards, 2u);

  Status done = service->WaitUntilDone();
  EXPECT_EQ(done.code(), StatusCode::kFailedPrecondition);
  service->Stop();
}

TEST(SweepServiceTest, HeartbeatRpcRenewsAndExpiredLeaseIsNotFound) {
  Fixture f = MakeFixture("svc_heartbeat", 20, 2);
  auto service = StartService(f, /*lease_ms=*/150);
  auto client = Connect(*service);

  auto lease = client->RequestLease("w");
  ASSERT_TRUE(lease.ok());
  const auto& grant = std::get<SweepLeaseGrant>(*lease);
  EXPECT_EQ(grant.lease_ms, 150u);

  // Renew a few times across what would have been the deadline.
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    auto ack = client->Heartbeat(grant.lease_id, static_cast<int>(grant.shard));
    ASSERT_TRUE(ack.ok()) << ack.status();
    EXPECT_EQ(ack->lease_ms, 150u);
  }
  // Stop renewing: the daemon's expiry poll reclaims the lease.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto stale = client->Heartbeat(grant.lease_id, static_cast<int>(grant.shard));
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound);
  service->Stop();
}

TEST(SweepServiceTest, MalformedFrameGetsTypedErrorAndPoisonedConnection) {
  Fixture f = MakeFixture("svc_malformed", 20, 2);
  auto service = StartService(f);
  auto client = Connect(*service);

  // A reply-type frame from a client is a protocol violation: the
  // daemon answers with a typed error naming the offense, then closes.
  SweepServiceClient* raw = client.get();
  // (Ab)use the RPC surface: send a frame the daemon must reject by
  // encoding it through a second client's socket via the public API is
  // not possible, so exercise the dispatch path with the status RPC
  // after a poisoned exchange instead.
  auto bogus = raw->Complete(1, 0, std::string(63, 'a'));  // short digest
  EXPECT_EQ(bogus.status().code(), StatusCode::kProtocolViolation);

  // The connection was poisoned client-side too (strict codec): a new
  // connection still works.
  auto fresh = Connect(*service);
  EXPECT_TRUE(fresh->QueryStatus().ok());
  service->Stop();
}

}  // namespace
}  // namespace hsis::common

#include "common/perf_record.h"

#include <gtest/gtest.h>

namespace hsis::common {
namespace {

PerfRecord SampleRecord() {
  PerfRecord record;
  record.bench = "figure1_frequency_sweep_kernel";
  record.threads = 4;
  record.cells_per_sec = 46188699.114145041;
  record.wall_ms = 0.433028;
  record.git_describe = "ce4340e-dirty";
  return record;
}

TEST(PerfRecordTest, RoundTripsThroughJson) {
  PerfRecord record = SampleRecord();
  std::string json = PerfRecordToJson(record);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"schema\":\"hsis-bench-v1\""), std::string::npos);

  PerfRecord parsed = ParsePerfRecord(json).value();
  EXPECT_EQ(parsed.bench, record.bench);
  EXPECT_EQ(parsed.threads, record.threads);
  // %.17g serialization round-trips doubles bit-exactly.
  EXPECT_EQ(parsed.cells_per_sec, record.cells_per_sec);
  EXPECT_EQ(parsed.wall_ms, record.wall_ms);
  EXPECT_EQ(parsed.git_describe, record.git_describe);
}

TEST(PerfRecordTest, AcceptsWhitespaceAndAnyKeyOrder) {
  auto parsed = ParsePerfRecord(
      "{ \"wall_ms\": 1.5, \"bench\": \"b\", \"git_describe\": \"g\",\n"
      "  \"threads\": 2, \"cells_per_sec\": 1e6,\n"
      "  \"schema\": \"hsis-bench-v1\" }\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->threads, 2);
  EXPECT_EQ(parsed->cells_per_sec, 1e6);
}

TEST(PerfRecordTest, RejectsMalformedRecords) {
  std::string valid = PerfRecordToJson(SampleRecord());

  // Wrong schema tag.
  std::string wrong_schema = valid;
  wrong_schema.replace(wrong_schema.find("hsis-bench-v1"), 13, "hsis-bench-v9");
  EXPECT_FALSE(ParsePerfRecord(wrong_schema).ok());

  // Missing key.
  EXPECT_FALSE(ParsePerfRecord("{\"schema\":\"hsis-bench-v1\"}").ok());

  // Unknown key.
  std::string extra = valid;
  extra.insert(extra.find('}'), ",\"surprise\":1");
  EXPECT_FALSE(ParsePerfRecord(extra).ok());

  // Duplicate key.
  std::string dup = valid;
  dup.insert(dup.find('}'), ",\"threads\":4");
  EXPECT_FALSE(ParsePerfRecord(dup).ok());

  // Trailing bytes.
  EXPECT_FALSE(ParsePerfRecord(valid + "{}").ok());

  // Not even JSON.
  EXPECT_FALSE(ParsePerfRecord("cells/sec: lots").ok());
  EXPECT_FALSE(ParsePerfRecord("").ok());
}

TEST(PerfRecordTest, ValidatesFieldRanges) {
  EXPECT_TRUE(SampleRecord().Validate().ok());

  PerfRecord record = SampleRecord();
  record.bench = "";
  EXPECT_FALSE(record.Validate().ok());

  record = SampleRecord();
  record.threads = 0;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleRecord();
  record.cells_per_sec = 0;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleRecord();
  record.cells_per_sec = -5;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleRecord();
  record.wall_ms = -1;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleRecord();
  record.git_describe = "";
  EXPECT_FALSE(record.Validate().ok());

  // Non-integer threads value is rejected at parse time.
  std::string json = PerfRecordToJson(SampleRecord());
  std::string frac = json;
  frac.replace(frac.find("\"threads\":4"), 11, "\"threads\":4.5");
  EXPECT_FALSE(ParsePerfRecord(frac).ok());
}

TEST(PerfRecordTest, AlgoFieldRoundTrips) {
  PerfRecord record = SampleRecord();
  record.algo = "window4";
  std::string json = PerfRecordToJson(record);
  EXPECT_NE(json.find("\"algo\":\"window4\""), std::string::npos);
  PerfRecord parsed = ParsePerfRecord(json).value();
  EXPECT_EQ(parsed.algo, "window4");
  EXPECT_EQ(parsed.lane, record.lane);
}

TEST(PerfRecordTest, EmptyAlgoIsOmittedFromSerialization) {
  // Single-algorithm benches leave algo at its empty default; the
  // serialized record must then be byte-identical to a pre-algo one, so
  // frozen artifacts from earlier PRs round-trip unchanged.
  PerfRecord record = SampleRecord();
  std::string json = PerfRecordToJson(record);
  EXPECT_EQ(json.find("algo"), std::string::npos);
  record.algo = "";
  EXPECT_EQ(PerfRecordToJson(record), json);
  // Absent on the wire parses back to the empty default.
  EXPECT_EQ(ParsePerfRecord(json).value().algo, "");
}

TEST(PerfRecordTest, RejectsDuplicateAlgoKey) {
  PerfRecord record = SampleRecord();
  record.algo = "naive";
  std::string dup = PerfRecordToJson(record);
  dup.insert(dup.find('}'), ",\"algo\":\"naive\"");
  EXPECT_FALSE(ParsePerfRecord(dup).ok());
}

TEST(PerfRecordTest, HostileAlgoLabelRoundTrips) {
  PerfRecord record = SampleRecord();
  record.algo = "win\"dow\\4\ttab\nnl";
  std::string json = PerfRecordToJson(record);
  EXPECT_EQ(json.find('\n'), json.size() - 1);
  EXPECT_EQ(ParsePerfRecord(json).value().algo, record.algo);
}

ScheduleRecord SampleScheduleRecord() {
  ScheduleRecord record;
  record.sweep = "figure1";
  record.shards = 4;
  record.resumed = 1;
  record.retries = 2;
  record.quarantined = 1;
  record.timeouts = 1;
  record.attempts = "0,2,1,2";
  record.wall_ms = 118.25;
  return record;
}

TEST(ScheduleRecordTest, RoundTripsThroughJson) {
  ScheduleRecord record = SampleScheduleRecord();
  std::string json = ScheduleRecordToJson(record);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"schema\":\"hsis-schedule-v1\""), std::string::npos);

  ScheduleRecord parsed = ParseScheduleRecord(json).value();
  EXPECT_EQ(parsed.sweep, record.sweep);
  EXPECT_EQ(parsed.shards, record.shards);
  EXPECT_EQ(parsed.resumed, record.resumed);
  EXPECT_EQ(parsed.retries, record.retries);
  EXPECT_EQ(parsed.quarantined, record.quarantined);
  EXPECT_EQ(parsed.timeouts, record.timeouts);
  EXPECT_EQ(parsed.attempts, record.attempts);
  EXPECT_EQ(parsed.wall_ms, record.wall_ms);
}

TEST(ScheduleRecordTest, RejectsMalformedRecords) {
  std::string valid = ScheduleRecordToJson(SampleScheduleRecord());

  std::string wrong_schema = valid;
  wrong_schema.replace(wrong_schema.find("hsis-schedule-v1"), 16,
                       "hsis-schedule-v9");
  EXPECT_FALSE(ParseScheduleRecord(wrong_schema).ok());

  EXPECT_FALSE(ParseScheduleRecord("{\"schema\":\"hsis-schedule-v1\"}").ok());

  std::string extra = valid;
  extra.insert(extra.find('}'), ",\"surprise\":1");
  EXPECT_FALSE(ParseScheduleRecord(extra).ok());

  std::string dup = valid;
  dup.insert(dup.find('}'), ",\"shards\":4");
  EXPECT_FALSE(ParseScheduleRecord(dup).ok());

  EXPECT_FALSE(ParseScheduleRecord(valid + "{}").ok());
  EXPECT_FALSE(ParseScheduleRecord("").ok());
}

TEST(ScheduleRecordTest, ValidatesInternalConsistency) {
  EXPECT_TRUE(SampleScheduleRecord().Validate().ok());

  // Attempts list must have exactly `shards` entries...
  ScheduleRecord record = SampleScheduleRecord();
  record.attempts = "1,1";
  EXPECT_FALSE(record.Validate().ok());

  // ...of non-negative integers...
  record = SampleScheduleRecord();
  record.attempts = "0,2,x,2";
  EXPECT_FALSE(record.Validate().ok());
  record.attempts = "0,2,-1,2";
  EXPECT_FALSE(record.Validate().ok());
  record.attempts = "";
  EXPECT_FALSE(record.Validate().ok());

  // ...whose beyond-first total matches `retries`.
  record = SampleScheduleRecord();
  record.retries = 5;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleScheduleRecord();
  record.sweep = "";
  EXPECT_FALSE(record.Validate().ok());

  record = SampleScheduleRecord();
  record.shards = 0;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleScheduleRecord();
  record.quarantined = -1;
  EXPECT_FALSE(record.Validate().ok());

  record = SampleScheduleRecord();
  record.wall_ms = -0.5;
  EXPECT_FALSE(record.Validate().ok());
}

TEST(PerfRecordTest, HostileLabelsRoundTripThroughJson) {
  // Every control character below 0x20 plus the quote/backslash family:
  // each must serialize to valid JSON (no raw control bytes) and parse
  // back to the identical byte string.
  std::string hostile = "tab\tcr\rnl\nquote\"backslash\\bell\x07";
  for (int c = 1; c < 0x20; ++c) hostile += static_cast<char>(c);

  PerfRecord record = SampleRecord();
  record.bench = hostile;
  std::string json = PerfRecordToJson(record);
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), c == '\n' ? 0u : 0x20u)
        << "raw control byte in serialized record";
  }
  // The one raw newline is the record terminator, not string content.
  EXPECT_EQ(json.find('\n'), json.size() - 1);

  PerfRecord parsed = ParsePerfRecord(json).value();
  EXPECT_EQ(parsed.bench, hostile);

  ScheduleRecord sched;
  sched.sweep = hostile;
  sched.shards = 1;
  sched.attempts = "1";
  std::string sched_json = ScheduleRecordToJson(sched);
  EXPECT_EQ(sched_json.find('\n'), sched_json.size() - 1);
  EXPECT_EQ(ParseScheduleRecord(sched_json).value().sweep, hostile);
}

TEST(PerfRecordTest, RejectsRawControlCharactersInStrings) {
  // The pre-fix serializer emitted raw tabs; the strict parser must
  // reject such records rather than silently accepting invalid JSON.
  std::string bad = PerfRecordToJson(SampleRecord());
  bad.replace(bad.find("figure1"), 7, "fig\tre1");
  EXPECT_FALSE(ParsePerfRecord(bad).ok());
}

TEST(PerfRecordTest, RejectsMalformedUnicodeEscapes) {
  auto with_bench = [](const std::string& bench_literal) {
    return "{\"schema\":\"hsis-bench-v1\",\"bench\":\"" + bench_literal +
           "\",\"threads\":1,\"cells_per_sec\":1,\"wall_ms\":0,"
           "\"git_describe\":\"g\"}\n";
  };
  EXPECT_TRUE(ParsePerfRecord(with_bench("a\\u0007b")).ok());
  EXPECT_FALSE(ParsePerfRecord(with_bench("a\\u00")).ok());      // truncated
  EXPECT_FALSE(ParsePerfRecord(with_bench("a\\u00zz")).ok());    // bad hex
  EXPECT_FALSE(ParsePerfRecord(with_bench("a\\u1234")).ok());    // multi-byte
  EXPECT_FALSE(ParsePerfRecord(with_bench("a\\v")).ok());        // unknown esc
}

}  // namespace
}  // namespace hsis::common

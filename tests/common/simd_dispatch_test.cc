// The runtime SIMD lane dispatcher (common/simd_dispatch.h): lane
// name round-trips, compiled/supported set consistency, the
// HSIS_SIMD_LANE override contract (valid names select, unknown names
// are typed InvalidArgument, unavailable lanes refuse loudly), probe/
// override agreement, and the lane field's round-trip through the
// hsis-bench-v1 perf-record codec that carries it into CI artifacts.

#include "common/simd_dispatch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/perf_record.h"

namespace hsis::common {
namespace {

/// Forces or clears `HSIS_SIMD_LANE` for the lifetime of the object
/// and restores the caller's environment on destruction.
class ScopedLaneEnv {
 public:
  explicit ScopedLaneEnv(const char* value) {
    const char* prev = std::getenv(kSimdLaneEnvVar);
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value == nullptr) {
      ::unsetenv(kSimdLaneEnvVar);
    } else {
      ::setenv(kSimdLaneEnvVar, value, 1);
    }
  }
  ~ScopedLaneEnv() {
    if (had_) {
      ::setenv(kSimdLaneEnvVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(kSimdLaneEnvVar);
    }
  }
  ScopedLaneEnv(const ScopedLaneEnv&) = delete;
  ScopedLaneEnv& operator=(const ScopedLaneEnv&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(SimdDispatchTest, LaneNamesRoundTrip) {
  for (SimdLane lane : {SimdLane::kScalar, SimdLane::kSse2, SimdLane::kAvx2}) {
    Result<SimdLane> parsed = ParseSimdLaneName(SimdLaneName(lane));
    ASSERT_TRUE(parsed.ok()) << SimdLaneName(lane);
    EXPECT_EQ(*parsed, lane);
  }
  EXPECT_STREQ(SimdLaneName(SimdLane::kScalar), "scalar");
  EXPECT_STREQ(SimdLaneName(SimdLane::kSse2), "sse2");
  EXPECT_STREQ(SimdLaneName(SimdLane::kAvx2), "avx2");
}

TEST(SimdDispatchTest, UnknownLaneNamesAreTypedInvalidArgument) {
  for (const char* bad : {"", "bogus", "SSE2", "Avx2", "scalar ", "avx512"}) {
    Result<SimdLane> parsed = ParseSimdLaneName(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "' unexpectedly parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SimdDispatchTest, ScalarAlwaysCompiledAndSupported) {
  EXPECT_TRUE(SimdLaneCompiled(SimdLane::kScalar));
  EXPECT_TRUE(SimdLaneSupported(SimdLane::kScalar));
  ASSERT_FALSE(CompiledSimdLanes().empty());
  EXPECT_EQ(CompiledSimdLanes().front(), SimdLane::kScalar);
  ASSERT_FALSE(SupportedSimdLanes().empty());
  EXPECT_EQ(SupportedSimdLanes().front(), SimdLane::kScalar);
}

TEST(SimdDispatchTest, SupportedLanesAreASubsetOfCompiledLanes) {
  for (SimdLane lane : SupportedSimdLanes()) {
    EXPECT_TRUE(SimdLaneCompiled(lane)) << SimdLaneName(lane);
    EXPECT_TRUE(SimdLaneSupported(lane)) << SimdLaneName(lane);
  }
  // Both sets ascend, so the probe result is the last supported lane.
  EXPECT_EQ(ProbeBestSimdLane(), SupportedSimdLanes().back());
}

TEST(SimdDispatchTest, ActiveLaneFollowsProbeWithoutOverride) {
  ScopedLaneEnv cleared(nullptr);
  Result<SimdLane> active = ActiveSimdLane();
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, ProbeBestSimdLane());
}

TEST(SimdDispatchTest, ActiveLaneHonorsEverySupportedOverride) {
  for (SimdLane lane : SupportedSimdLanes()) {
    ScopedLaneEnv forced(SimdLaneName(lane));
    Result<SimdLane> active = ActiveSimdLane();
    ASSERT_TRUE(active.ok()) << SimdLaneName(lane);
    EXPECT_EQ(*active, lane);
  }
}

TEST(SimdDispatchTest, ActiveLaneRejectsUnknownOverride) {
  ScopedLaneEnv forced("bogus");
  Result<SimdLane> active = ActiveSimdLane();
  ASSERT_FALSE(active.ok());
  EXPECT_EQ(active.status().code(), StatusCode::kInvalidArgument);
  // The error must name the offender and the accepted values, so a
  // misspelled override is a one-glance fix.
  EXPECT_NE(active.status().ToString().find("bogus"), std::string::npos);
  EXPECT_NE(active.status().ToString().find("scalar"), std::string::npos);
}

TEST(SimdDispatchTest, ActiveLaneRejectsUnavailableCompiledLane) {
  // Find a lane in the enum that this build/CPU cannot run (absent on
  // a full AVX2 host — then this test degenerates to a no-op).
  for (SimdLane lane : {SimdLane::kSse2, SimdLane::kAvx2}) {
    if (SimdLaneSupported(lane)) continue;
    ScopedLaneEnv forced(SimdLaneName(lane));
    Result<SimdLane> active = ActiveSimdLane();
    ASSERT_FALSE(active.ok()) << SimdLaneName(lane);
    EXPECT_EQ(active.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SimdDispatchTest, LaneRoundTripsThroughPerfRecords) {
  for (SimdLane lane : {SimdLane::kScalar, SimdLane::kSse2, SimdLane::kAvx2}) {
    PerfRecord record;
    record.bench = "kernel_lane_smoke";
    record.threads = 2;
    record.lane = SimdLaneName(lane);
    record.cells_per_sec = 1.25e8;
    record.wall_ms = 0.5;
    record.git_describe = "test";
    Result<PerfRecord> back = ParsePerfRecord(PerfRecordToJson(record));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->lane, SimdLaneName(lane));
    // The round-tripped name must parse back to the same lane — this
    // is the path CI artifacts travel (bench --json -> perf record ->
    // check_bench_json).
    Result<SimdLane> parsed = ParseSimdLaneName(back->lane);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, lane);
  }
}

TEST(SimdDispatchTest, PreLaneRecordsParseWithScalarDefault) {
  // Records written before the lane field existed must stay parseable
  // and classify as scalar — the only lane that existed back then.
  const char* legacy =
      "{\"schema\":\"hsis-bench-v1\",\"bench\":\"old\",\"threads\":1,"
      "\"cells_per_sec\":1e6,\"wall_ms\":2.5,\"git_describe\":\"abc\"}";
  Result<PerfRecord> record = ParsePerfRecord(legacy);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->lane, "scalar");
}

}  // namespace
}  // namespace hsis::common

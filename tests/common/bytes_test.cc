#include "common/bytes.h"

#include <gtest/gtest.h>

namespace hsis {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  Result<Bytes> back = HexDecode("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  Result<Bytes> r = HexDecode("ABFF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{0xab, 0xff}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, StringConversionRoundTrip) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(BytesToString(b), "hello");
}

TEST(BytesTest, BigEndianRoundTrip32) {
  Bytes b;
  AppendUint32BE(b, 0xdeadbeef);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(ReadUint32BE(b, 0), 0xdeadbeefu);
}

TEST(BytesTest, BigEndianRoundTrip64) {
  Bytes b;
  AppendUint64BE(b, 0x0123456789abcdefULL);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(ReadUint64BE(b, 0), 0x0123456789abcdefULL);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes buf;
  AppendLengthPrefixed(buf, ToBytes("first"));
  AppendLengthPrefixed(buf, ToBytes(""));
  AppendLengthPrefixed(buf, ToBytes("second"));

  size_t offset = 0;
  Result<Bytes> a = ReadLengthPrefixed(buf, &offset);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(BytesToString(*a), "first");

  Result<Bytes> b = ReadLengthPrefixed(buf, &offset);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->empty());

  Result<Bytes> c = ReadLengthPrefixed(buf, &offset);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(BytesToString(*c), "second");
  EXPECT_EQ(offset, buf.size());
}

TEST(BytesTest, LengthPrefixedDetectsTruncation) {
  Bytes buf;
  AppendLengthPrefixed(buf, ToBytes("payload"));
  buf.pop_back();
  size_t offset = 0;
  EXPECT_FALSE(ReadLengthPrefixed(buf, &offset).ok());
}

TEST(BytesTest, LengthPrefixedDetectsMissingHeader) {
  Bytes buf = {0x00, 0x00};
  size_t offset = 0;
  EXPECT_FALSE(ReadLengthPrefixed(buf, &offset).ok());
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(ToBytes("same"), ToBytes("same")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("same"), ToBytes("diff")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("short"), ToBytes("longer")));
  EXPECT_TRUE(ConstantTimeEqual(Bytes{}, Bytes{}));
}

}  // namespace
}  // namespace hsis

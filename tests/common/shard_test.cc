#include "common/shard.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/file.h"
#include "common/parallel.h"
#include "common/random.h"

namespace hsis::common {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  EXPECT_TRUE(CreateDirectories(dir).ok());
  return dir;
}

/// A tiny sweep whose records have irregular lengths, so framing bugs
/// cannot hide behind fixed-size records.
ShardSweepSpec ToySpec(size_t total) {
  ShardSweepSpec spec;
  spec.name = "toy";
  spec.total = total;
  spec.seed = 7;
  spec.record = [](size_t i) -> Result<Bytes> {
    return ToBytes("r" + std::to_string(i) + std::string(i % 5, 'x') + "\n");
  };
  return spec;
}

Bytes SerialReference(const ShardSweepSpec& spec) {
  Bytes all;
  for (size_t i = 0; i < spec.total; ++i) {
    Bytes record = spec.record(i).value();
    all.insert(all.end(), record.begin(), record.end());
  }
  return all;
}

// ---------------------------------------------------------------------
// ShardPlan: randomized partition properties
// ---------------------------------------------------------------------

TEST(ShardPlanTest, RandomizedPartitionProperties) {
  // ~200 random (total, shards) pairs: the shards must be contiguous,
  // pairwise disjoint, covering, and non-empty whenever shards <= total.
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    size_t total = rng.NextUint64() % 10000;
    int shards = 1 + static_cast<int>(rng.NextUint64() % 64);
    Result<ShardPlan> plan = ShardPlan::Create(total, shards);
    ASSERT_TRUE(plan.ok()) << "total=" << total << " shards=" << shards;

    size_t covered = 0;
    size_t cursor = 0;
    for (int k = 0; k < shards; ++k) {
      ShardRange range = plan->Range(k);
      // Contiguity + disjointness: each shard starts where the
      // previous one ended.
      EXPECT_EQ(range.begin, cursor) << "total=" << total << " k=" << k;
      EXPECT_LE(range.begin, range.end);
      cursor = range.end;
      covered += range.size();
      if (shards <= static_cast<int>(total)) {
        EXPECT_GT(range.size(), 0u) << "total=" << total << " k=" << k;
      }
      // Balance: the ChunkBounds partition never skews by more than 1.
      size_t lo = total / static_cast<size_t>(shards);
      EXPECT_GE(range.size(), lo);
      EXPECT_LE(range.size(), lo + 1);
    }
    EXPECT_EQ(cursor, total);
    EXPECT_EQ(covered, total);
  }
}

TEST(ShardPlanTest, SingleShardIsWholeRange) {
  ShardPlan plan = ShardPlan::Create(17, 1).value();
  EXPECT_EQ(plan.Range(0), (ShardRange{0, 17}));
}

TEST(ShardPlanTest, MoreShardsThanIndices) {
  // K > total: the partition still covers, surplus shards are empty.
  ShardPlan plan = ShardPlan::Create(3, 7).value();
  size_t cursor = 0;
  size_t nonempty = 0;
  for (int k = 0; k < 7; ++k) {
    ShardRange range = plan.Range(k);
    EXPECT_EQ(range.begin, cursor);
    cursor = range.end;
    nonempty += range.size() > 0;
  }
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(nonempty, 3u);
}

TEST(ShardPlanTest, EmptyRange) {
  ShardPlan plan = ShardPlan::Create(0, 4).value();
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(plan.Range(k).size(), 0u);
  }
}

TEST(ShardPlanTest, RejectsNonPositiveShardCounts) {
  EXPECT_EQ(ShardPlan::Create(10, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardPlan::Create(10, -2).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Uniform CLI flag parsing
// ---------------------------------------------------------------------

TEST(ParseShardsValueTest, ZeroResolvesToOneShard) {
  EXPECT_EQ(ParseShardsValue("0").value(), 1);
  EXPECT_EQ(ParseShardsValue("1").value(), 1);
  EXPECT_EQ(ParseShardsValue("7").value(), 7);
}

TEST(ParseShardsValueTest, RejectsNegativesAndJunk) {
  for (const char* bad : {"-1", "-7", "", "abc", "3x", "1.5", " 4", "4 "}) {
    Result<int> parsed = ParseShardsValue(bad);
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "value: '" << bad << "'";
  }
}

TEST(ParseThreadsValueTest, ZeroResolvesToHardwareConcurrency) {
  EXPECT_EQ(ParseThreadsValue("0").value(), HardwareConcurrency());
  EXPECT_GE(ParseThreadsValue("0").value(), 1);
  EXPECT_EQ(ParseThreadsValue("3").value(), 3);
}

TEST(ParseThreadsValueTest, RejectsNegativesAndJunk) {
  for (const char* bad : {"-1", "", "many", "2.0", "+2 "}) {
    Result<int> parsed = ParseThreadsValue(bad);
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "value: '" << bad << "'";
  }
}

// ---------------------------------------------------------------------
// Manifest and payload round-trips
// ---------------------------------------------------------------------

TEST(ShardManifestTest, PlanInfoRoundTrip) {
  ShardPlanInfo info;
  info.sweep = "figure1";
  info.total = 201;
  info.shards = 4;
  info.seed = 0xdeadbeef;
  Result<ShardPlanInfo> back = ParseShardPlanInfo(SerializeShardPlanInfo(info));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, info);
}

TEST(ShardManifestTest, ManifestRoundTrip) {
  ShardManifest m;
  m.sweep = "toy";
  m.shard = 2;
  m.shards = 5;
  m.total = 100;
  m.begin = 40;
  m.end = 60;
  m.seed = 7;
  m.records = 20;
  m.payload_sha256 = std::string(64, 'a');
  Result<ShardManifest> back = ParseShardManifest(SerializeShardManifest(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, m);
}

TEST(ShardManifestTest, StrictParsingRejectsMalformedText) {
  ShardManifest m;
  m.sweep = "toy";
  m.shard = 0;
  m.shards = 1;
  m.total = 4;
  m.begin = 0;
  m.end = 4;
  m.records = 4;
  m.payload_sha256 = std::string(64, '0');
  std::string good = SerializeShardManifest(m);
  ASSERT_TRUE(ParseShardManifest(good).ok());

  // Wrong magic line.
  EXPECT_EQ(ParseShardManifest("not-a-manifest\n").status().code(),
            StatusCode::kIntegrityViolation);
  // A dropped field.
  std::string missing = good;
  size_t pos = missing.find("records=");
  missing.erase(pos, missing.find('\n', pos) - pos + 1);
  EXPECT_EQ(ParseShardManifest(missing).status().code(),
            StatusCode::kIntegrityViolation);
  // A duplicated field.
  EXPECT_EQ(ParseShardManifest(good + "shard=0\n").status().code(),
            StatusCode::kIntegrityViolation);
  // A number that is not a number.
  std::string junk = good;
  pos = junk.find("total=4");
  junk.replace(pos, 7, "total=x");
  EXPECT_EQ(ParseShardManifest(junk).status().code(),
            StatusCode::kIntegrityViolation);
  // Internally inconsistent ranges (records != end - begin).
  ShardManifest bad = m;
  bad.records = 3;
  EXPECT_EQ(ParseShardManifest(SerializeShardManifest(bad)).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST(ShardPayloadTest, RoundTripPreservesRecordBoundaries) {
  std::vector<Bytes> records = {ToBytes("alpha"), ToBytes(""),
                                ToBytes(std::string("\x00\xff\n", 3)),
                                ToBytes("tail")};
  Result<std::vector<Bytes>> back =
      ParseShardPayload(SerializeShardPayload(records));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, records);
}

TEST(ShardPayloadTest, RejectsBadFraming) {
  Bytes good = SerializeShardPayload({ToBytes("one"), ToBytes("two")});
  // Bad magic.
  Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(ParseShardPayload(bad_magic).status().code(),
            StatusCode::kIntegrityViolation);
  // Every truncation must fail, never read out of bounds.
  for (size_t len = 0; len < good.size(); ++len) {
    Bytes truncated(good.begin(), good.begin() + len);
    EXPECT_EQ(ParseShardPayload(truncated).status().code(),
              StatusCode::kIntegrityViolation)
        << "truncated to " << len;
  }
  // Trailing garbage.
  Bytes padded = good;
  padded.push_back(0);
  EXPECT_EQ(ParseShardPayload(padded).status().code(),
            StatusCode::kIntegrityViolation);
}

// ---------------------------------------------------------------------
// Runner + merge lifecycle
// ---------------------------------------------------------------------

TEST(ShardRunnerTest, MergeMatchesSerialForSeveralShardCounts) {
  ShardSweepSpec spec = ToySpec(97);
  Bytes serial = SerialReference(spec);
  for (int shards : {1, 2, 3, 7, 97, 120}) {
    std::string dir =
        FreshDir(("shard_merge_" + std::to_string(shards)).c_str());
    ShardPlan plan = ShardPlan::Create(spec.total, shards).value();
    ASSERT_TRUE(WriteShardPlan(spec, plan, dir).ok());
    ShardRunner runner(spec, plan);
    for (int k = 0; k < shards; ++k) {
      ASSERT_TRUE(runner.Run(k, dir).ok()) << "shard " << k;
    }
    Result<Bytes> merged = MergeShards(dir, "toy");
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(*merged, serial) << shards << " shards";
  }
}

TEST(ShardRunnerTest, ThreadCountDoesNotChangeShardBytes) {
  ShardSweepSpec spec = ToySpec(60);
  ShardPlan plan = ShardPlan::Create(spec.total, 2).value();
  std::string serial_dir = FreshDir("shard_threads_1");
  std::string parallel_dir = FreshDir("shard_threads_3");
  ASSERT_TRUE(WriteShardPlan(spec, plan, serial_dir).ok());
  ASSERT_TRUE(WriteShardPlan(spec, plan, parallel_dir).ok());
  ShardRunner runner(spec, plan);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(runner.Run(k, serial_dir, /*threads=*/1).ok());
    ASSERT_TRUE(runner.Run(k, parallel_dir, /*threads=*/3).ok());
  }
  for (int k = 0; k < 2; ++k) {
    EXPECT_EQ(*ReadFile(ShardPayloadPath(serial_dir, k)),
              *ReadFile(ShardPayloadPath(parallel_dir, k)));
    EXPECT_EQ(*ReadFile(ShardManifestPath(serial_dir, k)),
              *ReadFile(ShardManifestPath(parallel_dir, k)));
  }
}

TEST(ShardRunnerTest, RejectsOutOfRangeShard) {
  ShardSweepSpec spec = ToySpec(10);
  ShardPlan plan = ShardPlan::Create(spec.total, 2).value();
  ShardRunner runner(spec, plan);
  std::string dir = FreshDir("shard_oob");
  EXPECT_EQ(runner.Run(-1, dir).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(runner.Run(2, dir).code(), StatusCode::kInvalidArgument);
}

TEST(ShardRunnerTest, RecordErrorPropagatesSmallestIndex) {
  ShardSweepSpec spec = ToySpec(10);
  spec.record = [](size_t i) -> Result<Bytes> {
    if (i >= 4) return Status::Internal("index " + std::to_string(i));
    return ToBytes("ok");
  };
  ShardPlan plan = ShardPlan::Create(spec.total, 1).value();
  std::string dir = FreshDir("shard_record_error");
  ASSERT_TRUE(WriteShardPlan(spec, plan, dir).ok());
  Status status = ShardRunner(spec, plan).Run(0, dir, /*threads=*/4);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("index 4"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------
// Typed merge failures
// ---------------------------------------------------------------------

class ShardMergeErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = ToySpec(30);
    dir_ = FreshDir(
        (std::string("shard_err_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name())
            .c_str());
    ShardPlan plan = ShardPlan::Create(spec_.total, 3).value();
    ASSERT_TRUE(WriteShardPlan(spec_, plan, dir_).ok());
    ShardRunner runner(spec_, plan);
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(runner.Run(k, dir_).ok());
    }
    ASSERT_TRUE(MergeShards(dir_, "toy").ok());
  }

  ShardSweepSpec spec_;
  std::string dir_;
};

TEST_F(ShardMergeErrorTest, MissingPlanIsNotFound) {
  std::string empty = FreshDir("shard_err_no_plan");
  EXPECT_EQ(MergeShards(empty).status().code(), StatusCode::kNotFound);
}

TEST_F(ShardMergeErrorTest, MissingManifestNamesShardToReRun) {
  ASSERT_TRUE(RemoveFileIfExists(ShardManifestPath(dir_, 1)).ok());
  Status status = MergeShards(dir_).status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.ToString().find("shard 1"), std::string::npos)
      << status.ToString();
}

TEST_F(ShardMergeErrorTest, MissingPayloadIsNotFound) {
  ASSERT_TRUE(RemoveFileIfExists(ShardPayloadPath(dir_, 2)).ok());
  Status status = MergeShards(dir_).status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.ToString().find("shard 2"), std::string::npos);
}

TEST_F(ShardMergeErrorTest, ReRunningOnlyTheMissingShardRecovers) {
  Bytes reference = MergeShards(dir_).value();
  ASSERT_TRUE(RemoveFileIfExists(ShardManifestPath(dir_, 1)).ok());
  ASSERT_TRUE(RemoveFileIfExists(ShardPayloadPath(dir_, 1)).ok());
  ASSERT_FALSE(MergeShards(dir_).ok());
  ShardPlan plan = ShardPlan::Create(spec_.total, 3).value();
  ASSERT_TRUE(ShardRunner(spec_, plan).Run(1, dir_).ok());
  EXPECT_EQ(MergeShards(dir_).value(), reference);
}

TEST_F(ShardMergeErrorTest, WrongExpectedSweepIsInvalidArgument) {
  EXPECT_EQ(MergeShards(dir_, "some_other_sweep").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardMergeErrorTest, DuplicatedShardFileIsInvalidArgument) {
  // shard-0's files standing in for shard-1: parses fine, but the
  // manifest says "shard 0" and its range collides with the plan's
  // slot, so the merge must refuse rather than duplicate records.
  ASSERT_TRUE(
      WriteFile(ShardManifestPath(dir_, 1),
                *ReadFile(ShardManifestPath(dir_, 0)))
          .ok());
  ASSERT_TRUE(WriteFile(ShardPayloadPath(dir_, 1),
                        *ReadFile(ShardPayloadPath(dir_, 0)))
                  .ok());
  EXPECT_EQ(MergeShards(dir_).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardMergeErrorTest, TruncatedPayloadIsIntegrityViolation) {
  std::string payload = *ReadFile(ShardPayloadPath(dir_, 0));
  ASSERT_TRUE(
      WriteFile(ShardPayloadPath(dir_, 0),
                payload.substr(0, payload.size() / 2))
          .ok());
  EXPECT_EQ(MergeShards(dir_).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST_F(ShardMergeErrorTest, BitFlippedPayloadIsIntegrityViolation) {
  std::string payload = *ReadFile(ShardPayloadPath(dir_, 2));
  payload[payload.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFile(ShardPayloadPath(dir_, 2), payload).ok());
  EXPECT_EQ(MergeShards(dir_).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST_F(ShardMergeErrorTest, CorruptManifestTextIsIntegrityViolation) {
  ASSERT_TRUE(WriteFile(ShardManifestPath(dir_, 0), "garbage\n").ok());
  EXPECT_EQ(MergeShards(dir_).status().code(),
            StatusCode::kIntegrityViolation);
}

TEST_F(ShardMergeErrorTest, PlanMismatchedManifestIsInvalidArgument) {
  // A manifest from a different partitioning of the same sweep: valid
  // on its own, but it contradicts plan.manifest.
  ShardManifest m =
      ParseShardManifest(*ReadFile(ShardManifestPath(dir_, 0))).value();
  m.shards = 4;
  ASSERT_TRUE(
      WriteFile(ShardManifestPath(dir_, 0), SerializeShardManifest(m)).ok());
  EXPECT_EQ(MergeShards(dir_).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hsis::common

#include "common/u256.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hsis {
namespace {

U256 RandU256(Rng& rng) { return U256::FromBytesBE(rng.RandomBytes(32)); }

TEST(U256Test, DefaultIsZero) {
  U256 z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z.ToDecimal(), "0");
}

TEST(U256Test, FromHexRoundTrip) {
  Result<U256> v = U256::FromHex("deadbeefcafebabe0123456789abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "deadbeefcafebabe0123456789abcdef");
}

TEST(U256Test, FromHexRejectsBadInput) {
  EXPECT_FALSE(U256::FromHex("").ok());
  EXPECT_FALSE(U256::FromHex("xyz").ok());
  EXPECT_FALSE(U256::FromHex(std::string(65, 'f')).ok());
}

TEST(U256Test, FromDecimalRoundTrip) {
  Result<U256> v = U256::FromDecimal("123456789012345678901234567890");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToDecimal(), "123456789012345678901234567890");
}

TEST(U256Test, FromDecimalRejectsOverflow) {
  // 2^256 = 115792089237316195423570985008687907853269984665640564039457584007913129639936
  EXPECT_FALSE(
      U256::FromDecimal(
          "115792089237316195423570985008687907853269984665640564039457584007913129639936")
          .ok());
  Result<U256> max = U256::FromDecimal(
      "115792089237316195423570985008687907853269984665640564039457584007913129639935");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->BitLength(), 256u);
}

TEST(U256Test, BytesBERoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    U256 v = RandU256(rng);
    EXPECT_EQ(U256::FromBytesBE(v.ToBytesBE()), v);
  }
}

TEST(U256Test, ComparisonOrdering) {
  U256 a(5), b(9);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, U256(5));
  U256 high = U256(1) << 200;
  EXPECT_GT(high, b);
}

TEST(U256Test, AdditionCarriesAcrossLimbs) {
  U256 max_limb(~0ULL);
  U256 sum = max_limb + U256(1);
  EXPECT_EQ(sum, U256(0, 1, 0, 0));
}

TEST(U256Test, AdditionWrapsAt256Bits) {
  U256 all_ones = U256(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  uint64_t carry = 0;
  U256 sum = U256::AddWithCarry(all_ones, U256(1), &carry);
  EXPECT_TRUE(sum.IsZero());
  EXPECT_EQ(carry, 1u);
}

TEST(U256Test, SubtractionBorrows) {
  U256 a(0, 1, 0, 0);
  U256 diff = a - U256(1);
  EXPECT_EQ(diff, U256(~0ULL));
  uint64_t borrow = 0;
  U256::SubWithBorrow(U256(0), U256(1), &borrow);
  EXPECT_EQ(borrow, 1u);
}

TEST(U256Test, AddSubRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandU256(rng), b = RandU256(rng);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(U256Test, MulMatchesSmallIntegers) {
  EXPECT_EQ(U256(7) * U256(6), U256(42));
  U512 wide = U256::MulFull(U256(~0ULL), U256(~0ULL));
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(wide.limb[0], 1u);
  EXPECT_EQ(wide.limb[1], ~0ULL - 1);
  EXPECT_EQ(wide.limb[2], 0u);
}

TEST(U256Test, MulIsCommutative) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandU256(rng), b = RandU256(rng);
    EXPECT_EQ(U256::MulFull(a, b), U256::MulFull(b, a));
  }
}

TEST(U256Test, MulDistributesOverAdd) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    // Use 128-bit operands so a*(b+c) never overflows 512 bits and
    // b+c never wraps 256 bits.
    U256 a = RandU256(rng) >> 128;
    U256 b = RandU256(rng) >> 129;
    U256 c = RandU256(rng) >> 129;
    U512 lhs = U256::MulFull(a, b + c);
    U512 rhs = U256::MulFull(a, b) + U256::MulFull(a, c);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(U256Test, ShiftsMatchMultiplication) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandU256(rng) >> 65;  // leave headroom
    EXPECT_EQ(a << 1, a + a);
    EXPECT_EQ((a << 64).limb[1], a.limb[0]);
    EXPECT_EQ((a << 3) >> 3, a);
  }
}

TEST(U256Test, ShiftBoundaries) {
  U256 a(1);
  EXPECT_TRUE((a << 256).IsZero());
  EXPECT_TRUE((a >> 1).IsZero());
  EXPECT_EQ((a << 255) >> 255, a);
}

TEST(U256Test, BitwiseOps) {
  U256 a(0b1100), b(0b1010);
  EXPECT_EQ(a & b, U256(0b1000));
  EXPECT_EQ(a | b, U256(0b1110));
  EXPECT_EQ(a ^ b, U256(0b0110));
}

TEST(U256Test, BitAccess) {
  U256 v = U256(1) << 130;
  EXPECT_TRUE(v.Bit(130));
  EXPECT_FALSE(v.Bit(129));
  EXPECT_EQ(v.BitLength(), 131u);
}

TEST(U256Test, DivModSmall) {
  U256DivMod qr = DivMod(U256(100), U256(7));
  EXPECT_EQ(qr.quotient, U256(14));
  EXPECT_EQ(qr.remainder, U256(2));
}

TEST(U256Test, DivModReconstruction) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandU256(rng);
    U256 b = RandU256(rng) >> static_cast<size_t>(rng.UniformUint64(250));
    if (b.IsZero()) b = U256(1);
    U256DivMod qr = DivMod(a, b);
    EXPECT_LT(qr.remainder, b);
    // a == q*b + r (check in 512 bits)
    U512 recon = U256::MulFull(qr.quotient, b) + U512::FromU256(qr.remainder);
    EXPECT_EQ(recon, U512::FromU256(a));
  }
}

TEST(U512Test, DivModReconstruction) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    U256 x = RandU256(rng), y = RandU256(rng);
    U512 a = U256::MulFull(x, y);
    U256 b = RandU256(rng) >> static_cast<size_t>(rng.UniformUint64(200));
    if (b.IsZero()) b = U256(3);
    U512DivMod qr = DivMod(a, b);
    EXPECT_LT(qr.remainder, b);
    // Verify a == q*b + r using shift-add multiplication of q (512-bit) by b.
    U512 prod;
    for (size_t bit = b.BitLength(); bit-- > 0;) {
      prod = prod << 1;
      if (b.Bit(bit)) prod = prod + qr.quotient;
    }
    EXPECT_EQ(prod + U512::FromU256(qr.remainder), a);
  }
}

TEST(U512Test, ModMatchesDivMod) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    U512 a = U256::MulFull(RandU256(rng), RandU256(rng));
    U256 m = RandU256(rng);
    if (m.IsZero()) m = U256(5);
    EXPECT_EQ(a.Mod(m), DivMod(a, m).remainder);
  }
}

TEST(U512Test, ShiftRoundTrip) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    U512 a = U256::MulFull(RandU256(rng), RandU256(rng));
    EXPECT_EQ((a >> 100) << 100, (a >> 100) << 100);
    EXPECT_EQ((a << 7) >> 7, (a << 7) >> 7);
    U512 b = a >> 256;
    EXPECT_EQ(b.Low(), a.High());
  }
}

TEST(U512Test, CompareAndBitLength) {
  U512 small(5);
  U512 big = U512(1) << 400;
  EXPECT_LT(small, big);
  EXPECT_EQ(big.BitLength(), 401u);
  EXPECT_TRUE(U512().IsZero());
}

}  // namespace
}  // namespace hsis

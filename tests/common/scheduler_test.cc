#include "common/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/file.h"
#include "common/random.h"
#include "common/shard.h"

namespace hsis::common {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);  // committed shards would resume
  EXPECT_TRUE(CreateDirectories(dir).ok());
  return dir;
}

/// Same irregular-record toy sweep as shard_test.cc, so the scheduler
/// suites exercise the exact codec the merge validates.
ShardSweepSpec ToySpec(size_t total) {
  ShardSweepSpec spec;
  spec.name = "toy";
  spec.total = total;
  spec.seed = 7;
  spec.record = [](size_t i) -> Result<Bytes> {
    return ToBytes("r" + std::to_string(i) + std::string(i % 5, 'x') + "\n");
  };
  return spec;
}

Bytes SerialReference(const ShardSweepSpec& spec) {
  Bytes all;
  for (size_t i = 0; i < spec.total; ++i) {
    Bytes record = spec.record(i).value();
    all.insert(all.end(), record.begin(), record.end());
  }
  return all;
}

struct Fixture {
  ShardSweepSpec spec;
  ShardPlan plan;
  ShardPlanInfo info;
  std::string dir;
};

Fixture MakeFixture(const char* name, size_t total, int shards) {
  Fixture f{ToySpec(total), ShardPlan::Create(total, shards).value(), {},
            FreshDir(name)};
  EXPECT_TRUE(WriteShardPlan(f.spec, f.plan, f.dir).ok());
  f.info = ReadShardPlan(f.dir).value();
  return f;
}

/// An in-process job that computes the shard correctly but can be
/// programmed, per shard, to fail (without committing) on the first N
/// attempts — the deterministic fault-injection seam.
class FlakyJob {
 public:
  FlakyJob(ShardSweepSpec spec, ShardPlan plan, std::string dir)
      : spec_(std::move(spec)), plan_(plan), dir_(std::move(dir)) {}

  /// The next `failures` attempts of `shard` exit with an error before
  /// writing anything.
  void FailNext(int shard, int failures) { failures_[shard] = failures; }

  InProcessShardJob AsJob() {
    return [this](int shard, const std::atomic<bool>&) -> Status {
      if (auto it = failures_.find(shard);
          it != failures_.end() && it->second > 0) {
        --it->second;
        return Status::Internal("injected failure for shard " +
                                std::to_string(shard));
      }
      return ShardRunner(spec_, plan_).Run(shard, dir_, 1);
    };
  }

 private:
  ShardSweepSpec spec_;
  ShardPlan plan_;
  std::string dir_;
  std::map<int, int> failures_;  // shard -> remaining injected failures
};

ShardScheduleOptions FastOptions() {
  ShardScheduleOptions options;
  options.workers = 2;
  options.max_attempts = 3;
  options.backoff_initial_ms = 0;  // tests need no pacing
  options.poll_interval_ms = 1;
  return options;
}

Bytes MergedBytes(const Fixture& f) {
  return MergeShards(f.dir, f.spec.name).value();
}

// ---------------------------------------------------------------------
// Happy path, options validation
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, CompletesAllShardsAndMatchesSerial) {
  Fixture f = MakeFixture("sched_happy", 103, 5);
  ShardScheduler scheduler(
      f.info, f.dir, MakeRunnerShardExecutor(f.spec, f.plan, f.dir),
      FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->shards, 5);
  EXPECT_EQ(summary->resumed, 0);
  EXPECT_EQ(summary->retries, 0);
  EXPECT_EQ(summary->attempts, (std::vector<int>{1, 1, 1, 1, 1}));
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

TEST(ShardSchedulerTest, RejectsBadOptions) {
  Fixture f = MakeFixture("sched_badopt", 10, 2);
  for (auto mutate : std::vector<void (*)(ShardScheduleOptions*)>{
           [](ShardScheduleOptions* o) { o->workers = 0; },
           [](ShardScheduleOptions* o) { o->max_attempts = 0; },
           [](ShardScheduleOptions* o) { o->shard_timeout_ms = -1; },
           [](ShardScheduleOptions* o) { o->backoff_initial_ms = -5; }}) {
    ShardScheduleOptions options = FastOptions();
    mutate(&options);
    ShardScheduler scheduler(
        f.info, f.dir, MakeRunnerShardExecutor(f.spec, f.plan, f.dir),
        options);
    Result<ShardScheduleSummary> summary = scheduler.Run();
    ASSERT_FALSE(summary.ok());
    EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------
// Retry on transient failure
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, RetriesWorkerThatExitsWithoutCommitting) {
  Fixture f = MakeFixture("sched_retry", 41, 4);
  FlakyJob job(f.spec, f.plan, f.dir);
  job.FailNext(1, 1);  // one transient failure on shard 1
  job.FailNext(3, 2);  // two on shard 3 — still below max_attempts=3
  ShardScheduler scheduler(f.info, f.dir,
                           MakeInProcessShardExecutor(job.AsJob()),
                           FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->retries, 3);
  EXPECT_EQ(summary->attempts, (std::vector<int>{1, 2, 1, 3}));
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

TEST(ShardSchedulerTest, ExhaustedAttemptsNameTheShard) {
  Fixture f = MakeFixture("sched_exhaust", 20, 2);
  FlakyJob job(f.spec, f.plan, f.dir);
  job.FailNext(1, 99);  // shard 1 never succeeds
  ShardScheduler scheduler(f.info, f.dir,
                           MakeInProcessShardExecutor(job.AsJob()),
                           FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInternal);
  EXPECT_NE(summary.status().message().find("shard 1"), std::string::npos)
      << summary.status().ToString();
  EXPECT_NE(summary.status().message().find("3 attempts"), std::string::npos)
      << summary.status().ToString();
}

// ---------------------------------------------------------------------
// Resume: committed shards are never recomputed
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, ResumeSkipsCommittedShards) {
  Fixture f = MakeFixture("sched_resume", 57, 4);
  // A previous (say, killed) run committed shards 0 and 2.
  ShardRunner runner(f.spec, f.plan);
  ASSERT_TRUE(runner.Run(0, f.dir, 1).ok());
  ASSERT_TRUE(runner.Run(2, f.dir, 1).ok());

  // The resumed run must not recompute them: a job that aborts the
  // test if asked for shard 0 or 2 proves it.
  InProcessShardJob job = [&](int shard, const std::atomic<bool>&) -> Status {
    EXPECT_TRUE(shard == 1 || shard == 3)
        << "scheduler recomputed committed shard " << shard;
    return ShardRunner(f.spec, f.plan).Run(shard, f.dir, 1);
  };
  ShardScheduler scheduler(f.info, f.dir, MakeInProcessShardExecutor(job),
                           FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->resumed, 2);
  EXPECT_EQ(summary->attempts, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

TEST(ShardSchedulerTest, FullyCommittedDirectoryResumesToNoOp) {
  Fixture f = MakeFixture("sched_noop", 30, 3);
  ShardRunner runner(f.spec, f.plan);
  for (int k = 0; k < 3; ++k) ASSERT_TRUE(runner.Run(k, f.dir, 1).ok());
  InProcessShardJob job = [](int shard, const std::atomic<bool>&) -> Status {
    ADD_FAILURE() << "no shard should run, got " << shard;
    return Status::Internal("unreachable");
  };
  ShardScheduler scheduler(f.info, f.dir, MakeInProcessShardExecutor(job),
                           FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->resumed, 3);
  EXPECT_EQ(summary->retries, 0);
}

// ---------------------------------------------------------------------
// Quarantine: corrupt files are preserved as evidence, then re-run
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, QuarantinesCorruptPayloadThenRecovers) {
  Fixture f = MakeFixture("sched_qpayload", 44, 4);
  ShardRunner runner(f.spec, f.plan);
  for (int k = 0; k < 4; ++k) ASSERT_TRUE(runner.Run(k, f.dir, 1).ok());
  // Flip a byte in shard 2's committed payload: SHA-256 mismatch.
  std::string payload = ReadFile(ShardPayloadPath(f.dir, 2)).value();
  payload[payload.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFile(ShardPayloadPath(f.dir, 2), payload).ok());

  ShardScheduler scheduler(
      f.info, f.dir, MakeRunnerShardExecutor(f.spec, f.plan, f.dir),
      FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->resumed, 3);
  EXPECT_EQ(summary->quarantined, 2);  // payload + manifest moved
  EXPECT_EQ(summary->attempts, (std::vector<int>{0, 0, 1, 0}));
  // The corrupt evidence is preserved, not deleted.
  EXPECT_TRUE(FileExists(ShardQuarantineDir(f.dir) + "/shard-2.q0.bin"));
  EXPECT_TRUE(FileExists(ShardQuarantineDir(f.dir) + "/shard-2.q0.manifest"));
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

TEST(ShardSchedulerTest, QuarantinesCorruptManifestThenRecovers) {
  Fixture f = MakeFixture("sched_qmanifest", 31, 3);
  ShardRunner runner(f.spec, f.plan);
  for (int k = 0; k < 3; ++k) ASSERT_TRUE(runner.Run(k, f.dir, 1).ok());
  ASSERT_TRUE(WriteFile(ShardManifestPath(f.dir, 1), "not a manifest").ok());

  ShardScheduler scheduler(
      f.info, f.dir, MakeRunnerShardExecutor(f.spec, f.plan, f.dir),
      FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GE(summary->quarantined, 1);
  EXPECT_EQ(summary->attempts, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

TEST(ShardSchedulerTest, CrashAfterCommitCountsAsDone) {
  // Files are the truth: a job that commits its shard and THEN reports
  // failure (crash between fsync and exit) must not trigger a re-run.
  Fixture f = MakeFixture("sched_crashcommit", 26, 2);
  std::atomic<int> runs{0};
  InProcessShardJob job = [&](int shard, const std::atomic<bool>&) -> Status {
    ++runs;
    Status s = ShardRunner(f.spec, f.plan).Run(shard, f.dir, 1);
    EXPECT_TRUE(s.ok());
    return Status::Internal("crashed after committing");
  };
  ShardScheduler scheduler(f.info, f.dir, MakeInProcessShardExecutor(job),
                           FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(runs.load(), 2);  // one attempt per shard, no retries
  EXPECT_EQ(summary->retries, 0);
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

// ---------------------------------------------------------------------
// Fail fast on operator error
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, ForeignPlanFilesFailFastWithoutRetry) {
  // The directory holds shards of a DIFFERENT plan (other shard count):
  // InvalidArgument, and no attempt may be dispatched.
  Fixture f = MakeFixture("sched_foreign", 40, 4);
  ShardSweepSpec other = ToySpec(40);
  ShardPlan other_plan = ShardPlan::Create(40, 5).value();
  ASSERT_TRUE(ShardRunner(other, other_plan).Run(0, f.dir, 1).ok());

  InProcessShardJob job = [](int, const std::atomic<bool>&) -> Status {
    ADD_FAILURE() << "dispatched despite operator error";
    return Status::Internal("unreachable");
  };
  ShardScheduler scheduler(f.info, f.dir, MakeInProcessShardExecutor(job),
                           FastOptions());
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Timeouts: hung workers are killed and retried
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, HungWorkerIsKilledAndRetried) {
  Fixture f = MakeFixture("sched_hang", 22, 2);
  std::atomic<int> hangs{1};  // first attempt of shard 1 hangs
  InProcessShardJob job = [&](int shard, const std::atomic<bool>& cancelled)
      -> Status {
    if (shard == 1 && hangs.fetch_sub(1) > 0) {
      while (!cancelled.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::Internal("cancelled while hung");
    }
    return ShardRunner(f.spec, f.plan).Run(shard, f.dir, 1);
  };
  ShardScheduleOptions options = FastOptions();
  options.shard_timeout_ms = 200;
  ShardScheduler scheduler(f.info, f.dir, MakeInProcessShardExecutor(job),
                           options);
  Result<ShardScheduleSummary> summary = scheduler.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->timeouts, 1);
  EXPECT_EQ(summary->retries, 1);
  EXPECT_EQ(summary->attempts, (std::vector<int>{1, 2}));
  EXPECT_EQ(MergedBytes(f), SerialReference(f.spec));
}

// ---------------------------------------------------------------------
// Property test: any failure sequence below the retry cap still ends
// in a byte-identical merge
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, RandomFailureSequencesBelowCapAlwaysConverge) {
  Rng rng(20260806);
  for (int trial = 0; trial < 15; ++trial) {
    size_t total = 10 + rng.NextUint64() % 80;
    int shards = 1 + static_cast<int>(rng.NextUint64() % 6);
    Fixture f = MakeFixture(
        ("sched_prop_" + std::to_string(trial)).c_str(), total, shards);
    FlakyJob job(f.spec, f.plan, f.dir);
    int injected = 0;
    for (int k = 0; k < shards; ++k) {
      // 0..max_attempts-1 failures per shard: always below the cap.
      int failures = static_cast<int>(rng.NextUint64() % 3);
      job.FailNext(k, failures);
      injected += failures;
    }
    ShardScheduleOptions options = FastOptions();
    options.workers = 1 + static_cast<int>(rng.NextUint64() % 4);
    ShardScheduler scheduler(f.info, f.dir,
                             MakeInProcessShardExecutor(job.AsJob()),
                             options);
    Result<ShardScheduleSummary> summary = scheduler.Run();
    ASSERT_TRUE(summary.ok())
        << "trial " << trial << ": " << summary.status().ToString();
    EXPECT_EQ(summary->retries, injected) << "trial " << trial;
    EXPECT_EQ(MergedBytes(f), SerialReference(f.spec)) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Process executor: real child processes
// ---------------------------------------------------------------------

TEST(ProcessShardExecutorTest, ReportsExitStatusOfRealProcesses) {
  auto ok_exec = MakeProcessShardExecutor("/bin/true", "unused");
  Result<int> ok_job = ok_exec->Start(0);
  ASSERT_TRUE(ok_job.ok());
  Status status = Status::Internal("unset");
  while (!ok_exec->Poll(*ok_job, &status)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(status.ok()) << status.ToString();

  auto fail_exec = MakeProcessShardExecutor("/bin/false", "unused");
  Result<int> fail_job = fail_exec->Start(0);
  ASSERT_TRUE(fail_job.ok());
  while (!fail_exec->Poll(*fail_job, &status)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exited with code 1"), std::string::npos)
      << status.ToString();
}

TEST(ProcessShardExecutorTest, KillTerminatesARealProcess) {
  // The executor passes --shard/--out/--threads flags; a wrapper script
  // that ignores them stands in for a hung worker.
  std::string script = FreshDir("sched_killer") + "/hang.sh";
  ASSERT_TRUE(WriteFile(script, "#!/bin/sh\nsleep 30\n").ok());
  std::filesystem::permissions(script, std::filesystem::perms::owner_all);
  auto exec = MakeProcessShardExecutor(script, "unused");
  Result<int> job = exec->Start(0);
  ASSERT_TRUE(job.ok());
  exec->Kill(*job);
  Status status;
  while (!exec->Poll(*job, &status)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("signal"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------
// Summary serialization round-trip
// ---------------------------------------------------------------------

TEST(ShardSchedulerTest, SummaryConvertsToValidScheduleRecord) {
  ShardScheduleSummary summary;
  summary.sweep = "toy";
  summary.shards = 4;
  summary.resumed = 1;
  summary.retries = 2;
  summary.quarantined = 2;
  summary.timeouts = 1;
  summary.attempts = {0, 1, 2, 2};
  summary.wall_ms = 12.5;
  ScheduleRecord record = ToScheduleRecord(summary);
  ASSERT_TRUE(record.Validate().ok()) << record.Validate().ToString();
  EXPECT_EQ(record.attempts, "0,1,2,2");
  Result<ScheduleRecord> parsed =
      ParseScheduleRecord(ScheduleRecordToJson(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->retries, 2);
  EXPECT_EQ(parsed->attempts, record.attempts);
}

TEST(BackoffDelayMsTest, DoublesThenSaturatesAtCap) {
  EXPECT_EQ(BackoffDelayMs(100, 5000, 1), 100);
  EXPECT_EQ(BackoffDelayMs(100, 5000, 2), 200);
  EXPECT_EQ(BackoffDelayMs(100, 5000, 3), 400);
  EXPECT_EQ(BackoffDelayMs(100, 5000, 7), 5000);   // 6400 capped
  EXPECT_EQ(BackoffDelayMs(100, 5000, 100), 5000);
  EXPECT_EQ(BackoffDelayMs(0, 5000, 50), 0);       // disabled
}

TEST(BackoffDelayMsTest, SaturatesInsteadOfOverflowingNearInt64Max) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  // With the cap at INT64_MAX, repeated doubling used to run 100 * 2^k
  // straight past the signed range (UB, and in practice a negative
  // delay). It must saturate at the cap and stay there.
  EXPECT_EQ(BackoffDelayMs(100, kMax, 70), kMax);
  EXPECT_EQ(BackoffDelayMs(100, kMax, 1000), kMax);
  EXPECT_EQ(BackoffDelayMs(kMax / 2 + 1, kMax, 2), kMax);
  EXPECT_EQ(BackoffDelayMs(1, kMax, 63), int64_t{1} << 62);
  // Every attempt count must produce a non-negative delay <= the cap.
  for (int attempts = 1; attempts <= 200; ++attempts) {
    int64_t delay = BackoffDelayMs(100, kMax, attempts);
    EXPECT_GE(delay, 0) << "attempts " << attempts;
    EXPECT_LE(delay, kMax) << "attempts " << attempts;
  }
}

}  // namespace
}  // namespace hsis::common

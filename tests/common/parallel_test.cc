#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.h"

namespace hsis::common {
namespace {

TEST(ResolveThreadCountTest, KnobSemantics) {
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_EQ(ResolveThreadCount(0), HardwareConcurrency());
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ResolveThreadCount(-3), 1);
}

TEST(ChunkBoundsTest, PartitionIsExact) {
  for (size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (int k : {1, 2, 3, 7, 16}) {
      size_t covered = 0;
      size_t prev_hi = 0;
      for (int w = 0; w < k; ++w) {
        auto [lo, hi] = ThreadPool::ChunkBounds(n, k, w);
        EXPECT_EQ(lo, prev_hi);
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        prev_hi = hi;
      }
      EXPECT_EQ(prev_hi, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    const size_t n = 777;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(threads, n, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, EmptyAndSingleton) {
  int calls = 0;
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SmallRangeFallsBackToSerial) {
  // A range smaller than the thread count must execute inline on the
  // calling thread instead of spawning workers for empty chunks.
  const std::thread::id caller = std::this_thread::get_id();
  for (int threads : {4, 16}) {
    const size_t n = static_cast<size_t>(threads) - 1;
    size_t calls = 0;  // non-atomic on purpose: serial execution only
    ParallelFor(threads, n, [&](size_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      ++calls;
    });
    EXPECT_EQ(calls, n);
  }
}

TEST(ParallelForBatchedTest, EveryIndexRunsExactlyOnce) {
  const size_t n = 1003;  // prime: last batch is ragged
  for (int threads : {1, 2, 4, 0}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{5000}}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(threads, n, batch, [&](size_t i) { hits[i]++; });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " batch=" << batch;
      }
    }
  }
}

TEST(ParallelForBatchedTest, AscendingWithinEachBatch) {
  const size_t n = 100, batch = 9;
  std::vector<size_t> order;
  std::mutex mu;
  ParallelFor(2, n, batch, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), n);
  // Indices inside one batch are contiguous ascending runs.
  for (size_t k = 0; k + 1 < order.size(); ++k) {
    if (order[k] % batch != batch - 1 && order[k] != n - 1) {
      EXPECT_EQ(order[k + 1], order[k] + 1) << k;
    }
  }
}

TEST(ParallelForBatchedTest, ZeroBatchSizeDegeneratesToUnbatched) {
  size_t calls = 0;
  ParallelFor(1, 10, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 10u);
}

TEST(ParallelForWithStatusBatchedTest, ReportsSmallestIndexError) {
  for (int threads : {1, 2, 0}) {
    for (size_t batch : {size_t{1}, size_t{16}}) {
      Status s = ParallelForWithStatus(
          threads, 200, batch, [&](size_t i) -> Status {
            if (i % 11 == 5) {
              return Status::InvalidArgument("bad index " + std::to_string(i));
            }
            return Status::OK();
          });
      ASSERT_FALSE(s.ok());
      EXPECT_NE(s.message().find("bad index 5"), std::string::npos)
          << s.ToString();
    }
  }
}

TEST(ParallelMapTest, OrderPreservingSlots) {
  auto square = [](size_t i) { return static_cast<int>(i * i); };
  std::vector<int> serial = ParallelMap(1, 100, square);
  for (int threads : {2, 3, 0}) {
    EXPECT_EQ(ParallelMap(threads, 100, square), serial);
  }
}

TEST(ParallelForWithStatusTest, ReportsSmallestIndexError) {
  for (int threads : {1, 2, 8, 0}) {
    Status s = ParallelForWithStatus(threads, 100, [&](size_t i) -> Status {
      if (i % 7 == 3) {
        return Status::InvalidArgument("bad index " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    // Smallest failing index is 3 regardless of scheduling.
    EXPECT_NE(s.message().find("bad index 3"), std::string::npos)
        << s.ToString();
  }
}

TEST(ParallelForWithStatusTest, OkWhenAllSucceed) {
  EXPECT_TRUE(ParallelForWithStatus(0, 64, [](size_t) {
                return Status::OK();
              }).ok());
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  for (int job = 0; job < 3; ++job) {
    std::vector<int> out(50, -1);
    pool.Run(out.size(), [&](size_t i) { out[i] = static_cast<int>(i) + job; });
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) + job);
    }
  }
}

TEST(RngForIndexTest, PureFunctionOfSeedAndIndex) {
  Rng a = Rng::ForIndex(42, 7);
  Rng b = Rng::ForIndex(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngForIndexTest, AdjacentIndicesDecorrelated) {
  Rng a = Rng::ForIndex(42, 0);
  Rng b = Rng::ForIndex(42, 1);
  Rng c = Rng::ForIndex(43, 0);
  int equal_ab = 0, equal_ac = 0;
  for (int i = 0; i < 64; ++i) {
    uint64_t x = a.NextUint64();
    equal_ab += x == b.NextUint64();
    equal_ac += x == c.NextUint64();
  }
  EXPECT_EQ(equal_ab, 0);
  EXPECT_EQ(equal_ac, 0);
}

TEST(RngForIndexTest, StreamsIndependentOfConsumptionOrder) {
  // Drawing from stream 5 must not perturb stream 6 — unlike a shared
  // generator, which is the whole point for parallel loops.
  Rng five = Rng::ForIndex(9, 5);
  for (int i = 0; i < 100; ++i) five.NextUint64();
  Rng six_after = Rng::ForIndex(9, 6);
  Rng six_fresh = Rng::ForIndex(9, 6);
  EXPECT_EQ(six_after.NextUint64(), six_fresh.NextUint64());
}

}  // namespace
}  // namespace hsis::common

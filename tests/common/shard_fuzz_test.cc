// Fuzz-style robustness of the shard merge: a corpus of mutated shard
// directories — truncated payloads, bit flips, mangled manifest text,
// duplicated files, mutated plans — must always yield a clean typed
// Status or a merge byte-identical to the pristine one. A crash or a
// silent wrong merge is the only failure mode these tests forbid.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/file.h"
#include "common/random.h"
#include "common/shard.h"

namespace hsis::common {
namespace {

constexpr int kShards = 3;

ShardSweepSpec FuzzSpec() {
  ShardSweepSpec spec;
  spec.name = "fuzz";
  spec.total = 41;
  spec.seed = 99;
  spec.record = [](size_t i) -> Result<Bytes> {
    return ToBytes("row" + std::to_string(i * 31 % 97) +
                   std::string(i % 7, '#') + "\n");
  };
  return spec;
}

/// Builds a pristine 3-shard run of the fuzz sweep in a fresh dir.
std::string BuildPristine(const std::string& label) {
  std::string dir = std::string(::testing::TempDir()) + "/shard_fuzz_" + label;
  EXPECT_TRUE(CreateDirectories(dir).ok());
  ShardSweepSpec spec = FuzzSpec();
  ShardPlan plan = ShardPlan::Create(spec.total, kShards).value();
  EXPECT_TRUE(WriteShardPlan(spec, plan, dir).ok());
  ShardRunner runner(spec, plan);
  for (int k = 0; k < kShards; ++k) {
    EXPECT_TRUE(runner.Run(k, dir).ok());
  }
  return dir;
}

/// The invariant every mutation must preserve: merge either fails with
/// a typed non-OK Status (and a non-empty message) or produces bytes
/// equal to the pristine merge. Nothing may crash.
void ExpectCleanErrorOrIdentical(const std::string& dir,
                                 const Bytes& pristine,
                                 const std::string& what) {
  Result<Bytes> merged = MergeShards(dir, "fuzz");
  if (merged.ok()) {
    EXPECT_EQ(*merged, pristine) << "silent wrong merge after: " << what;
  } else {
    EXPECT_NE(merged.status().code(), StatusCode::kOk);
    EXPECT_FALSE(merged.status().ToString().empty()) << what;
  }
}

TEST(ShardFuzzTest, PayloadTruncations) {
  Bytes pristine = MergeShards(BuildPristine("ref_trunc"), "fuzz").value();
  std::string dir = BuildPristine("trunc");
  std::string path = ShardPayloadPath(dir, 1);
  std::string original = *ReadFile(path);
  // Every prefix length across the file, subsampled for speed plus the
  // boundary-heavy first and last 32 bytes at full resolution.
  for (size_t len = 0; len < original.size(); ++len) {
    bool boundary = len < 32 || len + 32 >= original.size();
    if (!boundary && len % 17 != 0) continue;
    ASSERT_TRUE(WriteFile(path, original.substr(0, len)).ok());
    ExpectCleanErrorOrIdentical(dir, pristine,
                                "truncate payload to " + std::to_string(len));
  }
  ASSERT_TRUE(WriteFile(path, original).ok());
  EXPECT_EQ(MergeShards(dir, "fuzz").value(), pristine);
}

TEST(ShardFuzzTest, PayloadBitFlips) {
  Bytes pristine = MergeShards(BuildPristine("ref_flip"), "fuzz").value();
  std::string dir = BuildPristine("flip");
  Rng rng(424242);
  for (int k = 0; k < kShards; ++k) {
    std::string path = ShardPayloadPath(dir, k);
    std::string original = *ReadFile(path);
    for (int trial = 0; trial < 40; ++trial) {
      std::string mutated = original;
      size_t pos = rng.NextUint64() % mutated.size();
      mutated[pos] ^= static_cast<char>(1u << (rng.NextUint64() % 8));
      ASSERT_TRUE(WriteFile(path, mutated).ok());
      ExpectCleanErrorOrIdentical(
          dir, pristine,
          "flip byte " + std::to_string(pos) + " of shard " +
              std::to_string(k));
    }
    ASSERT_TRUE(WriteFile(path, original).ok());
  }
}

TEST(ShardFuzzTest, ManifestTextMutations) {
  Bytes pristine = MergeShards(BuildPristine("ref_manifest"), "fuzz").value();
  std::string dir = BuildPristine("manifest");
  std::string path = ShardManifestPath(dir, 0);
  std::string original = *ReadFile(path);
  Rng rng(31337);

  // Character flips anywhere in the manifest text.
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = original;
    size_t pos = rng.NextUint64() % mutated.size();
    mutated[pos] ^= static_cast<char>(1u << (rng.NextUint64() % 7));
    ASSERT_TRUE(WriteFile(path, mutated).ok());
    ExpectCleanErrorOrIdentical(dir, pristine,
                                "flip manifest char " + std::to_string(pos));
  }

  // Whole-line deletions and duplications.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < original.size()) {
    size_t nl = original.find('\n', start);
    lines.push_back(original.substr(start, nl - start + 1));
    start = nl + 1;
  }
  for (size_t drop = 0; drop < lines.size(); ++drop) {
    std::string mutated;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i != drop) mutated += lines[i];
    }
    ASSERT_TRUE(WriteFile(path, mutated).ok());
    ExpectCleanErrorOrIdentical(dir, pristine,
                                "drop manifest line " + std::to_string(drop));
  }
  for (size_t dup = 0; dup < lines.size(); ++dup) {
    std::string mutated = original + lines[dup];
    ASSERT_TRUE(WriteFile(path, mutated).ok());
    ExpectCleanErrorOrIdentical(
        dir, pristine, "duplicate manifest line " + std::to_string(dup));
  }

  // Empty and oversized manifests.
  ASSERT_TRUE(WriteFile(path, "").ok());
  ExpectCleanErrorOrIdentical(dir, pristine, "empty manifest");
  ASSERT_TRUE(WriteFile(path, std::string(1 << 16, 'A')).ok());
  ExpectCleanErrorOrIdentical(dir, pristine, "giant garbage manifest");
  ASSERT_TRUE(WriteFile(path, original).ok());
  EXPECT_EQ(MergeShards(dir, "fuzz").value(), pristine);
}

TEST(ShardFuzzTest, PlanMutations) {
  Bytes pristine = MergeShards(BuildPristine("ref_plan"), "fuzz").value();
  std::string dir = BuildPristine("plan");
  std::string path = ShardPlanPath(dir);
  std::string original = *ReadFile(path);
  Rng rng(271828);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = original;
    size_t pos = rng.NextUint64() % mutated.size();
    mutated[pos] ^= static_cast<char>(1u << (rng.NextUint64() % 7));
    ASSERT_TRUE(WriteFile(path, mutated).ok());
    ExpectCleanErrorOrIdentical(dir, pristine,
                                "flip plan char " + std::to_string(pos));
  }
  // A plan claiming a different shard count than the files on disk.
  ShardPlanInfo info = ParseShardPlanInfo(original).value();
  info.shards = kShards + 1;
  ASSERT_TRUE(WriteFile(path, SerializeShardPlanInfo(info)).ok());
  ExpectCleanErrorOrIdentical(dir, pristine, "plan with extra shard");
  ASSERT_TRUE(WriteFile(path, original).ok());
  EXPECT_EQ(MergeShards(dir, "fuzz").value(), pristine);
}

TEST(ShardFuzzTest, CrossShardFileSwaps) {
  Bytes pristine = MergeShards(BuildPristine("ref_swap"), "fuzz").value();
  std::string dir = BuildPristine("swap");
  std::vector<std::string> manifests, payloads;
  for (int k = 0; k < kShards; ++k) {
    manifests.push_back(*ReadFile(ShardManifestPath(dir, k)));
    payloads.push_back(*ReadFile(ShardPayloadPath(dir, k)));
  }
  // Every way of planting one shard's files under another's name.
  for (int src = 0; src < kShards; ++src) {
    for (int dst = 0; dst < kShards; ++dst) {
      if (src == dst) continue;
      ASSERT_TRUE(
          WriteFile(ShardManifestPath(dir, dst), manifests[src]).ok());
      ASSERT_TRUE(WriteFile(ShardPayloadPath(dir, dst), payloads[src]).ok());
      ExpectCleanErrorOrIdentical(dir, pristine,
                                  "shard " + std::to_string(src) +
                                      " files posing as shard " +
                                      std::to_string(dst));
      ASSERT_TRUE(
          WriteFile(ShardManifestPath(dir, dst), manifests[dst]).ok());
      ASSERT_TRUE(WriteFile(ShardPayloadPath(dir, dst), payloads[dst]).ok());
    }
  }
  // Payload swapped without its manifest: SHA-256 must catch it.
  ASSERT_TRUE(WriteFile(ShardPayloadPath(dir, 0), payloads[1]).ok());
  Result<Bytes> merged = MergeShards(dir, "fuzz");
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kIntegrityViolation);
}

}  // namespace
}  // namespace hsis::common

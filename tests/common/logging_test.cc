#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace hsis {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, EnabledMessageReachesStderr) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  HSIS_LOG_INFO << "visible message " << 42;
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("visible message 42"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
  EXPECT_NE(err.find("logging_test"), std::string::npos);  // file tag
}

TEST_F(LoggingTest, SuppressedBelowThreshold) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  HSIS_LOG_INFO << "should not appear";
  HSIS_LOG_WARNING << "nor this";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_EQ(err.find("nor this"), std::string::npos);
}

TEST_F(LoggingTest, ErrorPassesThreshold) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  HSIS_LOG_ERROR << "error shows";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("error shows"), std::string::npos);
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH({ HSIS_LOG_FATAL << "fatal condition"; }, "fatal condition");
}

TEST_F(LoggingDeathTest, CheckFailureAborts) {
  int x = 3;
  EXPECT_DEATH({ HSIS_CHECK(x == 4) << "x was " << x; },
               "Check failed: x == 4");
}

TEST_F(LoggingDeathTest, CheckPassesSilently) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  HSIS_CHECK(1 + 1 == 2) << "never printed";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingDeathTest, ResultValueOnErrorAborts) {
  Result<int> r(Status::NotFound("missing thing"));
  EXPECT_DEATH({ (void)r.value(); }, "missing thing");
}

TEST_F(LoggingDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; (void)r; },
               "constructed from OK status");
}

}  // namespace
}  // namespace hsis

#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hsis {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformUint64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, RandomBytesLengthAndVariety) {
  Rng rng(29);
  Bytes b = rng.RandomBytes(1000);
  ASSERT_EQ(b.size(), 1000u);
  std::set<uint8_t> values(b.begin(), b.end());
  EXPECT_GT(values.size(), 100u);

  EXPECT_TRUE(rng.RandomBytes(0).empty());
  EXPECT_EQ(rng.RandomBytes(3).size(), 3u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(31);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t r = rng.Zipf(100, 1.2);
    ASSERT_LT(r, 100u);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.Zipf(10, 0.0)]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child stream should not be a shifted copy of the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextUint64() == child.NextUint64());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace hsis

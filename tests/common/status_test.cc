#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace hsis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIntegrityViolation),
               "IntegrityViolation");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kProtocolViolation),
               "ProtocolViolation");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusTest, OkCodeNormalizesMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailingHelper() { return Status::OutOfRange("helper failed"); }

Status PropagatesWithMacro() {
  HSIS_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status s = PropagatesWithMacro();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  HSIS_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacroThreadsValues) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = QuarterEven(6);  // 6/2 = 3, second halving fails
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace hsis

// Reference vectors for U256 arithmetic, generated offline with Python's
// arbitrary-precision integers (seed 0xBEEF). Guards the limb-level
// carry/borrow/division logic against an independent implementation.

#include <gtest/gtest.h>

#include "common/u256.h"

namespace hsis {
namespace {

struct Vector {
  const char* a;
  const char* b;
  const char* sum;       // (a + b) mod 2^256
  const char* diff;      // (a - b) mod 2^256
  const char* prod_lo;   // (a * b) mod 2^256
  const char* quotient;  // a / b
  const char* remainder; // a % b
};

constexpr Vector kVectors[] = {
    {"a5c7a28d837cdbaf",
     "4a8920a023b4363b",
     "f050c32da73111ea",
     "5b3e81ed5fc8a574",
     "304481f38df3bce9e5ed038d08298b55",
     "2",
     "10b5614d3c146f39"},
    {"ca74e4939fb0e421e0d55ad55464459b0ac86aadf21cd777cd",
     "289212e66f91273f56b9bf7267e5123d4abe45e4514316d0a6fa9ebde90d6950",
     "289212e66f912809cb9e531218c9341e20191b38b588b1db6f654cb005e4e11d",
     "d76ded19906ed98b1e2ad42d48ff0fa38a9c8f701302843a21700f3433ca0e7d",
     "c19b294a513f22c4a64ef7124721e1fd08748cd86892d584c77034d10de18510",
     "0",
     "ca74e4939fb0e421e0d55ad55464459b0ac86aadf21cd777cd"},
    {"2b4d03d6a1dc235d",
     "662768468f01090913877ed8ede7683665a42ae4e22d8d1921",
     "662768468f01090913877ed8ede7683665cf77e8b8cf693c7e",
     "ffffffffffffff99d897b970fef6f6ec788127121897c99a87221ef4744f0a3c",
     "4759e652fecf0b48205da211a7866b1fb49efc118e1c19714710590a300da3fd",
     "0",
     "2b4d03d6a1dc235d"},
    {"bd3efb4705e79ddd",
     "792affe3aff6186",
     "c4d1ab4540e6ff63",
     "b5ac4b48cae83c57",
     "59928e43d8a9fac9305802a2b305eae",
     "18",
     "77e7b717df6794d"},
    {"6d6f8cb77f9597158d90fca06ab9afdf51203eac7648b266e77509ca4d9ef8a7",
     "d81f14d2ded9ba41",
     "6d6f8cb77f9597158d90fca06ab9afdf51203eac7648b267bf941e9d2c78b2e8",
     "6d6f8cb77f9597158d90fca06ab9afdf51203eac7648b2660f55f4f76ec53e66",
     "1151048f3cef1d1c5071ef7feb9c2f5ed8cfaffd33c91f0fa5ae2522cd957867",
     "81a0f623f57941ce4a91c8ff4eae59c582ef4944198eaef3",
     "50710fef1f4cfef4"},
    {"52b1864464b8f071485e91a0e9bc9c31",
     "89bcf921da84a8de2cb8ed56616630f8e2602552076e7bb027",
     "89bcf921da84a8de2d0b9edca5cae9e953a883e3a858384c58",
     "ffffffffffffff764306de257b5721d399c42fe2fe87f78ee8393f997b40ec0a",
     "2bec3c0a2b7296e0159ca7c7c83881936f3e2f0c39264f61e88b204860a87b77",
     "0",
     "52b1864464b8f071485e91a0e9bc9c31"},
    {"af67a207beb09e39",
     "b74c1566d81c9ab946736f9ee78f8f4606d134645c9c23e2d7d3b30e8679a9f4",
     "b74c1566d81c9ab946736f9ee78f8f4606d134645c9c23e3873b5516452a482d",
     "48b3ea9927e36546b98c9061187070b9f92ecb9ba363dc1dd793eef93836f445",
     "baa5c72d2a8bd2854d20a88be5280436fd6f3ed7dbebdbc6707ca2aef7bb6f54",
     "0",
     "af67a207beb09e39"},
    {"a76689e975ee0742",
     "3006eccaae856290049b97ccd873d2d7",
     "3006eccaae856290ac0221b64e61da19",
     "ffffffffffffffffffffffffffffffffcff91335517a9d70a2caf21c9d7a346b",
     "1f67c11a11c05a54c9fceaa4aac05440708bdc743f823c6e",
     "0",
     "a76689e975ee0742"},
    {"eab6fea62514db1a25d4ffd2363098dc1e98a2a1b07aa96688",
     "440918f1957267bdbcb5253ac0bf30de6c6d5339549511b224",
     "12ec01797ba8742d7e28a250cf6efc9ba8b05f5db050fbb18ac",
     "a6ade5b48fa2735c691fda97757167fdb22b4f685be597b464",
     "55b0b0a806c33515c3667926b321b60b77778f5bbf1b75831cea1ca80024fb20",
     "3",
     "1e9bb3d164bda3e0efb59021f3f30640d950a8f5b2bb74501c"},
    {"bc9663f397386aa36f8c74642cf66c1f",
     "8c555ba012dc0f3afa3b9493e8ee8e88717cc7fd8b06ffd514",
     "8c555ba012dc0f3afaf82af7dc85c6f314ec5471ef33f64133",
     "ffffffffffffff73aaa45fed23f0c5068101d00aa8a9e231f2c476d925f6970b",
     "ac30d698e2b6d45cb9a11e2161779f1b80b8047dbbe46ca6df67590ff8173d6c",
     "0",
     "bc9663f397386aa36f8c74642cf66c1f"},
    {"429bb84dc22d505c6c9a70293f3574633c3e06aadd164effe6",
     "9961dccc8e3bae7f8cfad613c5c4653a3b1d1d0c2129ff3af6",
     "dbfd951a5068fedbf995463d04f9d99d775b23b6fe404e3adc",
     "ffffffffffffffa939db8133f1a1dcdf9f9a1579710f290120e99ebbec4fc4f0",
     "fedfe0b00c7bab104305dd84762391a77ac1fc8d08a1cf705725ebd411fe0304",
     "0",
     "429bb84dc22d505c6c9a70293f3574633c3e06aadd164effe6"},
    {"dd367f1f91ec1cc209751b57e21e79d5",
     "73e738549c8cd1cda0854a096f5a687ed2e14abcc8dd100ef15c7313f35206d5",
     "73e738549c8cd1cda0854a096f5a687fb017c9dc5ac92cd0fad18e6bd57080aa",
     "8c18c7ab63732e325f7ab5f690a597820a553462c90f0cb31818a843eecc7300",
     "df321a52305a7214b662db930fbe03f8b0775bf10fd819869166e4a30f705c39",
     "0",
     "dd367f1f91ec1cc209751b57e21e79d5"},
    {"86eeda69189089fddc869eb898b1527108274f589e7aaaac8335d1ea4f80df6d",
     "bcc799815df5481193716eb2a2ff239dcee73a921fc3437bfbe987e38a4a0174",
     "43b673ea7685d20f6ff80d6b3bb0760ed70e89eabe3dee287f1f59cdd9cae0e1",
     "ca2740e7ba9b41ec49153005f5b22ed3394014c67eb76730874c4a06c536ddf9",
     "df2ba7f1c9ad31f20b3ac1e8bf31bbbb81fb33f873e63dd1551914d3dec6aa64",
     "0",
     "86eeda69189089fddc869eb898b1527108274f589e7aaaac8335d1ea4f80df6d"},
    {"16bc96ed2f05f6c6df5e36efd6133272bdd1150c03421073054d0a74af743313",
     "ec7d4171008c47025f7c3142d8e8b2684d12f8c731670cc091169d8939ed7946",
     "339d85e2f923dc93eda6832aefbe4db0ae40dd334a91d339663a7fde961ac59",
     "2a3f557c2e79afc47fe205acfd2a800a70be1c44d1db03b274366ceb7586b9cd",
     "f2ae74d86f09f991a9883e2b6ecda934193cd90840bd2bd1d53d4cf36980f232",
     "0",
     "16bc96ed2f05f6c6df5e36efd6133272bdd1150c03421073054d0a74af743313"},
    {"224426cadb48ea52078b4397bc46b2f4036d3935b1526855489b18b500abaf80",
     "cd76f8e6c8bce00a4fb1df63680a4e44",
     "224426cadb48ea52078b4397bc46b2f4d0e4321c7a0f485f984cf81868b5fdc4",
     "224426cadb48ea52078b4397bc46b2f335f6404ee895884af8e9395198a1613c",
     "4c7dae48414be6c456d8f02b5c41d6c677174cd42fa11150b1d6dac958139e00",
     "2ab1b6c7c0502e1c7da1211960b716ab",
     "ad3be833ecb9536be2a8b1022c739014"},
    {"b5ab7936691b15cbb369a78b14a8311750ebb35a942612c233",
     "cad3901a274e53553567447e238cc23b6ba6de1e6f1db87789",
     "1807f095090696920e8d0ec093834f352bc9291790343cb39bc",
     "ffffffffffffffead7e91c41ccc2767e02630cf11b6edbe544d53c25085a4aaa",
     "c0d9ba468848d8659d8746121ffaefed26dd8939e0c28f3f9400029373f7a24b",
     "0",
     "b5ab7936691b15cbb369a78b14a8311750ebb35a942612c233"},
    {"a0f3b13f8bfdfbe5d03a83561629262794d3ed46265db34e9a",
     "a8c2e0e8d31e22750c5c9142387dc854217505f5c78a10baf69b38273b758b60",
     "a8c2e0e8d31e2316000dd0ce3679ae245bf85c0bf0b0384fca887e4d9928d9fa",
     "573d1f172ce1de2be754ae49c57e1d7c190e5020619c16d9dd520dff223dc33a",
     "e1fe30ef15b513db75c8a190c45b7735b2a750306fa10ad147f2f2c9e94d17c0",
     "0",
     "a0f3b13f8bfdfbe5d03a83561629262794d3ed46265db34e9a"},
    {"56a5261a71e0641717f38ea16c437b63d8de3f35396da57090",
     "8882ac272606eb72866c2c52dce86949",
     "56a5261a71e06417187c114d9369824f4b64ab618c4a8dd9d9",
     "56a5261a71e06417176b0bf5451d74786657d308e690bd0747",
     "6c981c4a4d5472243fb30fdd8fee788107142d1dfc0f3d194e371422e1d82910",
     "a27ca107b22be4fe6b",
     "1a09fa6057ca3ece6ec37af97807010d"},
    {"8d118a01bd6ae74c",
     "dd741979bc74df26",
     "16a85a37b79dfc672",
     "ffffffffffffffffffffffffffffffffffffffffffffffffaf9d708800f60826",
     "7a081e1fd4ecccb26a44157adbc98948",
     "0",
     "8d118a01bd6ae74c"},
    {"a98488a02c940c378a82a2a443b3ca39f2d713aaebea4d4d84a66dba99e4f0ba",
     "40d45f76acfc9212",
     "a98488a02c940c378a82a2a443b3ca39f2d713aaebea4d4dc57acd3146e182cc",
     "a98488a02c940c378a82a2a443b3ca39f2d713aaebea4d4d43d20e43ece85ea8",
     "1a41e978fca3970d96be25de1022413005235e5ad06d8b8c60416db9527b0114",
     "29d64dde6a9922e5704f264074c7c17dbb8ab03b018c83e17",
     "2823a6c815c3751c"},
    {"4832b561c7fb3ad6b44f11ec8d3eb740",
     "62fa758e63f1665518a6a24431e1ed5a308e735a7be8421607",
     "62fa758e63f1665518eed4f993a9e8950742c26c687580cd47",
     "ffffffffffffff9d058a719c0e99aae7a190712fe60de0a625dbb770a4fca139",
     "6377a33c501bd5167ff990d20febfc5ae7b7b057ee05132073ff9d987ef682c0",
     "0",
     "4832b561c7fb3ad6b44f11ec8d3eb740"},
    {"fdeae10c5f9c08fe",
     "8490683e746db93fc68b34cc579440b7",
     "8490683e746db940c47615d8b73049b5",
     "ffffffffffffffffffffffffffffffff7b6f97c18b9246c1375fac400807c847",
     "837c578e560d06f7fe45d7205d7614ecc2e4076adfa1ed92",
     "0",
     "fdeae10c5f9c08fe"},
    {"8962272d0a9ee14cd70d6e84c3059f67c3805cb4c004c2995b",
     "10db2a466c85f796",
     "8962272d0a9ee14cd70d6e84c3059f67c39137df06714890f1",
     "8962272d0a9ee14cd70d6e84c3059f67c36f818a79983ca1c5",
     "bc01a39b36b7210c5faebd5afbb307e6d6c2d686ace6329adb39bc89c43a852",
     "8267e0c99a27335cf40e917ac8553b95071",
     "7e8c4bcb2db7025"},
    {"d36d95b42ea902264a180a538a2771c9",
     "8a2e72260fda095cf03c37d959315f81740f7862d415ef9c29",
     "8a2e72260fda095cf10fa56f0d6008839a59906d27a0170df2",
     "ffffffffffffff75d18dd9f025f6a3109735bc5afd4980b23a9fa77f7437d5a0",
     "16e2296f1a4f122b60608cc711cd354c4dc84ef7151e44e0a1e8f32de14eb531",
     "0",
     "d36d95b42ea902264a180a538a2771c9"},
};

U256 FromHex(const char* s) {
  Result<U256> v = U256::FromHex(s);
  EXPECT_TRUE(v.ok()) << s;
  return *v;
}

class U256VectorTest : public ::testing::TestWithParam<size_t> {};

TEST_P(U256VectorTest, MatchesPythonReference) {
  const Vector& vec = kVectors[GetParam()];
  U256 a = FromHex(vec.a);
  U256 b = FromHex(vec.b);
  EXPECT_EQ((a + b).ToHex(), vec.sum);
  EXPECT_EQ((a - b).ToHex(), vec.diff);
  EXPECT_EQ((a * b).ToHex(), vec.prod_lo);
  U256DivMod qr = DivMod(a, b);
  EXPECT_EQ(qr.quotient.ToHex(), vec.quotient);
  EXPECT_EQ(qr.remainder.ToHex(), vec.remainder);
}

INSTANTIATE_TEST_SUITE_P(
    PythonVectors, U256VectorTest,
    ::testing::Range<size_t>(0, sizeof(kVectors) / sizeof(kVectors[0])));

}  // namespace
}  // namespace hsis

#include "common/file.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace hsis {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FileTest, WriteReadRoundTrip) {
  std::string path = TempPath("hsis_file_test.txt");
  ASSERT_TRUE(WriteFile(path, "line1\nline2\n").ok());
  Result<std::string> back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "line1\nline2\n");
  std::remove(path.c_str());
}

TEST(FileTest, OverwriteTruncates) {
  std::string path = TempPath("hsis_file_test2.txt");
  ASSERT_TRUE(WriteFile(path, "a much longer original content").ok());
  ASSERT_TRUE(WriteFile(path, "short").ok());
  EXPECT_EQ(*ReadFile(path), "short");
  std::remove(path.c_str());
}

TEST(FileTest, BinaryContentPreserved) {
  std::string path = TempPath("hsis_file_test3.bin");
  std::string content("\x00\x01\xff\x00zzz", 7);
  ASSERT_TRUE(WriteFile(path, content).ok());
  EXPECT_EQ(*ReadFile(path), content);
  std::remove(path.c_str());
}

TEST(FileTest, MissingFileFails) {
  EXPECT_FALSE(ReadFile("/nonexistent/dir/file.txt").ok());
  EXPECT_FALSE(WriteFile("/nonexistent/dir/file.txt", "x").ok());
}

TEST(FileTest, FileExistsReflectsTheFilesystem) {
  std::string path = TempPath("hsis_file_exists.txt");
  std::remove(path.c_str());
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  std::remove(path.c_str());
  EXPECT_FALSE(FileExists(path));
}

TEST(FileTest, RenameFileMovesContent) {
  std::string from = TempPath("hsis_rename_from.txt");
  std::string to = TempPath("hsis_rename_to.txt");
  std::remove(to.c_str());
  ASSERT_TRUE(WriteFile(from, "payload").ok());
  ASSERT_TRUE(RenameFile(from, to).ok());
  EXPECT_FALSE(FileExists(from));
  EXPECT_EQ(*ReadFile(to), "payload");
  std::remove(to.c_str());
}

TEST(FileTest, RenameMissingSourceIsNotFound) {
  Status status =
      RenameFile(TempPath("hsis_rename_missing.txt"), TempPath("x.txt"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hsis

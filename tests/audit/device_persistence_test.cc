#include <gtest/gtest.h>

#include "audit/auditing_device.h"
#include "audit/secure_coprocessor.h"
#include "audit/tuple_generator.h"
#include "sovereign/dataset.h"

namespace hsis::audit {
namespace {

using sovereign::Dataset;
using sovereign::Tuple;

crypto::MultisetHashFamily MuFamily() {
  Result<crypto::MultisetHashFamily> f =
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup());
  EXPECT_TRUE(f.ok());
  return *f;
}

Bytes Commit(const crypto::MultisetHashFamily& family, const Dataset& data) {
  auto h = family.NewHash();
  for (const Tuple& t : data.tuples()) h->Add(t.value);
  return h->Serialize();
}

TEST(DevicePersistenceTest, SerializeRestoreRoundTrip) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 50).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("rowi", family, &device).value());
  Dataset data;
  for (const char* v : {"a", "b", "c"}) data.Add(tg.IssueString(v).value());
  // Accrue a penalty so non-trivial totals round-trip too.
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("fake"));
  ASSERT_TRUE(device.Audit("rowi", Commit(family, cheated)).ok());

  Bytes state = device.SerializeState();

  // "Restart" the device: fresh instance, same configuration.
  AuditingDevice restored = std::move(AuditingDevice::Create(1.0, 50).value());
  ASSERT_TRUE(restored.RegisterPlayer("rowi", family).ok());
  ASSERT_TRUE(restored.RestoreState(state).ok());

  EXPECT_EQ(restored.RecordedTupleCount("rowi"), 3u);
  EXPECT_DOUBLE_EQ(restored.TotalPenalties("rowi"), 50.0);

  // The restored HV_i still validates the honest commitment and still
  // catches the cheat.
  auto honest = restored.Audit("rowi", Commit(family, data));
  ASSERT_TRUE(honest.ok());
  EXPECT_FALSE(honest->cheating_detected);
  auto caught = restored.Audit("rowi", Commit(family, cheated));
  ASSERT_TRUE(caught.ok());
  EXPECT_TRUE(caught->cheating_detected);
}

TEST(DevicePersistenceTest, RestoredDeviceStaysIncremental) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 10).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  Dataset data;
  data.Add(tg.IssueString("before-restart").value());
  Bytes state = device.SerializeState();

  AuditingDevice restored = std::move(AuditingDevice::Create(1.0, 10).value());
  ASSERT_TRUE(restored.RegisterPlayer("p", family).ok());
  ASSERT_TRUE(restored.RestoreState(state).ok());

  // New tuples arrive after the restart (via a generator wired to the
  // restored device).
  auto singleton = family.NewHash();
  singleton->Add(ToBytes("after-restart"));
  ASSERT_TRUE(restored.RecordTupleHash("p", singleton->Serialize()).ok());
  data.Add(Tuple::FromString("after-restart"));

  auto outcome = restored.Audit("p", Commit(family, data));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->cheating_detected);
  EXPECT_EQ(restored.RecordedTupleCount("p"), 2u);
}

TEST(DevicePersistenceTest, RestoreRejectsUnknownPlayer) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 10).value());
  ASSERT_TRUE(device.RegisterPlayer("alice", family).ok());
  Bytes state = device.SerializeState();

  AuditingDevice other = std::move(AuditingDevice::Create(1.0, 10).value());
  ASSERT_TRUE(other.RegisterPlayer("bob", family).ok());
  EXPECT_FALSE(other.RestoreState(state).ok());
}

TEST(DevicePersistenceTest, RestoreRejectsGarbage) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 10).value());
  ASSERT_TRUE(device.RegisterPlayer("p", family).ok());
  EXPECT_FALSE(device.RestoreState(Bytes{}).ok());
  EXPECT_FALSE(device.RestoreState(Bytes(10, 0xff)).ok());

  // Truncated valid state.
  Bytes state = device.SerializeState();
  state.pop_back();
  state[8 + 3] = 1;  // still claims one player
  EXPECT_FALSE(device.RestoreState(state).ok());
}

TEST(DevicePersistenceTest, SealedRestartThroughCoprocessor) {
  // The full Section 6 story: the device state survives a restart as a
  // sealed blob only the same coprocessor can open.
  Rng rng(7);
  SecureCoprocessor coprocessor = SecureCoprocessor::Manufacture(rng);
  crypto::MultisetHashFamily family = MuFamily();

  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 25).value());
  TupleGenerator tg =
      std::move(TupleGenerator::Create("p", family, &device).value());
  Dataset data;
  data.Add(tg.IssueString("tuple-1").value());
  data.Add(tg.IssueString("tuple-2").value());

  Bytes sealed = std::move(coprocessor.Seal(device.SerializeState(), rng).value());

  // Another coprocessor cannot recover the state.
  SecureCoprocessor impostor = SecureCoprocessor::Manufacture(rng);
  EXPECT_FALSE(impostor.Unseal(sealed).ok());

  // The genuine one restores it fully.
  Bytes unsealed = std::move(coprocessor.Unseal(sealed).value());
  AuditingDevice restored = std::move(AuditingDevice::Create(1.0, 25).value());
  ASSERT_TRUE(restored.RegisterPlayer("p", family).ok());
  ASSERT_TRUE(restored.RestoreState(unsealed).ok());
  auto outcome = restored.Audit("p", Commit(family, data));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->cheating_detected);
}

TEST(DevicePersistenceTest, MultiplePlayersRoundTrip) {
  crypto::MultisetHashFamily family = MuFamily();
  AuditingDevice device = std::move(AuditingDevice::Create(1.0, 5).value());
  TupleGenerator tg1 =
      std::move(TupleGenerator::Create("p1", family, &device).value());
  TupleGenerator tg2 =
      std::move(TupleGenerator::Create("p2", family, &device).value());
  Dataset d1, d2;
  d1.Add(tg1.IssueString("x").value());
  d2.Add(tg2.IssueString("y").value());
  d2.Add(tg2.IssueString("z").value());

  AuditingDevice restored = std::move(AuditingDevice::Create(1.0, 5).value());
  ASSERT_TRUE(restored.RegisterPlayer("p1", family).ok());
  ASSERT_TRUE(restored.RegisterPlayer("p2", family).ok());
  ASSERT_TRUE(restored.RestoreState(device.SerializeState()).ok());
  EXPECT_EQ(restored.RecordedTupleCount("p1"), 1u);
  EXPECT_EQ(restored.RecordedTupleCount("p2"), 2u);
  EXPECT_FALSE(
      restored.Audit("p1", Commit(family, d1))->cheating_detected);
  EXPECT_FALSE(
      restored.Audit("p2", Commit(family, d2))->cheating_detected);
  // Cross-wiring would be cheating.
  EXPECT_TRUE(restored.Audit("p1", Commit(family, d2))->cheating_detected);
}

}  // namespace
}  // namespace hsis::audit

#include "audit/audit_baseline.h"

#include <gtest/gtest.h>

namespace hsis::audit {
namespace {

using sovereign::Dataset;
using sovereign::Tuple;

MerkleAuditAccumulator AccumulateDataset(const Dataset& data) {
  MerkleAuditAccumulator acc;
  for (const Tuple& t : data.tuples()) acc.Record(MerkleTupleHash(t.value));
  return acc;
}

TEST(MerkleAuditBaselineTest, HonestReportMatches) {
  Dataset data = Dataset::FromStrings({"a", "b", "c"});
  MerkleAuditAccumulator acc = AccumulateDataset(data);
  EXPECT_TRUE(acc.Matches(MerkleDatasetCommitment(data)));
  EXPECT_EQ(acc.count(), 3u);
}

TEST(MerkleAuditBaselineTest, OrderIndependenceViaCanonicalization) {
  // Record order at the device differs from report order at the party;
  // the sorted-leaf canonicalization makes them agree anyway.
  MerkleAuditAccumulator acc;
  for (const char* v : {"c", "a", "b"}) {
    acc.Record(MerkleTupleHash(ToBytes(v)));
  }
  Dataset data = Dataset::FromStrings({"b", "c", "a"});
  EXPECT_TRUE(acc.Matches(MerkleDatasetCommitment(data)));
}

TEST(MerkleAuditBaselineTest, DetectsInsertion) {
  Dataset data = Dataset::FromStrings({"a", "b", "c"});
  MerkleAuditAccumulator acc = AccumulateDataset(data);
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("fake"));
  EXPECT_FALSE(acc.Matches(MerkleDatasetCommitment(cheated)));
}

TEST(MerkleAuditBaselineTest, DetectsDeletionAndSubstitution) {
  Dataset data = Dataset::FromStrings({"a", "b", "c"});
  MerkleAuditAccumulator acc = AccumulateDataset(data);

  Dataset removed = data.Difference(Dataset::FromStrings({"b"}));
  EXPECT_FALSE(acc.Matches(MerkleDatasetCommitment(removed)));

  Dataset swapped = removed;
  swapped.Add(Tuple::FromString("z"));
  EXPECT_FALSE(acc.Matches(MerkleDatasetCommitment(swapped)));
}

TEST(MerkleAuditBaselineTest, MultiplicitySensitive) {
  Dataset once = Dataset::FromStrings({"x", "y"});
  Dataset twice = Dataset::FromStrings({"x", "x", "y"});
  MerkleAuditAccumulator acc = AccumulateDataset(once);
  EXPECT_FALSE(acc.Matches(MerkleDatasetCommitment(twice)));
}

TEST(MerkleAuditBaselineTest, EmptyDataset) {
  MerkleAuditAccumulator acc;
  EXPECT_TRUE(acc.Matches(MerkleDatasetCommitment(Dataset())));
}

TEST(MerkleAuditBaselineTest, StateGrowsLinearly) {
  // The ablation's point: unlike the multiset-hash device, the Merkle
  // baseline's state grows with the tuple stream.
  MerkleAuditAccumulator acc;
  acc.Record(MerkleTupleHash(ToBytes("one")));
  size_t small = acc.StateBytes();
  for (int i = 0; i < 999; ++i) {
    acc.Record(MerkleTupleHash(ToBytes("t" + std::to_string(i))));
  }
  EXPECT_GE(acc.StateBytes(), small * 500);
  EXPECT_EQ(acc.count(), 1000u);
}

}  // namespace
}  // namespace hsis::audit

#include "audit/auditing_device.h"

#include <gtest/gtest.h>

#include "audit/tuple_generator.h"
#include "sovereign/dataset.h"

namespace hsis::audit {
namespace {

using sovereign::Dataset;
using sovereign::Tuple;

crypto::MultisetHashFamily MuFamily() {
  Result<crypto::MultisetHashFamily> f =
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup());
  EXPECT_TRUE(f.ok());
  return *f;
}

/// Issues string tuples through a generator, building the player's
/// database the legal way, and returns the resulting dataset.
Dataset IssueAll(TupleGenerator& tg,
                 std::initializer_list<std::string_view> values) {
  Dataset out;
  for (std::string_view v : values) {
    Result<Tuple> t = tg.IssueString(v);
    EXPECT_TRUE(t.ok());
    out.Add(*t);
  }
  return out;
}

/// The commitment H_i(D) a party reports for dataset D.
Bytes Commit(const crypto::MultisetHashFamily& family, const Dataset& data) {
  std::unique_ptr<crypto::MultisetHash> h = family.NewHash();
  for (const Tuple& t : data.tuples()) h->Add(t.value);
  return h->Serialize();
}

TEST(AuditingDeviceTest, CreateValidation) {
  EXPECT_FALSE(AuditingDevice::Create(-0.1, 10).ok());
  EXPECT_FALSE(AuditingDevice::Create(1.1, 10).ok());
  EXPECT_FALSE(AuditingDevice::Create(0.5, -1).ok());
  EXPECT_TRUE(AuditingDevice::Create(0.5, 10).ok());
}

TEST(AuditingDeviceTest, HonestPlayerPassesAudit) {
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 50);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("rowi", family, &*ad);
  ASSERT_TRUE(tg.ok());

  Dataset data = IssueAll(*tg, {"alice", "bob", "carol"});
  Result<AuditOutcome> outcome = ad->Audit("rowi", Commit(family, data));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->audited);
  EXPECT_FALSE(outcome->cheating_detected);
  EXPECT_EQ(outcome->penalty_applied, 0.0);
  EXPECT_EQ(ad->TotalPenalties("rowi"), 0.0);
}

TEST(AuditingDeviceTest, FabricatedTupleDetected) {
  // Rowi maliciously adds "x" to probe Colie's database (Section 1).
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 50);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("rowi", family, &*ad);
  ASSERT_TRUE(tg.ok());

  Dataset data = IssueAll(*tg, {"b", "u", "v", "y"});
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("x"));  // never passed through TG

  Result<AuditOutcome> outcome = ad->Audit("rowi", Commit(family, cheated));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cheating_detected);
  EXPECT_EQ(outcome->penalty_applied, 50.0);
  EXPECT_EQ(ad->TotalPenalties("rowi"), 50.0);
}

TEST(AuditingDeviceTest, WithheldTupleDetected) {
  // Colie excludes v to keep Rowi from learning it (Section 1).
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 35);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("colie", family, &*ad);
  ASSERT_TRUE(tg.ok());

  Dataset data = IssueAll(*tg, {"a", "u", "v", "x"});
  Dataset cheated = data.Difference(Dataset::FromStrings({"v"}));

  Result<AuditOutcome> outcome = ad->Audit("colie", Commit(family, cheated));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cheating_detected);
}

TEST(AuditingDeviceTest, SubstitutionAtSameCountDetected) {
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 10);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("p", family, &*ad);
  ASSERT_TRUE(tg.ok());

  Dataset data = IssueAll(*tg, {"a", "b", "c"});
  Dataset swapped = data.Difference(Dataset::FromStrings({"c"}));
  swapped.Add(Tuple::FromString("z"));
  ASSERT_EQ(swapped.size(), data.size());

  Result<AuditOutcome> outcome = ad->Audit("p", Commit(family, swapped));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cheating_detected);
}

TEST(AuditingDeviceTest, MalformedCommitmentCountsAsCheating) {
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 10);
  ASSERT_TRUE(ad.ok());
  Result<TupleGenerator> tg = TupleGenerator::Create("p", MuFamily(), &*ad);
  ASSERT_TRUE(tg.ok());
  Result<AuditOutcome> outcome = ad->Audit("p", Bytes{0xde, 0xad});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cheating_detected);
}

TEST(AuditingDeviceTest, UnknownPlayerRejected) {
  Result<AuditingDevice> ad = AuditingDevice::Create(0.5, 10);
  ASSERT_TRUE(ad.ok());
  EXPECT_FALSE(ad->Audit("ghost", Bytes{}).ok());
  EXPECT_FALSE(ad->RecordTupleHash("ghost", Bytes{}).ok());
  Rng rng(1);
  EXPECT_FALSE(ad->MaybeAudit("ghost", Bytes{}, rng).ok());
}

TEST(AuditingDeviceTest, DoubleRegistrationRejected) {
  Result<AuditingDevice> ad = AuditingDevice::Create(0.5, 10);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  ASSERT_TRUE(ad->RegisterPlayer("p", family).ok());
  EXPECT_FALSE(ad->RegisterPlayer("p", family).ok());
  EXPECT_TRUE(ad->IsRegistered("p"));
  EXPECT_FALSE(ad->IsRegistered("q"));
}

TEST(AuditingDeviceTest, MaybeAuditHonorsFrequency) {
  Result<AuditingDevice> ad = AuditingDevice::Create(0.3, 10);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("p", family, &*ad);
  ASSERT_TRUE(tg.ok());
  Dataset data = IssueAll(*tg, {"t1", "t2"});
  Bytes commitment = Commit(family, data);

  Rng rng(99);
  int audited = 0;
  const int kRounds = 5000;
  for (int i = 0; i < kRounds; ++i) {
    Result<AuditOutcome> o = ad->MaybeAudit("p", commitment, rng);
    ASSERT_TRUE(o.ok());
    audited += o->audited;
  }
  EXPECT_NEAR(static_cast<double>(audited) / kRounds, 0.3, 0.03);
}

TEST(AuditingDeviceTest, ZeroFrequencyNeverAudits) {
  Result<AuditingDevice> ad = AuditingDevice::Create(0.0, 10);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("p", family, &*ad);
  ASSERT_TRUE(tg.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Result<AuditOutcome> o = ad->MaybeAudit("p", Bytes{0x00}, rng);
    ASSERT_TRUE(o.ok());
    EXPECT_FALSE(o->audited);
  }
}

TEST(AuditingDeviceTest, LogRecordsEveryAudit) {
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 25);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("p", family, &*ad);
  ASSERT_TRUE(tg.ok());
  Dataset data = IssueAll(*tg, {"x"});

  ASSERT_TRUE(ad->Audit("p", Commit(family, data)).ok());
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("fake"));
  ASSERT_TRUE(ad->Audit("p", Commit(family, cheated)).ok());

  ASSERT_EQ(ad->log().size(), 2u);
  EXPECT_EQ(ad->log()[0].sequence, 0u);
  EXPECT_FALSE(ad->log()[0].cheating_detected);
  EXPECT_EQ(ad->log()[1].sequence, 1u);
  EXPECT_TRUE(ad->log()[1].cheating_detected);
  EXPECT_EQ(ad->log()[1].penalty_applied, 25.0);
}

TEST(AuditingDeviceTest, StateIsConstantPerPlayer) {
  // Space efficiency: HV_i does not grow with the number of tuples.
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 10);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("p", family, &*ad);
  ASSERT_TRUE(tg.ok());

  ASSERT_TRUE(tg->IssueString("one").ok());
  size_t small = ad->StateBytes();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tg->IssueString("tuple" + std::to_string(i)).ok());
  }
  EXPECT_EQ(ad->StateBytes(), small);
  EXPECT_EQ(ad->RecordedTupleCount("p"), 1001u);
}

TEST(AuditingDeviceTest, PenaltiesAccumulateAcrossAudits) {
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 20);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg = TupleGenerator::Create("p", family, &*ad);
  ASSERT_TRUE(tg.ok());
  Dataset data = IssueAll(*tg, {"x"});
  Dataset cheated = data;
  cheated.Add(Tuple::FromString("fake"));
  Bytes bad = Commit(family, cheated);
  ASSERT_TRUE(ad->Audit("p", bad).ok());
  ASSERT_TRUE(ad->Audit("p", bad).ok());
  EXPECT_EQ(ad->TotalPenalties("p"), 40.0);
}

TEST(AuditingDeviceTest, MultiplePlayersIndependent) {
  Result<AuditingDevice> ad = AuditingDevice::Create(1.0, 10);
  ASSERT_TRUE(ad.ok());
  crypto::MultisetHashFamily family = MuFamily();
  Result<TupleGenerator> tg1 = TupleGenerator::Create("rowi", family, &*ad);
  Result<TupleGenerator> tg2 = TupleGenerator::Create("colie", family, &*ad);
  ASSERT_TRUE(tg1.ok() && tg2.ok());

  Dataset d1 = IssueAll(*tg1, {"a", "b"});
  Dataset d2 = IssueAll(*tg2, {"c"});

  // Each passes against its own state, fails against the other's.
  Result<AuditOutcome> ok1 = ad->Audit("rowi", Commit(family, d1));
  Result<AuditOutcome> cross = ad->Audit("rowi", Commit(family, d2));
  ASSERT_TRUE(ok1.ok() && cross.ok());
  EXPECT_FALSE(ok1->cheating_detected);
  EXPECT_TRUE(cross->cheating_detected);
}

}  // namespace
}  // namespace hsis::audit

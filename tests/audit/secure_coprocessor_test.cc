#include "audit/secure_coprocessor.h"

#include <gtest/gtest.h>

namespace hsis::audit {
namespace {

TEST(SecureCoprocessorTest, AttestationRoundTrip) {
  Rng rng(1);
  SecureCoprocessor device = SecureCoprocessor::Manufacture(rng);
  Bytes code = ToBytes("auditing-device-v1.0");
  device.InstallApplication(code);

  Bytes challenge = rng.RandomBytes(16);
  Result<SecureCoprocessor::AttestationReport> report = device.Attest(challenge);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(SecureCoprocessor::VerifyAttestation(
      *report, SecureCoprocessor::MeasureCode(code), device.endorsement_key()));
}

TEST(SecureCoprocessorTest, AttestationFailsWithoutApplication) {
  Rng rng(2);
  SecureCoprocessor device = SecureCoprocessor::Manufacture(rng);
  EXPECT_FALSE(device.HasApplication());
  EXPECT_FALSE(device.Attest(rng.RandomBytes(16)).ok());
}

TEST(SecureCoprocessorTest, DetectsWrongCode) {
  Rng rng(3);
  SecureCoprocessor device = SecureCoprocessor::Manufacture(rng);
  device.InstallApplication(ToBytes("malicious-device-v6.66"));
  Result<SecureCoprocessor::AttestationReport> report =
      device.Attest(rng.RandomBytes(16));
  ASSERT_TRUE(report.ok());
  // The verifier expects the trusted application — verification fails.
  EXPECT_FALSE(SecureCoprocessor::VerifyAttestation(
      *report, SecureCoprocessor::MeasureCode(ToBytes("auditing-device-v1.0")),
      device.endorsement_key()));
}

TEST(SecureCoprocessorTest, DetectsForgedMac) {
  Rng rng(4);
  SecureCoprocessor device = SecureCoprocessor::Manufacture(rng);
  Bytes code = ToBytes("auditing-device-v1.0");
  device.InstallApplication(code);
  Result<SecureCoprocessor::AttestationReport> report =
      device.Attest(rng.RandomBytes(16));
  ASSERT_TRUE(report.ok());
  report->mac[0] ^= 0x01;
  EXPECT_FALSE(SecureCoprocessor::VerifyAttestation(
      *report, SecureCoprocessor::MeasureCode(code), device.endorsement_key()));
}

TEST(SecureCoprocessorTest, DetectsWrongEndorsementKey) {
  Rng rng(5);
  SecureCoprocessor genuine = SecureCoprocessor::Manufacture(rng);
  SecureCoprocessor impostor = SecureCoprocessor::Manufacture(rng);
  Bytes code = ToBytes("auditing-device-v1.0");
  impostor.InstallApplication(code);
  Result<SecureCoprocessor::AttestationReport> report =
      impostor.Attest(rng.RandomBytes(16));
  ASSERT_TRUE(report.ok());
  // Verifier trusts `genuine`'s key, not the impostor's.
  EXPECT_FALSE(SecureCoprocessor::VerifyAttestation(
      *report, SecureCoprocessor::MeasureCode(code), genuine.endorsement_key()));
}

TEST(SecureCoprocessorTest, SealUnsealRoundTrip) {
  Rng rng(6);
  SecureCoprocessor device = SecureCoprocessor::Manufacture(rng);
  Bytes state = ToBytes("HV_rowi=...;HV_colie=...");
  Result<Bytes> sealed = device.Seal(state, rng);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(BytesToString(*sealed).find("HV_rowi"), std::string::npos);
  Result<Bytes> restored = device.Unseal(*sealed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, state);
}

TEST(SecureCoprocessorTest, OtherDeviceCannotUnseal) {
  Rng rng(7);
  SecureCoprocessor a = SecureCoprocessor::Manufacture(rng);
  SecureCoprocessor b = SecureCoprocessor::Manufacture(rng);
  Result<Bytes> sealed = a.Seal(ToBytes("secret"), rng);
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(b.Unseal(*sealed).ok());
}

TEST(SecureCoprocessorTest, SealedStateTamperDetected) {
  Rng rng(8);
  SecureCoprocessor device = SecureCoprocessor::Manufacture(rng);
  Result<Bytes> sealed = device.Seal(ToBytes("secret"), rng);
  ASSERT_TRUE(sealed.ok());
  (*sealed)[sealed->size() / 2] ^= 0x01;
  EXPECT_FALSE(device.Unseal(*sealed).ok());
}

}  // namespace
}  // namespace hsis::audit

#include "audit/judge.h"

#include <gtest/gtest.h>

namespace hsis::audit {
namespace {

using sovereign::Dataset;
using sovereign::Tuple;

crypto::MultisetHashFamily MuFamily() {
  Result<crypto::MultisetHashFamily> f =
      crypto::MultisetHashFamily::CreateMu(crypto::PrimeGroup::SmallTestGroup());
  EXPECT_TRUE(f.ok());
  return *f;
}

Bytes Commit(const crypto::MultisetHashFamily& family, const Dataset& data) {
  std::unique_ptr<crypto::MultisetHash> h = family.NewHash();
  for (const Tuple& t : data.tuples()) h->Add(t.value);
  return h->Serialize();
}

TEST(JudgeTest, HonestCommitmentVerifies) {
  crypto::MultisetHashFamily family = MuFamily();
  Dataset data = Dataset::FromStrings({"a", "b", "c"});
  EXPECT_TRUE(VerifyCommitment(data, Commit(family, data), family));
}

TEST(JudgeTest, MismatchedCommitmentRejected) {
  // The Section 6 court scenario: reporting D_i with H_i(D_i'), D_i' != D_i.
  crypto::MultisetHashFamily family = MuFamily();
  Dataset actual = Dataset::FromStrings({"a", "b", "c"});
  Dataset claimed = Dataset::FromStrings({"a", "b"});
  EXPECT_FALSE(VerifyCommitment(actual, Commit(family, claimed), family));
}

TEST(JudgeTest, GarbageCommitmentRejected) {
  crypto::MultisetHashFamily family = MuFamily();
  Dataset data = Dataset::FromStrings({"a"});
  EXPECT_FALSE(VerifyCommitment(data, Bytes{0x01, 0x02}, family));
  EXPECT_FALSE(VerifyCommitment(data, Bytes{}, family));
}

TEST(JudgeTest, EmptyDatasetVerifies) {
  crypto::MultisetHashFamily family = MuFamily();
  Dataset empty;
  EXPECT_TRUE(VerifyCommitment(empty, Commit(family, empty), family));
}

TEST(JudgeTest, MultiplicityMatters) {
  crypto::MultisetHashFamily family = MuFamily();
  Dataset once = Dataset::FromStrings({"x", "y"});
  Dataset twice = Dataset::FromStrings({"x", "x", "y"});
  EXPECT_FALSE(VerifyCommitment(once, Commit(family, twice), family));
  EXPECT_TRUE(VerifyCommitment(twice, Commit(family, twice), family));
}

}  // namespace
}  // namespace hsis::audit

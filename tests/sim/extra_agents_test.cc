#include <gtest/gtest.h>

#include "game/thresholds.h"
#include "sim/repeated_game.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(double penalty, double frequency = 0.3) {
  game::NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 8;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

TEST(PavlovTest, StaysWhenSatisfied) {
  auto agent = MakePavlov(/*aspiration=*/9.0);
  EXPECT_TRUE(agent->ChooseHonest(0, {}, 0));
  agent->Observe({true, true}, 0, 10.0);  // satisfied honest
  EXPECT_TRUE(agent->ChooseHonest(1, {true, true}, 0));
}

TEST(PavlovTest, ShiftsWhenDisappointed) {
  auto agent = MakePavlov(9.0);
  agent->Observe({true, false}, 0, 2.0);  // exploited: below aspiration
  EXPECT_FALSE(agent->ChooseHonest(1, {true, false}, 0));  // shift to cheat
  agent->Observe({false, false}, 0, 1.0);  // still bad
  EXPECT_TRUE(agent->ChooseHonest(2, {false, false}, 0));  // shift back
}

TEST(PavlovTest, WinStayOnCheat) {
  auto agent = MakePavlov(9.0);
  agent->Observe({false, true}, 0, 25.0);  // cheating paid well
  EXPECT_FALSE(agent->ChooseHonest(1, {false, true}, 0));  // stay cheating
}

TEST(PavlovTest, PairConvergesToHonestyUnderDeterrence) {
  // With honest payoffs meeting the aspiration and cheating falling
  // short (strong audits), Pavlov pairs settle honest.
  double p_star = game::CriticalPenalty(10, 25, 0.3);
  game::NPlayerHonestyGame g = MakeGame(p_star * 2);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakePavlov(9.0));
  agents.push_back(MakePavlov(9.0));
  RepeatedGameConfig config;
  config.rounds = 100;
  RepeatedGameResult r = std::move(RunRepeatedGame(g, agents, config).value());
  EXPECT_DOUBLE_EQ(r.honesty_rate_final, 1.0);
}

TEST(NoisyBestResponseTest, ZeroTrembleMatchesBestResponse) {
  game::NPlayerHonestyGame g = MakeGame(0);
  auto noisy = MakeNoisyBestResponse(&g, 5, 0.0);
  auto clean = MakeBestResponse(&g);
  for (int round = 0; round < 20; ++round) {
    std::vector<bool> profile = {round % 2 == 0, round % 3 == 0};
    EXPECT_EQ(noisy->ChooseHonest(round, profile, 0),
              clean->ChooseHonest(round, profile, 0))
        << round;
  }
}

TEST(NoisyBestResponseTest, TrembleRateRealized) {
  game::NPlayerHonestyGame g = MakeGame(1000, 0.9);  // honesty dominant
  auto agent = MakeNoisyBestResponse(&g, 6, 0.2);
  int cheats = 0;
  const int kRounds = 5000;
  for (int round = 1; round <= kRounds; ++round) {
    if (!agent->ChooseHonest(round, {true, true}, 0)) ++cheats;
  }
  // Best response is honest; only trembles cheat.
  EXPECT_NEAR(static_cast<double>(cheats) / kRounds, 0.2, 0.02);
}

TEST(NoisyBestResponseTest, PopulationRecoversFromTrembles) {
  // In the transformative region, trembles cause one-off cheats but the
  // population snaps back: overall honesty stays high.
  double p_star = game::CriticalPenalty(10, 25, 0.3);
  game::NPlayerHonestyGame g = MakeGame(p_star * 2);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeNoisyBestResponse(&g, 11, 0.05));
  agents.push_back(MakeNoisyBestResponse(&g, 12, 0.05));
  RepeatedGameConfig config;
  config.rounds = 1000;
  RepeatedGameResult r = std::move(RunRepeatedGame(g, agents, config).value());
  EXPECT_GT(r.honesty_rate_overall, 0.9);
}

TEST(ExtraAgentsTest, Names) {
  game::NPlayerHonestyGame g = MakeGame(0);
  EXPECT_EQ(MakePavlov(5)->name(), "pavlov");
  EXPECT_EQ(MakeNoisyBestResponse(&g, 1, 0.1)->name(), "noisy-best-response");
}

}  // namespace
}  // namespace hsis::sim

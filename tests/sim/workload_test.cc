#include "sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sovereign/dataset.h"

namespace hsis::sim {
namespace {

TEST(TwoFirmWorkloadTest, SizesAndOverlap) {
  Rng rng(1);
  TwoFirmWorkload w = MakeTwoFirmWorkload(30, 20, 10, rng);
  EXPECT_EQ(w.firm_a.size(), 40u);
  EXPECT_EQ(w.firm_b.size(), 30u);
  EXPECT_EQ(w.common.size(), 10u);
  EXPECT_EQ(w.a_private.size(), 30u);
  EXPECT_EQ(w.b_private.size(), 20u);

  sovereign::Dataset da = sovereign::Dataset::FromStrings(w.firm_a);
  sovereign::Dataset db = sovereign::Dataset::FromStrings(w.firm_b);
  sovereign::Dataset expected = sovereign::Dataset::FromStrings(w.common);
  EXPECT_EQ(da.Intersect(db), expected);
}

TEST(TwoFirmWorkloadTest, IdentifiersUnique) {
  Rng rng(2);
  TwoFirmWorkload w = MakeTwoFirmWorkload(50, 50, 25, rng);
  std::set<std::string> all(w.firm_a.begin(), w.firm_a.end());
  all.insert(w.firm_b.begin(), w.firm_b.end());
  EXPECT_EQ(all.size(), 50u + 50u + 25u);
}

TEST(TwoFirmWorkloadTest, EmptyOverlapSupported) {
  Rng rng(3);
  TwoFirmWorkload w = MakeTwoFirmWorkload(5, 5, 0, rng);
  sovereign::Dataset da = sovereign::Dataset::FromStrings(w.firm_a);
  sovereign::Dataset db = sovereign::Dataset::FromStrings(w.firm_b);
  EXPECT_TRUE(da.Intersect(db).empty());
}

TEST(SupplyChainWorkloadTest, RespectsHoldProbability) {
  Rng rng(4);
  auto parties = MakeSupplyChainWorkload(4, 1000, 0.3, rng);
  ASSERT_EQ(parties.size(), 4u);
  for (const auto& stock : parties) {
    EXPECT_NEAR(static_cast<double>(stock.size()) / 1000, 0.3, 0.06);
  }
}

TEST(SupplyChainWorkloadTest, PartsComeFromCatalog) {
  Rng rng(5);
  auto parties = MakeSupplyChainWorkload(2, 50, 0.5, rng);
  for (const auto& stock : parties) {
    for (const std::string& part : stock) {
      EXPECT_EQ(part.rfind("part-", 0), 0u) << part;
    }
  }
}

TEST(SupplyChainWorkloadTest, RejectsHoldProbabilityOutsideUnitInterval) {
  Rng rng(12);
  EXPECT_DEATH(MakeSupplyChainWorkload(2, 10, -0.1, rng), "hold_probability");
  EXPECT_DEATH(MakeSupplyChainWorkload(2, 10, 1.5, rng), "hold_probability");
}

TEST(SupplyChainWorkloadTest, AcceptsUnitIntervalEndpoints) {
  Rng rng(13);
  auto none = MakeSupplyChainWorkload(2, 20, 0.0, rng);
  for (const auto& stock : none) EXPECT_TRUE(stock.empty());
  auto all = MakeSupplyChainWorkload(2, 20, 1.0, rng);
  for (const auto& stock : all) EXPECT_EQ(stock.size(), 20u);
}

TEST(ZipfDrawsTest, SkewAndDomain) {
  Rng rng(6);
  std::vector<std::string> draws = MakeZipfDraws(5000, 100, 1.2, rng);
  EXPECT_EQ(draws.size(), 5000u);
  std::map<std::string, int> counts;
  for (const std::string& d : draws) counts[d]++;
  // Rank 0 must dominate a deep-tail rank by a wide margin.
  EXPECT_GT(counts["item-0"], counts["item-90"] * 5 + 5);
}

TEST(ProbeListTest, HitRateRespected) {
  Rng rng(7);
  std::vector<std::string> peer;
  for (int i = 0; i < 100; ++i) peer.push_back("peer-" + std::to_string(i));
  std::vector<std::string> probes = MakeProbeList(peer, 40, 0.5, rng);
  ASSERT_EQ(probes.size(), 40u);
  std::set<std::string> peer_set(peer.begin(), peer.end());
  int hits = 0;
  for (const std::string& p : probes) hits += peer_set.count(p);
  EXPECT_EQ(hits, 20);
}

TEST(ProbeListTest, HitsCappedByPeerSize) {
  Rng rng(8);
  std::vector<std::string> peer = {"only-one"};
  std::vector<std::string> probes = MakeProbeList(peer, 10, 1.0, rng);
  ASSERT_EQ(probes.size(), 10u);
  EXPECT_EQ(std::count(probes.begin(), probes.end(), "only-one"), 1);
}

TEST(ProbeListTest, ProbesAreUniqueAtScale) {
  // Regression: filler misses drew a random tag from a space of only
  // 100000, so large probe lists could repeat a tuple and silently
  // shrink the effective probe count below `count`. Every probe —
  // hit or miss — must be distinct.
  Rng rng(10);
  std::vector<std::string> peer;
  for (int i = 0; i < 2000; ++i) peer.push_back("peer-" + std::to_string(i));
  std::vector<std::string> probes = MakeProbeList(peer, 5000, 0.2, rng);
  ASSERT_EQ(probes.size(), 5000u);
  std::set<std::string> unique(probes.begin(), probes.end());
  EXPECT_EQ(unique.size(), probes.size());
}

TEST(ProbeListTest, MissesNeverCollideWithProbeShapedPeerNames) {
  // A peer set may itself contain probe-shaped identifiers; misses must
  // dodge them rather than duplicate them.
  Rng rng(11);
  std::vector<std::string> peer;
  for (int tag = 0; tag < 100000; ++tag) {
    peer.push_back("guess-0-" + std::to_string(tag));
  }
  std::vector<std::string> probes = MakeProbeList(peer, 20, 0.5, rng);
  ASSERT_EQ(probes.size(), 20u);
  std::set<std::string> unique(probes.begin(), probes.end());
  EXPECT_EQ(unique.size(), probes.size());
  // Exactly the requested hits touch the peer set; no miss lands in it
  // by accident.
  std::set<std::string> peer_set(peer.begin(), peer.end());
  int hits = 0;
  for (const std::string& p : probes) hits += peer_set.count(p);
  EXPECT_EQ(hits, 10);
}

TEST(ProbeListTest, ZeroHitRateAllMisses) {
  Rng rng(9);
  std::vector<std::string> peer = {"a", "b", "c"};
  std::vector<std::string> probes = MakeProbeList(peer, 5, 0.0, rng);
  std::set<std::string> peer_set(peer.begin(), peer.end());
  for (const std::string& p : probes) EXPECT_EQ(peer_set.count(p), 0u);
}

}  // namespace
}  // namespace hsis::sim

// The paper's information model: actions are private, so other players
// learn about a cheat only when the auditing device catches it. These
// tests check that (a) the masking works, (b) deterrence still holds —
// rational behavior rests on audits, not on being watched by peers.

#include <gtest/gtest.h>

#include "game/thresholds.h"
#include "sim/repeated_game.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(double frequency, double penalty,
                                  int n = 2) {
  game::NPlayerHonestyGame::Params p;
  p.n = n;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 8;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

/// Records everything it is shown; always honest.
class RecordingAgent final : public Agent {
 public:
  std::string name() const override { return "recorder"; }
  bool ChooseHonest(int, const std::vector<bool>&, int) override {
    return true;
  }
  void Observe(const std::vector<bool>& profile, int, double) override {
    observed_cheats += std::count(profile.begin(), profile.end(), false);
  }
  int64_t observed_cheats = 0;
};

TEST(PartialObservabilityTest, RequiresSampledMode) {
  game::NPlayerHonestyGame g = MakeGame(0.5, 50);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysHonest());
  agents.push_back(MakeAlwaysHonest());
  RepeatedGameConfig config;
  config.observation = ObservationMode::kDetectedCheatsOnly;
  config.mode = PayoffMode::kExpected;
  EXPECT_FALSE(RunRepeatedGame(g, agents, config).ok());
}

TEST(PartialObservabilityTest, UncaughtCheatsInvisible) {
  // f = 0: nothing is ever caught, so the recorder sees zero cheats
  // even against an always-cheater.
  game::NPlayerHonestyGame g = MakeGame(0.0, 50);
  auto recorder = std::make_unique<RecordingAgent>();
  RecordingAgent* view = recorder.get();
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::move(recorder));
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 200;
  config.mode = PayoffMode::kSampled;
  config.observation = ObservationMode::kDetectedCheatsOnly;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(view->observed_cheats, 0);
  EXPECT_EQ(r->total_cheats, 200);  // they really happened
}

TEST(PartialObservabilityTest, CaughtCheatsVisibleAtAuditRate) {
  game::NPlayerHonestyGame g = MakeGame(0.4, 50);
  auto recorder = std::make_unique<RecordingAgent>();
  RecordingAgent* view = recorder.get();
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::move(recorder));
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 5000;
  config.seed = 3;
  config.mode = PayoffMode::kSampled;
  config.observation = ObservationMode::kDetectedCheatsOnly;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(static_cast<double>(view->observed_cheats) / 5000, 0.4, 0.03);
}

TEST(PartialObservabilityTest, GrimTriggerBlindToUncaughtCheats) {
  // With f = 0, a grim trigger never fires: peer punishment cannot
  // substitute for auditing when cheats are invisible — the structural
  // reason the paper needs a device rather than social enforcement.
  game::NPlayerHonestyGame g = MakeGame(0.0, 0);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeGrimTrigger());
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 100;
  config.mode = PayoffMode::kSampled;
  config.observation = ObservationMode::kDetectedCheatsOnly;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  // The trigger agent stayed honest the whole time (never saw a cheat).
  EXPECT_EQ(r->honest_counts.back(), 1);
  for (int count : r->honest_counts) EXPECT_EQ(count, 1);
}

TEST(PartialObservabilityTest, QLearnersStillDeterredByAudits) {
  // Deterrence must survive partial observability: Q-learners act on
  // their own sampled payoffs, which do include penalties when caught.
  double p_star = game::CriticalPenalty(10, 25, 0.5);
  game::NPlayerHonestyGame g = MakeGame(0.5, p_star * 3);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeEpsilonGreedy(71, 0.5, 0.995, 0.15));
  agents.push_back(MakeEpsilonGreedy(72, 0.5, 0.995, 0.15));
  RepeatedGameConfig config;
  config.rounds = 1500;
  config.seed = 8;
  config.mode = PayoffMode::kSampled;
  config.observation = ObservationMode::kDetectedCheatsOnly;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->honesty_rate_final, 0.8);
}

TEST(PartialObservabilityTest, SelfActionAlwaysVisibleToSelf) {
  // An agent's own view keeps its true action even when masked for
  // others: a grim trigger that cheats (via composition) must not
  // trigger on itself. Use tit-for-tat vs always-cheat at f = 0:
  // tit-for-tat sees "honest" forever and stays honest.
  game::NPlayerHonestyGame g = MakeGame(0.0, 0);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeTitForTat());
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 50;
  config.mode = PayoffMode::kSampled;
  config.observation = ObservationMode::kDetectedCheatsOnly;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  for (int count : r->honest_counts) EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace hsis::sim

#include "sim/tournament.h"

#include <gtest/gtest.h>

#include "game/thresholds.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(double penalty, double frequency = 0.3) {
  game::NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 8;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

const TournamentStanding* Find(const std::vector<TournamentStanding>& s,
                               const std::string& name) {
  for (const TournamentStanding& entry : s) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

TEST(TournamentTest, Validation) {
  game::NPlayerHonestyGame g = MakeGame(0);
  TournamentConfig config;
  EXPECT_FALSE(RunRoundRobinTournament(g, {}, config).ok());

  game::NPlayerHonestyGame::Params p3;
  p3.n = 3;
  p3.benefit = 10;
  p3.gain = game::LinearGain(25, 0);
  p3.frequency = 0.3;
  p3.penalty = 0;
  p3.uniform_loss = 8;
  game::NPlayerHonestyGame three =
      std::move(game::NPlayerHonestyGame::Create(p3).value());
  EXPECT_FALSE(
      RunRoundRobinTournament(three, StandardLineup(&three), config).ok());
}

TEST(TournamentTest, EveryPairPlaysOnce) {
  game::NPlayerHonestyGame g = MakeGame(0);
  auto lineup = StandardLineup(&g);
  TournamentConfig config;
  config.rounds_per_match = 50;
  auto standings =
      std::move(RunRoundRobinTournament(g, lineup, config).value());
  ASSERT_EQ(standings.size(), lineup.size());
  // Each strategy plays every other once plus itself (self-match counts
  // both seats): n-1 cross matches + 2 self seats... each standing's
  // match counter counts seats: (n-1) + 2.
  for (const TournamentStanding& s : standings) {
    EXPECT_EQ(s.matches, static_cast<int>(lineup.size()) + 1) << s.name;
  }
}

TEST(TournamentTest, CheatersWinWithoutDeterrence) {
  // No audits: exploiting honest opponents pays; always-cheat must beat
  // always-honest.
  game::NPlayerHonestyGame g = MakeGame(0, 0.0);
  TournamentConfig config;
  config.rounds_per_match = 100;
  auto standings = std::move(
      RunRoundRobinTournament(g, StandardLineup(&g), config).value());
  const auto* cheat = Find(standings, "always-cheat");
  const auto* honest = Find(standings, "always-honest");
  ASSERT_TRUE(cheat != nullptr && honest != nullptr);
  EXPECT_GT(cheat->total_payoff, honest->total_payoff);
}

TEST(TournamentTest, DeterrenceInvertsTheRanking) {
  // Transformative device: always-cheat pays fines in every match and
  // sinks to the bottom; honest cooperators rise to the top.
  double p_star = game::CriticalPenalty(10, 25, 0.3);
  game::NPlayerHonestyGame g = MakeGame(p_star * 2);
  TournamentConfig config;
  config.rounds_per_match = 100;
  auto standings = std::move(
      RunRoundRobinTournament(g, StandardLineup(&g), config).value());
  EXPECT_EQ(standings.back().name, "always-cheat");
  const auto* honest = Find(standings, "always-honest");
  const auto* cheat = Find(standings, "always-cheat");
  ASSERT_TRUE(honest != nullptr && cheat != nullptr);
  EXPECT_GT(honest->total_payoff, cheat->total_payoff);
  // Best-responders behave honestly here, matching the honest payoffs.
  const auto* br = Find(standings, "best-response");
  ASSERT_TRUE(br != nullptr);
  EXPECT_NEAR(br->average_payoff_per_round, honest->average_payoff_per_round,
              1.0);
}

TEST(TournamentTest, StandingsAreSortedAndAveraged) {
  game::NPlayerHonestyGame g = MakeGame(40);
  TournamentConfig config;
  config.rounds_per_match = 60;
  auto standings = std::move(
      RunRoundRobinTournament(g, StandardLineup(&g), config).value());
  for (size_t i = 1; i < standings.size(); ++i) {
    EXPECT_GE(standings[i - 1].total_payoff, standings[i].total_payoff);
  }
  for (const TournamentStanding& s : standings) {
    EXPECT_NEAR(s.average_payoff_per_round,
                s.total_payoff / (s.matches * 60.0), 1e-9);
  }
}

}  // namespace
}  // namespace hsis::sim

// Determinism suite for the parallel tournament and evolutionary
// ensemble: bit-identical standings/replicates at threads = 1, 2, and
// hardware concurrency, plus a golden test pinning the tournament to
// the exact payoffs the pre-parallelism serial implementation produced
// (seeds advance 3 per pairing in enumeration order; standings
// accumulate in enumeration order).

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>

#include "game/thresholds.h"
#include "sim/evolutionary.h"
#include "sim/tournament.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(double penalty, double frequency) {
  game::NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 8;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

const TournamentStanding* Find(const std::vector<TournamentStanding>& s,
                               const std::string& name) {
  for (const TournamentStanding& entry : s) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

uint64_t Bits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

TEST(ParallelTournamentTest, BitIdenticalAcrossThreadCounts) {
  game::NPlayerHonestyGame g = MakeGame(30, 0.4);
  TournamentConfig config;
  config.rounds_per_match = 120;
  config.mode = PayoffMode::kSampled;
  config.seed = 20260806;

  config.threads = 1;
  auto serial = RunRoundRobinTournament(g, StandardLineup(&g), config);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 0}) {
    config.threads = threads;
    auto parallel = RunRoundRobinTournament(g, StandardLineup(&g), config);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i].name, (*parallel)[i].name) << i;
      EXPECT_EQ(Bits((*serial)[i].total_payoff),
                Bits((*parallel)[i].total_payoff))
          << (*serial)[i].name;
      EXPECT_EQ(Bits((*serial)[i].average_payoff_per_round),
                Bits((*parallel)[i].average_payoff_per_round))
          << (*serial)[i].name;
      EXPECT_EQ((*serial)[i].matches, (*parallel)[i].matches) << i;
    }
  }
}

TEST(ParallelTournamentTest, MatchesPreParallelSerialGolden) {
  // Total payoffs (value and IEEE-754 bit pattern) recorded from the
  // serial implementation before the sweep engine existed, with this
  // exact game/config. Any change to seed derivation or accumulation
  // order shows up here.
  game::NPlayerHonestyGame g = MakeGame(30, 0.4);
  TournamentConfig config;
  config.rounds_per_match = 120;
  config.mode = PayoffMode::kSampled;
  config.seed = 20260806;

  struct Golden {
    const char* name;
    double total_payoff;
    uint64_t payoff_bits;
  };
  const Golden kGolden[] = {
      {"always-honest", 10056, 0x40c3a40000000000ULL},
      {"fictitious-play", 10056, 0x40c3a40000000000ULL},
      {"best-response", 10000, 0x40c3880000000000ULL},
      {"tit-for-tat", 9523, 0x40c2998000000000ULL},
      {"pavlov", 9449, 0x40c2748000000000ULL},
      {"grim-trigger", 8035, 0x40bf630000000000ULL},
      {"epsilon-greedy-q", 7706, 0x40be1a0000000000ULL},
      {"always-cheat", 1743, 0x409b3c0000000000ULL},
  };

  for (int threads : {1, 2, 0}) {
    config.threads = threads;
    auto standings = RunRoundRobinTournament(g, StandardLineup(&g), config);
    ASSERT_TRUE(standings.ok());
    ASSERT_EQ(standings->size(), std::size(kGolden));
    for (const Golden& golden : kGolden) {
      const TournamentStanding* entry = Find(*standings, golden.name);
      ASSERT_NE(entry, nullptr) << golden.name;
      EXPECT_EQ(Bits(entry->total_payoff), golden.payoff_bits)
          << golden.name << " expected " << golden.total_payoff << " got "
          << entry->total_payoff << " (threads=" << threads << ")";
    }
  }
}

TEST(MoranEnsembleTest, BitIdenticalAcrossThreadCounts) {
  game::NPlayerHonestyGame g = MakeGame(20, 0.3);
  auto serial = RunMoranEnsemble(g, 30, 15, 0.0, 50000, 64, 99, 1);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 0}) {
    auto parallel = RunMoranEnsemble(g, 30, 15, 0.0, 50000, 64, 99, threads);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->replicates.size(), parallel->replicates.size());
    for (size_t r = 0; r < serial->replicates.size(); ++r) {
      EXPECT_EQ(Bits(serial->replicates[r].final_honest_fraction),
                Bits(parallel->replicates[r].final_honest_fraction))
          << r;
      EXPECT_EQ(serial->replicates[r].steps, parallel->replicates[r].steps)
          << r;
      EXPECT_EQ(serial->replicates[r].fixated_honest,
                parallel->replicates[r].fixated_honest)
          << r;
    }
    EXPECT_EQ(Bits(serial->honest_fixation_rate),
              Bits(parallel->honest_fixation_rate));
    EXPECT_EQ(Bits(serial->mean_final_honest_fraction),
              Bits(parallel->mean_final_honest_fraction));
  }
}

TEST(MoranEnsembleTest, TransformativeRegimeFixatesHonest) {
  // P = 60 at f = 0.4 is deep in the transformative region for
  // B=10, F=25 (P* = (0.6*25-10)/0.4 = 12.5): selection should carry
  // honesty to fixation in nearly every replicate.
  game::NPlayerHonestyGame g = MakeGame(60, 0.4);
  auto ensemble = RunMoranEnsemble(g, 40, 20, 0.0, 200000, 48, 7, 0);
  ASSERT_TRUE(ensemble.ok());
  EXPECT_GT(ensemble->honest_fixation_rate, 0.8);

  // No audit regime: cheating should dominate.
  game::NPlayerHonestyGame no_audit = MakeGame(0, 0.0);
  auto cheat_ensemble = RunMoranEnsemble(no_audit, 40, 20, 0.0, 200000, 48, 7, 0);
  ASSERT_TRUE(cheat_ensemble.ok());
  EXPECT_GT(cheat_ensemble->cheat_fixation_rate, 0.8);
}

TEST(MoranEnsembleTest, Validation) {
  game::NPlayerHonestyGame g = MakeGame(20, 0.3);
  EXPECT_FALSE(RunMoranEnsemble(g, 30, 15, 0.0, 1000, 0, 1, 1).ok());
  EXPECT_FALSE(RunMoranEnsemble(g, 1, 0, 0.0, 1000, 4, 1, 1).ok());
}

}  // namespace
}  // namespace hsis::sim

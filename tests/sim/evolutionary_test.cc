#include "sim/evolutionary.h"

#include <gtest/gtest.h>

#include "game/thresholds.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(double penalty, double frequency = 0.3,
                                  double loss = 8) {
  game::NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = loss;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

double PStar() { return game::CriticalPenalty(10, 25, 0.3); }

TEST(MeanFieldTest, EndpointsMatchGameCells) {
  game::NPlayerHonestyGame g = MakeGame(40);
  MeanFieldPayoffs at_one = MeanFieldAt(g, 1.0);
  EXPECT_DOUBLE_EQ(at_one.honest, g.Payoff({true, true}, 0));
  EXPECT_DOUBLE_EQ(at_one.cheat, g.Payoff({false, true}, 0));
  MeanFieldPayoffs at_zero = MeanFieldAt(g, 0.0);
  EXPECT_DOUBLE_EQ(at_zero.honest, g.Payoff({true, false}, 0));
  EXPECT_DOUBLE_EQ(at_zero.cheat, g.Payoff({false, false}, 0));
}

TEST(EvolutionaryStabilityTest, MatchesDeviceClassification) {
  // In this constant-F game the cheat advantage is p-independent, so
  // evolutionary stability of honesty coincides with transformativeness.
  EXPECT_TRUE(HonestyIsEvolutionarilyStable(MakeGame(PStar() * 1.2)));
  EXPECT_FALSE(HonestyIsEvolutionarilyStable(MakeGame(PStar() * 0.8)));
}

TEST(ReplicatorTest, HonestyFixatesAboveThreshold) {
  game::NPlayerHonestyGame g = MakeGame(PStar() * 1.5);
  ReplicatorResult r =
      std::move(RunReplicatorDynamics(g, 0.5, 2000).value());
  EXPECT_TRUE(r.fixated_honest);
  EXPECT_FALSE(r.fixated_cheat);
  // Trajectory is monotone toward honesty.
  for (size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_GE(r.trajectory[i], r.trajectory[i - 1] - 1e-12);
  }
}

TEST(ReplicatorTest, CheatingFixatesBelowThreshold) {
  game::NPlayerHonestyGame g = MakeGame(PStar() * 0.5);
  ReplicatorResult r =
      std::move(RunReplicatorDynamics(g, 0.9, 4000).value());
  EXPECT_TRUE(r.fixated_cheat);
}

TEST(ReplicatorTest, BoundaryFractionsAreFixedPoints) {
  game::NPlayerHonestyGame g = MakeGame(0);
  ReplicatorResult all_honest =
      std::move(RunReplicatorDynamics(g, 1.0, 50).value());
  EXPECT_DOUBLE_EQ(all_honest.final_fraction, 1.0);  // no cheats to copy
  ReplicatorResult all_cheat =
      std::move(RunReplicatorDynamics(g, 0.0, 50).value());
  EXPECT_DOUBLE_EQ(all_cheat.final_fraction, 0.0);
}

TEST(ReplicatorTest, Validation) {
  game::NPlayerHonestyGame g = MakeGame(0);
  EXPECT_FALSE(RunReplicatorDynamics(g, -0.1, 10).ok());
  EXPECT_FALSE(RunReplicatorDynamics(g, 0.5, 0).ok());

  game::NPlayerHonestyGame::Params p3;
  p3.n = 3;
  p3.benefit = 10;
  p3.gain = game::LinearGain(25, 0);
  p3.frequency = 0.3;
  p3.uniform_loss = 8;
  game::NPlayerHonestyGame three =
      std::move(game::NPlayerHonestyGame::Create(p3).value());
  EXPECT_FALSE(RunReplicatorDynamics(three, 0.5, 10).ok());
}

TEST(MoranTest, SelectionFavorsHonestyUnderDeterrence) {
  game::NPlayerHonestyGame g = MakeGame(PStar() * 2);
  Rng rng(5);
  int honest_fixations = 0;
  for (int trial = 0; trial < 20; ++trial) {
    MoranResult r = std::move(
        RunMoranProcess(g, 40, 20, 0.0, 1000000, rng).value());
    EXPECT_TRUE(r.fixated_honest || r.fixated_cheat);
    honest_fixations += r.fixated_honest;
  }
  EXPECT_GE(honest_fixations, 16);  // selection strongly favors honesty
}

TEST(MoranTest, SelectionFavorsCheatingWithoutDeterrence) {
  game::NPlayerHonestyGame g = MakeGame(0);
  Rng rng(6);
  int cheat_fixations = 0;
  for (int trial = 0; trial < 20; ++trial) {
    MoranResult r = std::move(
        RunMoranProcess(g, 40, 20, 0.0, 1000000, rng).value());
    cheat_fixations += r.fixated_cheat;
  }
  EXPECT_GE(cheat_fixations, 16);
}

TEST(MoranTest, MutationPreventsAbsorption) {
  game::NPlayerHonestyGame g = MakeGame(PStar() * 2);
  Rng rng(7);
  MoranResult r = std::move(
      RunMoranProcess(g, 30, 15, 0.05, 20000, rng).value());
  EXPECT_EQ(r.steps, 20000);
  EXPECT_FALSE(r.fixated_honest && r.fixated_cheat);
  // Mutation-selection balance keeps honesty high but not fixed.
  EXPECT_GT(r.final_honest_fraction, 0.5);
}

TEST(MoranTest, Validation) {
  game::NPlayerHonestyGame g = MakeGame(0);
  Rng rng(8);
  EXPECT_FALSE(RunMoranProcess(g, 1, 0, 0, 100, rng).ok());
  EXPECT_FALSE(RunMoranProcess(g, 10, 11, 0, 100, rng).ok());
  EXPECT_FALSE(RunMoranProcess(g, 10, 5, 1.5, 100, rng).ok());
}

}  // namespace
}  // namespace hsis::sim

#include "sim/agent.h"

#include <gtest/gtest.h>

#include "game/thresholds.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(double penalty, double frequency = 0.3,
                                  int n = 2) {
  game::NPlayerHonestyGame::Params p;
  p.n = n;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);  // constant F = 25
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 8;
  Result<game::NPlayerHonestyGame> g = game::NPlayerHonestyGame::Create(p);
  EXPECT_TRUE(g.ok());
  return *g;
}

TEST(AgentTest, AlwaysHonestAndAlwaysCheat) {
  auto honest = MakeAlwaysHonest();
  auto cheat = MakeAlwaysCheat();
  std::vector<bool> any = {true, false};
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(honest->ChooseHonest(round, any, 0));
    EXPECT_FALSE(cheat->ChooseHonest(round, any, 0));
  }
}

TEST(AgentTest, BestResponseCheatsWhenProfitable) {
  // Low penalty: cheating dominates -> agent cheats after observing.
  game::NPlayerHonestyGame g = MakeGame(/*penalty=*/0);
  auto agent = MakeBestResponse(&g);
  EXPECT_TRUE(agent->ChooseHonest(0, {}, 0));  // starts honest
  EXPECT_FALSE(agent->ChooseHonest(1, {true, true}, 0));
}

TEST(AgentTest, BestResponseHonestWhenDeterred) {
  // Penalty above the critical value: honesty dominates.
  double p_star = game::CriticalPenalty(10, 25, 0.3);
  game::NPlayerHonestyGame g = MakeGame(p_star + 1);
  auto agent = MakeBestResponse(&g);
  EXPECT_TRUE(agent->ChooseHonest(1, {true, true}, 0));
  EXPECT_TRUE(agent->ChooseHonest(1, {false, false}, 0));
}

TEST(AgentTest, FictitiousPlayLearnsOpponentBehavior) {
  game::NPlayerHonestyGame g = MakeGame(/*penalty=*/0);
  auto agent = MakeFictitiousPlay(&g, 42);
  // Feed many rounds of an all-honest opponent; with zero penalty the
  // belief-based best response is to cheat.
  for (int i = 0; i < 50; ++i) agent->Observe({true, true}, 0, 10);
  EXPECT_FALSE(agent->ChooseHonest(51, {true, true}, 0));
}

TEST(AgentTest, FictitiousPlayHonestUnderDeterrence) {
  double p_star = game::CriticalPenalty(10, 25, 0.3);
  game::NPlayerHonestyGame g = MakeGame(p_star + 5);
  auto agent = MakeFictitiousPlay(&g, 42);
  for (int i = 0; i < 50; ++i) agent->Observe({true, true}, 0, 10);
  EXPECT_TRUE(agent->ChooseHonest(51, {true, true}, 0));
}

TEST(AgentTest, GrimTriggerTriggersForever) {
  auto agent = MakeGrimTrigger();
  EXPECT_TRUE(agent->ChooseHonest(0, {}, 0));
  agent->Observe({true, true}, 0, 10);
  EXPECT_TRUE(agent->ChooseHonest(1, {true, true}, 0));
  agent->Observe({true, false}, 0, 2);  // opponent cheated
  EXPECT_FALSE(agent->ChooseHonest(2, {true, false}, 0));
  agent->Observe({false, true}, 0, 25);  // opponent honest again...
  EXPECT_FALSE(agent->ChooseHonest(3, {false, true}, 0));  // ...no forgiveness
}

TEST(AgentTest, GrimTriggerIgnoresOwnCheat) {
  auto agent = MakeGrimTrigger();
  agent->Observe({false, true}, 0, 25);  // own cheat (index 0)
  EXPECT_TRUE(agent->ChooseHonest(1, {false, true}, 0));
}

TEST(AgentTest, TitForTatMirrors) {
  auto agent = MakeTitForTat();
  EXPECT_TRUE(agent->ChooseHonest(0, {}, 0));
  EXPECT_FALSE(agent->ChooseHonest(1, {true, false}, 0));
  EXPECT_TRUE(agent->ChooseHonest(2, {false, true}, 0));  // forgives
}

TEST(AgentTest, EpsilonGreedyLearnsFromPayoffs) {
  // Reward honesty heavily, punish cheating: Q should converge to honest.
  auto agent = MakeEpsilonGreedy(7, 0.3, 0.98, 0.2);
  Rng rng(1);
  for (int round = 0; round < 300; ++round) {
    bool honest = agent->ChooseHonest(round, {true, true}, 0);
    agent->Observe({honest, true}, 0, honest ? 10.0 : -50.0);
  }
  int honest_choices = 0;
  for (int round = 300; round < 320; ++round) {
    honest_choices += agent->ChooseHonest(round, {true, true}, 0);
  }
  EXPECT_GE(honest_choices, 18);
}

TEST(AgentTest, EpsilonGreedyLearnsToCheatWhenProfitable) {
  auto agent = MakeEpsilonGreedy(11, 0.5, 0.995, 0.2);
  for (int round = 0; round < 300; ++round) {
    bool honest = agent->ChooseHonest(round, {true, true}, 0);
    agent->Observe({honest, true}, 0, honest ? 10.0 : 25.0);
  }
  int cheat_choices = 0;
  for (int round = 300; round < 320; ++round) {
    cheat_choices += !agent->ChooseHonest(round, {true, true}, 0);
  }
  EXPECT_GE(cheat_choices, 18);
}

TEST(AgentTest, NamesAreStable) {
  game::NPlayerHonestyGame g = MakeGame(0);
  EXPECT_EQ(MakeAlwaysHonest()->name(), "always-honest");
  EXPECT_EQ(MakeAlwaysCheat()->name(), "always-cheat");
  EXPECT_EQ(MakeBestResponse(&g)->name(), "best-response");
  EXPECT_EQ(MakeFictitiousPlay(&g, 1)->name(), "fictitious-play");
  EXPECT_EQ(MakeEpsilonGreedy(1)->name(), "epsilon-greedy-q");
  EXPECT_EQ(MakeGrimTrigger()->name(), "grim-trigger");
  EXPECT_EQ(MakeTitForTat()->name(), "tit-for-tat");
}

}  // namespace
}  // namespace hsis::sim

// Ties the folk-theorem analysis (game/repeated_analysis.h) to the
// simulator: discounted payoff streams measured in simulation match the
// closed-form value functions.

#include <gtest/gtest.h>

#include "game/repeated_analysis.h"
#include "sim/repeated_game.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame NoAuditGame(double loss) {
  game::NPlayerHonestyGame::Params p;
  p.n = 2;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 0);
  p.frequency = 0;
  p.penalty = 0;
  p.uniform_loss = loss;
  return std::move(game::NPlayerHonestyGame::Create(p).value());
}

TEST(DiscountedGameTest, HonestStreamMatchesClosedForm) {
  game::NPlayerHonestyGame g = NoAuditGame(20);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysHonest());
  agents.push_back(MakeAlwaysHonest());
  RepeatedGameConfig config;
  config.rounds = 400;  // delta^400 is negligible at 0.9
  config.discount = 0.9;
  RepeatedGameResult r =
      std::move(RunRepeatedGame(g, agents, config).value());
  EXPECT_NEAR(r.discounted_payoffs[0],
              game::DiscountedValue(10, 0.9), 1e-6);
}

TEST(DiscountedGameTest, DeviationStreamMatchesClosedForm) {
  // Grim trigger vs a one-shot defector who then (rationally, after the
  // trigger) cheats forever: always-cheat against grim trigger realizes
  // exactly the DeviationValue stream from round 0.
  game::NPlayerHonestyGame g = NoAuditGame(20);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysCheat());
  agents.push_back(MakeGrimTrigger());
  RepeatedGameConfig config;
  config.rounds = 400;
  config.discount = 0.9;
  RepeatedGameResult r =
      std::move(RunRepeatedGame(g, agents, config).value());

  // Round 0: cheater gets F = 25 (opponent honest). After that the
  // trigger fires: both cheat, cheater gets F - L = 5 forever.
  double expected = game::DeviationValue(25, 5, 0.9);
  EXPECT_NEAR(r.discounted_payoffs[0], expected, 1e-6);
}

TEST(DiscountedGameTest, PatienceDecidesWhichStreamWins) {
  // L = 20 gives delta* = (F-B)/L = 0.75: honesty's stream wins above,
  // loses below — measured in simulation, matching CriticalDiscount.
  double d_star = game::CriticalDiscount(10, 25, 20);
  ASSERT_DOUBLE_EQ(d_star, 0.75);
  game::NPlayerHonestyGame g = NoAuditGame(20);

  for (double delta : {0.6, 0.9}) {
    auto run = [&](bool deviate) {
      std::vector<std::unique_ptr<Agent>> agents;
      agents.push_back(deviate ? MakeAlwaysCheat() : MakeAlwaysHonest());
      agents.push_back(MakeGrimTrigger());
      RepeatedGameConfig config;
      config.rounds = 600;
      config.discount = delta;
      return RunRepeatedGame(g, agents, config)->discounted_payoffs[0];
    };
    double honest_value = run(false);
    double deviate_value = run(true);
    if (delta > d_star) {
      EXPECT_GT(honest_value, deviate_value) << delta;
    } else {
      EXPECT_LT(honest_value, deviate_value) << delta;
    }
  }
}

TEST(DiscountedGameTest, UndiscountedDefaultMatchesCumulative) {
  game::NPlayerHonestyGame g = NoAuditGame(8);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysHonest());
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 50;
  RepeatedGameResult r =
      std::move(RunRepeatedGame(g, agents, config).value());
  EXPECT_DOUBLE_EQ(r.discounted_payoffs[0], r.cumulative_payoffs[0]);
  EXPECT_DOUBLE_EQ(r.discounted_payoffs[1], r.cumulative_payoffs[1]);
}

TEST(DiscountedGameTest, RejectsBadDiscount) {
  game::NPlayerHonestyGame g = NoAuditGame(8);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysHonest());
  agents.push_back(MakeAlwaysHonest());
  RepeatedGameConfig config;
  config.discount = 1.5;
  EXPECT_FALSE(RunRepeatedGame(g, agents, config).ok());
}

}  // namespace
}  // namespace hsis::sim

#include "sim/repeated_game.h"

#include <gtest/gtest.h>

#include "game/thresholds.h"

namespace hsis::sim {
namespace {

game::NPlayerHonestyGame MakeGame(int n, double penalty,
                                  double frequency = 0.3) {
  game::NPlayerHonestyGame::Params p;
  p.n = n;
  p.benefit = 10;
  p.gain = game::LinearGain(25, 1);
  p.frequency = frequency;
  p.penalty = penalty;
  p.uniform_loss = 4;
  Result<game::NPlayerHonestyGame> g = game::NPlayerHonestyGame::Create(p);
  EXPECT_TRUE(g.ok());
  return *g;
}

std::vector<std::unique_ptr<Agent>> BestResponders(
    const game::NPlayerHonestyGame& g) {
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < g.n(); ++i) agents.push_back(MakeBestResponse(&g));
  return agents;
}

TEST(RepeatedGameTest, ValidatesInput) {
  game::NPlayerHonestyGame g = MakeGame(2, 0);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysHonest());  // one agent for 2 players
  RepeatedGameConfig config;
  EXPECT_FALSE(RunRepeatedGame(g, agents, config).ok());

  agents.push_back(MakeAlwaysHonest());
  config.rounds = 0;
  EXPECT_FALSE(RunRepeatedGame(g, agents, config).ok());
}

TEST(RepeatedGameTest, BestRespondersConvergeToCheatWithoutDeterrence) {
  // Observation 1 via dynamics: with an ineffective device the rational
  // population ends up at all-cheat.
  game::NPlayerHonestyGame g = MakeGame(2, /*penalty=*/0);
  auto agents = BestResponders(g);
  RepeatedGameConfig config;
  config.rounds = 100;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_EQ(r->final_profile, std::vector<bool>({false, false}));
  EXPECT_DOUBLE_EQ(r->honesty_rate_final, 0.0);
}

TEST(RepeatedGameTest, BestRespondersStayHonestWhenTransformative) {
  double p_needed = game::NPlayerPenaltyBound(10, game::LinearGain(25, 1),
                                              0.3, /*honest_others=*/1);
  game::NPlayerHonestyGame g = MakeGame(2, p_needed + 1);
  auto agents = BestResponders(g);
  RepeatedGameConfig config;
  config.rounds = 100;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_EQ(r->final_profile, std::vector<bool>({true, true}));
  EXPECT_DOUBLE_EQ(r->honesty_rate_final, 1.0);
  EXPECT_EQ(r->convergence_round, 0);  // honest from the start
}

TEST(RepeatedGameTest, TenPlayerPopulationConverges) {
  const int n = 10;
  double p_needed =
      game::NPlayerPenaltyBound(10, game::LinearGain(25, 1), 0.3, n - 1);
  game::NPlayerHonestyGame deterred = MakeGame(n, p_needed + 1);
  auto agents = BestResponders(deterred);
  RepeatedGameConfig config;
  config.rounds = 200;
  Result<RepeatedGameResult> r = RunRepeatedGame(deterred, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->honesty_rate_final, 1.0);

  game::NPlayerHonestyGame lax = MakeGame(n, 0);
  auto lax_agents = BestResponders(lax);
  Result<RepeatedGameResult> r2 = RunRepeatedGame(lax, lax_agents, config);
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->honesty_rate_final, 0.0);
}

TEST(RepeatedGameTest, SampledModeMatchesExpectedOnAverage) {
  game::NPlayerHonestyGame g = MakeGame(2, 30, 0.4);
  // Fixed all-cheat agents: compare empirical mean payoff with eq. (1).
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysCheat());
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 20000;
  config.mode = PayoffMode::kSampled;
  config.seed = 7;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());

  double expected = g.Payoff({false, false}, 0);
  double empirical = r->cumulative_payoffs[0] / config.rounds;
  EXPECT_NEAR(empirical, expected, 0.5);

  // Caught fraction tracks the audit frequency.
  EXPECT_EQ(r->total_cheats, 2 * config.rounds);
  EXPECT_NEAR(static_cast<double>(r->caught_cheats) / r->total_cheats, 0.4,
              0.02);
}

TEST(RepeatedGameTest, SampledModeDetectsNoCheatsWhenHonest) {
  game::NPlayerHonestyGame g = MakeGame(2, 30);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeAlwaysHonest());
  agents.push_back(MakeAlwaysHonest());
  RepeatedGameConfig config;
  config.rounds = 100;
  config.mode = PayoffMode::kSampled;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_cheats, 0);
  EXPECT_EQ(r->caught_cheats, 0);
  EXPECT_DOUBLE_EQ(r->cumulative_payoffs[0], 100 * 10.0);
}

TEST(RepeatedGameTest, GrimTriggerPunishesDefector) {
  game::NPlayerHonestyGame g = MakeGame(2, 0);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeGrimTrigger());
  agents.push_back(MakeAlwaysCheat());
  RepeatedGameConfig config;
  config.rounds = 50;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  // Grim trigger was honest round 0, then cheats forever.
  EXPECT_EQ(r->honest_counts[0], 1);
  EXPECT_EQ(r->honest_counts[1], 0);
  EXPECT_EQ(r->final_profile, std::vector<bool>({false, false}));
}

TEST(RepeatedGameTest, FictitiousPlayConvergesUnderDeterrence) {
  double p_needed = game::NPlayerPenaltyBound(10, game::LinearGain(25, 1),
                                              0.3, /*honest_others=*/2);
  game::NPlayerHonestyGame g = MakeGame(3, p_needed + 1);
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < 3; ++i) agents.push_back(MakeFictitiousPlay(&g, 100 + static_cast<uint64_t>(i)));
  RepeatedGameConfig config;
  config.rounds = 150;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->honesty_rate_final, 1.0);
}

TEST(RepeatedGameTest, QLearnersFindHonestyWhenCheatingPunished) {
  // High frequency + heavy penalty: Q-learners should mostly settle on
  // honesty from pure payoff feedback.
  game::NPlayerHonestyGame g = MakeGame(2, 200, 0.8);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(MakeEpsilonGreedy(31, 0.3, 0.99, 0.15));
  agents.push_back(MakeEpsilonGreedy(32, 0.3, 0.99, 0.15));
  RepeatedGameConfig config;
  config.rounds = 800;
  config.mode = PayoffMode::kSampled;
  config.seed = 5;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->honesty_rate_final, 0.8);
}

TEST(RepeatedGameTest, HonestCountsTraceLengthMatchesRounds) {
  game::NPlayerHonestyGame g = MakeGame(2, 0);
  auto agents = BestResponders(g);
  RepeatedGameConfig config;
  config.rounds = 37;
  Result<RepeatedGameResult> r = RunRepeatedGame(g, agents, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->honest_counts.size(), 37u);
}

}  // namespace
}  // namespace hsis::sim

// Golden reproduction claims: the headline numbers recorded in
// EXPERIMENTS.md, pinned as tests so the documented results cannot
// silently drift from the code.

#include <gtest/gtest.h>

#include "game/equilibrium.h"
#include "game/landscape.h"
#include "game/repeated_analysis.h"
#include "game/reward_mechanism.h"
#include "game/thresholds.h"
#include "sim/repeated_game.h"

namespace hsis {
namespace {

using namespace hsis::game;

// The canonical bench instance: B = 10, F = 25, L = 8.
constexpr double kB = 10, kF = 25, kL = 8;

TEST(ReproductionClaims, Table1Cells) {
  NormalFormGame g = std::move(MakeNoAuditGame(kB, kF, kL).value());
  EXPECT_DOUBLE_EQ(g.Payoff({0, 0}, 0), 10);
  EXPECT_DOUBLE_EQ(g.Payoff({0, 1}, 0), 2);
  EXPECT_DOUBLE_EQ(g.Payoff({0, 1}, 1), 25);
  EXPECT_DOUBLE_EQ(g.Payoff({1, 1}, 0), 17);
}

TEST(ReproductionClaims, Figure1CrossoverAt02308) {
  EXPECT_NEAR(CriticalFrequency(kB, kF, /*penalty=*/40), 0.2308, 5e-5);
}

TEST(ReproductionClaims, Figure2CrossoverAt50) {
  EXPECT_DOUBLE_EQ(CriticalPenalty(kB, kF, /*frequency=*/0.2), 50.0);
}

TEST(ReproductionClaims, ZeroPenaltyFrequencyAt06) {
  EXPECT_DOUBLE_EQ(ZeroPenaltyFrequency(kB, kF), 0.6);
}

TEST(ReproductionClaims, Figure3BoundariesAt04) {
  // The bench instance: (B1=10, F1=30, P1=20) and (B2=6, F2=20, P2=15).
  EXPECT_DOUBLE_EQ(CriticalFrequency(10, 30, 20), 0.4);
  EXPECT_DOUBLE_EQ(CriticalFrequency(6, 20, 15), 0.4);
}

TEST(ReproductionClaims, Figure4BandEdges) {
  // n = 8, F(x) = 20 + 2x, f = 0.3: Proposition 2 edge at x = 0 and
  // Proposition 1 edge at x = 7.
  GainFunction gain = LinearGain(20, 2);
  EXPECT_NEAR(NPlayerPenaltyBound(kB, gain, 0.3, 0), (0.7 * 20 - 10) / 0.3,
              1e-9);
  EXPECT_NEAR(NPlayerPenaltyBound(kB, gain, 0.3, 7), (0.7 * 34 - 10) / 0.3,
              1e-9);
}

TEST(ReproductionClaims, EveryFigureSweepIsMismatchFree) {
  auto frequency_rows = std::move(SweepFrequency(kB, kF, kL, 40, 51).value());
  for (const auto& row : frequency_rows) {
    ASSERT_TRUE(row.analytic_matches_enumeration);
  }
  auto penalty_rows =
      std::move(SweepPenalty(kB, kF, kL, 0.2, 100, 51).value());
  for (const auto& row : penalty_rows) {
    ASSERT_TRUE(row.analytic_matches_enumeration);
  }
  TwoPlayerGameParams params;
  params.player1 = {10, 30};
  params.player2 = {6, 20};
  params.loss_to_1 = 4;
  params.loss_to_2 = 9;
  params.audit1 = {0, 20};
  params.audit2 = {0, 15};
  auto cells = std::move(SweepAsymmetricGrid(params, 13).value());
  for (const auto& cell : cells) {
    ASSERT_TRUE(cell.analytic_matches_enumeration);
  }
  NPlayerHonestyGame::Params np;
  np.n = 8;
  np.benefit = kB;
  np.gain = LinearGain(20, 2);
  np.frequency = 0.3;
  np.uniform_loss = 4;
  double top = NPlayerPenaltyBound(kB, np.gain, 0.3, 7);
  auto band_rows = std::move(SweepNPlayerPenalty(np, top * 1.2, 51).value());
  for (const auto& row : band_rows) {
    ASSERT_TRUE(row.analytic_matches_enumeration);
  }
}

TEST(ReproductionClaims, BehavioralFlipAtFStar) {
  // Learning agents flip all-cheat -> all-honest across f* (the E3/E9
  // behavioral claim), checked at one point per side.
  double f_star = CriticalFrequency(kB, kF, 40);
  auto honesty_at = [&](double f) {
    NPlayerHonestyGame::Params p;
    p.n = 2;
    p.benefit = kB;
    p.gain = LinearGain(kF, 0);
    p.frequency = f;
    p.penalty = 40;
    p.uniform_loss = kL;
    NPlayerHonestyGame game =
        std::move(NPlayerHonestyGame::Create(p).value());
    std::vector<std::unique_ptr<sim::Agent>> agents;
    agents.push_back(sim::MakeFictitiousPlay(&game, 1));
    agents.push_back(sim::MakeFictitiousPlay(&game, 2));
    sim::RepeatedGameConfig config;
    config.rounds = 120;
    return sim::RunRepeatedGame(game, agents, config)->honesty_rate_final;
  };
  EXPECT_DOUBLE_EQ(honesty_at(f_star - 0.05), 0.0);
  EXPECT_DOUBLE_EQ(honesty_at(f_star + 0.05), 1.0);
}

TEST(ReproductionClaims, ExtensionHeadlines) {
  // Reward mechanism: R* at f = 0.3 equals P* (perfect substitution).
  EXPECT_DOUBLE_EQ(CriticalReward(kB, kF, 0.3, 0),
                   CriticalPenalty(kB, kF, 0.3));
  // Folk theorem: delta* = (F-B)/L = 0.75 at L = 20.
  EXPECT_DOUBLE_EQ(CriticalDiscount(kB, kF, 20), 0.75);
  // Generalized Observation 2 reduces to the original at delta = 0.
  EXPECT_DOUBLE_EQ(CriticalFrequencyWithPatience(kB, kF, 12, 40, 0.0),
                   CriticalFrequency(kB, kF, 40));
}

}  // namespace
}  // namespace hsis

#include "core/honest_sharing_session.h"

#include <gtest/gtest.h>

namespace hsis::core {
namespace {

SessionConfig FastConfig(double frequency = 1.0, double penalty = 50.0) {
  SessionConfig config;
  config.audit_frequency = frequency;
  config.penalty = penalty;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  config.seed = 42;
  return config;
}

HonestSharingSession MakeTwoPartySession(double frequency = 1.0,
                                         double penalty = 50.0) {
  Result<HonestSharingSession> session =
      HonestSharingSession::Create(FastConfig(frequency, penalty));
  EXPECT_TRUE(session.ok());
  HonestSharingSession s = std::move(*session);
  EXPECT_TRUE(s.AddParty("rowi").ok());
  EXPECT_TRUE(s.AddParty("colie").ok());
  EXPECT_TRUE(s.IssueTuples("rowi", {"b", "u", "v", "y"}).ok());
  EXPECT_TRUE(s.IssueTuples("colie", {"a", "u", "v", "x"}).ok());
  return s;
}

TEST(HonestSharingSessionTest, HonestExchangeComputesIntersection) {
  HonestSharingSession s = MakeTwoPartySession();
  Result<ExchangeResult> r = s.RunExchange("rowi", "colie");
  ASSERT_TRUE(r.ok());
  sovereign::Dataset expected = sovereign::Dataset::FromStrings({"u", "v"});
  EXPECT_EQ(r->a.intersection, expected);
  EXPECT_EQ(r->b.intersection, expected);
  EXPECT_TRUE(r->a.audited);
  EXPECT_FALSE(r->a.detected);
  EXPECT_FALSE(r->b.detected);
  EXPECT_EQ(s.TotalPenalties("rowi"), 0.0);
}

TEST(HonestSharingSessionTest, FabricationDetectedAndFined) {
  HonestSharingSession s = MakeTwoPartySession();
  CheatPlan cheat;
  cheat.fabricate = {"x"};  // probe for Colie's private customer
  Result<ExchangeResult> r = s.RunExchange("rowi", "colie", cheat, {});
  ASSERT_TRUE(r.ok());
  // The cheat worked at the protocol level...
  EXPECT_EQ(r->a.probe_hits, 1u);
  EXPECT_TRUE(r->a.intersection.Contains(sovereign::Tuple::FromString("x")));
  EXPECT_EQ(r->b.leaked_tuples, 1u);
  // ...but the always-on audit caught it.
  EXPECT_TRUE(r->a.detected);
  EXPECT_EQ(r->a.penalty_paid, 50.0);
  EXPECT_FALSE(r->b.detected);
  EXPECT_EQ(s.TotalPenalties("rowi"), 50.0);
  EXPECT_EQ(s.TotalPenalties("colie"), 0.0);
}

TEST(HonestSharingSessionTest, WithholdingDetected) {
  HonestSharingSession s = MakeTwoPartySession();
  CheatPlan cheat;
  cheat.withhold = 1;
  Result<ExchangeResult> r = s.RunExchange("rowi", "colie", {}, cheat);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->b.detected);
  EXPECT_FALSE(r->a.detected);
  EXPECT_EQ(r->b.reported_size, 3u);
}

TEST(HonestSharingSessionTest, ZeroFrequencyNeverCatches) {
  HonestSharingSession s = MakeTwoPartySession(/*frequency=*/0.0);
  CheatPlan cheat;
  cheat.fabricate = {"x"};
  Result<ExchangeResult> r = s.RunExchange("rowi", "colie", cheat, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->a.audited);
  EXPECT_FALSE(r->a.detected);
  EXPECT_EQ(r->a.penalty_paid, 0.0);
  EXPECT_EQ(r->a.probe_hits, 1u);  // the cheat succeeds unpunished
}

TEST(HonestSharingSessionTest, PartialFrequencyCatchesProportionally) {
  HonestSharingSession s = MakeTwoPartySession(/*frequency=*/0.3);
  CheatPlan cheat;
  cheat.fabricate = {"probe"};
  int detections = 0;
  const int kRounds = 300;
  for (int i = 0; i < kRounds; ++i) {
    Result<ExchangeResult> r = s.RunExchange("rowi", "colie", cheat, {});
    ASSERT_TRUE(r.ok());
    detections += r->a.detected;
  }
  EXPECT_NEAR(static_cast<double>(detections) / kRounds, 0.3, 0.07);
  EXPECT_NEAR(s.TotalPenalties("rowi"), detections * 50.0, 1e-9);
}

TEST(HonestSharingSessionTest, AttestationVerifies) {
  HonestSharingSession s = MakeTwoPartySession();
  Rng rng(9);
  Bytes challenge = rng.RandomBytes(16);
  Result<audit::SecureCoprocessor::AttestationReport> report =
      s.Attest(challenge);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(audit::SecureCoprocessor::VerifyAttestation(
      *report, s.expected_code_hash(), s.device_endorsement_key()));
  EXPECT_EQ(report->nonce, challenge);
}

TEST(HonestSharingSessionTest, ValidatesParticipants) {
  HonestSharingSession s = MakeTwoPartySession();
  EXPECT_FALSE(s.RunExchange("rowi", "ghost").ok());
  EXPECT_FALSE(s.RunExchange("rowi", "rowi").ok());
  EXPECT_FALSE(s.AddParty("rowi").ok());
  EXPECT_FALSE(s.IssueTuples("ghost", {"x"}).ok());
  EXPECT_FALSE(s.TrueData("ghost").ok());
}

TEST(HonestSharingSessionTest, TrueDataReflectsIssuedTuples) {
  HonestSharingSession s = MakeTwoPartySession();
  Result<sovereign::Dataset> data = s.TrueData("rowi");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, sovereign::Dataset::FromStrings({"b", "u", "v", "y"}));
}

TEST(HonestSharingSessionTest, MultipleExchangesAccumulateState) {
  HonestSharingSession s = MakeTwoPartySession();
  ASSERT_TRUE(s.RunExchange("rowi", "colie").ok());
  // New legal tuple arrives between exchanges; audits must track it.
  ASSERT_TRUE(s.IssueTuples("rowi", {"new-customer"}).ok());
  Result<ExchangeResult> r = s.RunExchange("rowi", "colie");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->a.detected);  // honest report incl. the new tuple
  EXPECT_EQ(r->a.reported_size, 5u);
}

TEST(HonestSharingSessionTest, BothPartiesCheatBothCaught) {
  HonestSharingSession s = MakeTwoPartySession();
  CheatPlan cheat_a, cheat_b;
  cheat_a.fabricate = {"x"};
  cheat_b.withhold = 2;
  Result<ExchangeResult> r = s.RunExchange("rowi", "colie", cheat_a, cheat_b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->a.detected);
  EXPECT_TRUE(r->b.detected);
}

TEST(HonestSharingSessionTest, KeyedSchemeSupported) {
  SessionConfig config = FastConfig();
  config.hash_scheme = crypto::MultisetHashScheme::kAdd;
  config.scheme_key = ToBytes("tg-shared-key");
  Result<HonestSharingSession> session = HonestSharingSession::Create(config);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->AddParty("p1").ok());
  ASSERT_TRUE(session->AddParty("p2").ok());
  ASSERT_TRUE(session->IssueTuples("p1", {"a", "b"}).ok());
  ASSERT_TRUE(session->IssueTuples("p2", {"b", "c"}).ok());
  Result<ExchangeResult> r = session->RunExchange("p1", "p2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->a.intersection, sovereign::Dataset::FromStrings({"b"}));
  EXPECT_FALSE(r->a.detected);
}

TEST(HonestSharingSessionTest, KeyedSchemeRequiresKey) {
  SessionConfig config = FastConfig();
  config.hash_scheme = crypto::MultisetHashScheme::kXor;
  EXPECT_FALSE(HonestSharingSession::Create(config).ok());
}

}  // namespace
}  // namespace hsis::core

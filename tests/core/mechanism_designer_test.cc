#include "core/mechanism_designer.h"

#include <gtest/gtest.h>

namespace hsis::core {
namespace {

MechanismDesigner Make(double b = 10, double f = 25) {
  Result<MechanismDesigner> d = MechanismDesigner::Create(b, f);
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(MechanismDesignerTest, CreateValidation) {
  EXPECT_FALSE(MechanismDesigner::Create(10, 10).ok());
  EXPECT_FALSE(MechanismDesigner::Create(10, 5).ok());
  EXPECT_FALSE(MechanismDesigner::Create(-1, 5).ok());
  EXPECT_TRUE(MechanismDesigner::Create(10, 25).ok());
}

TEST(MechanismDesignerTest, MinFrequencyIsTransformative) {
  MechanismDesigner d = Make();
  for (double penalty : {0.0, 10.0, 50.0, 500.0}) {
    double f = d.MinFrequency(penalty);
    EXPECT_EQ(d.Classify(f, penalty),
              game::DeviceEffectiveness::kTransformative)
        << "penalty " << penalty;
    // Just below the recommendation the device must NOT be transformative.
    EXPECT_NE(d.Classify(f - 1e-3, penalty),
              game::DeviceEffectiveness::kTransformative);
  }
}

TEST(MechanismDesignerTest, MinPenaltyIsTransformative) {
  MechanismDesigner d = Make();
  for (double f : {0.1, 0.25, 0.5}) {
    Result<double> p = d.MinPenalty(f);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(d.Classify(f, *p), game::DeviceEffectiveness::kTransformative);
  }
}

TEST(MechanismDesignerTest, MinPenaltyZeroAboveZeroPenaltyFrequency) {
  MechanismDesigner d = Make();
  double f0 = d.ZeroPenaltyFrequency();
  EXPECT_DOUBLE_EQ(f0, 0.6);
  Result<double> p = d.MinPenalty(f0 + 0.05);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
  EXPECT_EQ(d.Classify(f0 + 0.05, 0.0),
            game::DeviceEffectiveness::kTransformative);
}

TEST(MechanismDesignerTest, MinPenaltyRejectsZeroFrequency) {
  MechanismDesigner d = Make();
  EXPECT_FALSE(d.MinPenalty(0.0).ok());
  EXPECT_FALSE(d.MinPenalty(1.5).ok());
}

TEST(MechanismDesignerTest, CheapestTransformativeUsesMaxPenalty) {
  MechanismDesigner d = Make();
  Result<OperatingPoint> point = d.CheapestTransformative(/*audit_cost=*/100,
                                                          /*max_penalty=*/50);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->penalty, 50);
  EXPECT_NEAR(point->frequency, 15.0 / 75.0, 1e-3);
  EXPECT_EQ(point->effectiveness, game::DeviceEffectiveness::kTransformative);
  EXPECT_NEAR(point->expected_audit_cost, point->frequency * 100, 1e-9);

  // A bigger allowed penalty lets the designer audit less often.
  Result<OperatingPoint> richer = d.CheapestTransformative(100, 500);
  ASSERT_TRUE(richer.ok());
  EXPECT_LT(richer->frequency, point->frequency);
  EXPECT_LT(richer->expected_audit_cost, point->expected_audit_cost);
}

TEST(MechanismDesignerTest, CheapestTransformativeValidation) {
  MechanismDesigner d = Make();
  EXPECT_FALSE(d.CheapestTransformative(-1, 10).ok());
  EXPECT_FALSE(d.CheapestTransformative(1, -10).ok());
}

TEST(MechanismDesignerTest, NPlayerPenaltyScalesWithPopulation) {
  MechanismDesigner d = Make();
  game::GainFunction gain = game::LinearGain(25, 2);
  Result<double> p5 = d.MinPenaltyNPlayer(5, gain, 0.3);
  Result<double> p50 = d.MinPenaltyNPlayer(50, gain, 0.3);
  ASSERT_TRUE(p5.ok() && p50.ok());
  // More honest victims to exploit -> larger deterrent needed.
  EXPECT_GT(*p50, *p5);
  // And it matches Proposition 1's bound.
  EXPECT_NEAR(*p5, game::NPlayerPenaltyBound(10, gain, 0.3, 4), 1e-3);
}

TEST(MechanismDesignerTest, NPlayerValidation) {
  MechanismDesigner d = Make();
  game::GainFunction gain = game::LinearGain(25, 2);
  EXPECT_FALSE(d.MinPenaltyNPlayer(1, gain, 0.3).ok());
  EXPECT_FALSE(d.MinPenaltyNPlayer(5, nullptr, 0.3).ok());
  EXPECT_FALSE(d.MinPenaltyNPlayer(5, gain, 0.0).ok());
}

TEST(MechanismDesignerTest, MinFrequencyIsClampedToUnitInterval) {
  MechanismDesigner d = Make();

  // A huge penalty drives f* toward 0; a negative margin larger in
  // magnitude than f* used to escape below zero — the serving tier must
  // never see a negative "minimum frequency".
  double f_star = game::CriticalFrequency(d.benefit(), d.cheat_gain(), 1e12);
  ASSERT_GT(f_star, 0.0);
  EXPECT_EQ(d.MinFrequency(1e12, -1.0), 0.0);
  EXPECT_EQ(d.MinFrequency(1e12, -2 * f_star), 0.0);

  // The upper clamp still holds, and interior points are untouched.
  EXPECT_EQ(d.MinFrequency(0.0, 1.0), 1.0);
  double interior = d.MinFrequency(10.0);
  EXPECT_GT(interior, 0.0);
  EXPECT_LE(interior, 1.0);
  EXPECT_EQ(interior,
            game::CriticalFrequency(d.benefit(), d.cheat_gain(), 10.0) + 1e-6);

  // Every penalty in a broad sweep yields a frequency inside [0, 1]
  // for hostile margins of either sign.
  for (double penalty : {0.0, 1.0, 1e3, 1e6, 1e9, 1e15}) {
    for (double margin : {-10.0, -1e-6, 0.0, 1e-6, 10.0}) {
      double f = d.MinFrequency(penalty, margin);
      EXPECT_GE(f, 0.0) << "penalty " << penalty << " margin " << margin;
      EXPECT_LE(f, 1.0) << "penalty " << penalty << " margin " << margin;
    }
  }
}

}  // namespace
}  // namespace hsis::core

// The campaign-ensemble named sweep (core/campaign_shards.h): a full
// policy x replicate session grid drivable through the same registry,
// plan, and merge machinery as the figure landscapes — so its CSV must
// be byte-identical across thread counts and across shard partitions.

#include "core/campaign_shards.h"

#include <gtest/gtest.h>

#include <string>

#include "common/shard.h"
#include "game/landscape_shards.h"

namespace hsis::core {
namespace {

TEST(CampaignShardsTest, RegistrationIsIdempotentAndListed) {
  ASSERT_TRUE(RegisterCampaignEnsembleSweep().ok());
  ASSERT_TRUE(RegisterCampaignEnsembleSweep().ok());

  bool listed = false;
  for (const std::string& name : game::LandscapeSweepNames()) {
    listed |= (name == "campaign_ensemble");
  }
  EXPECT_TRUE(listed);

  common::ShardSweepSpec spec =
      game::LandscapeSweepSpec("campaign_ensemble").value();
  EXPECT_EQ(spec.name, "campaign_ensemble");
  EXPECT_EQ(spec.total, 48u);  // 3 policy pairs x 16 replicates
  EXPECT_EQ(game::LandscapeCsvFilename("campaign_ensemble").value(),
            "campaign_ensemble.csv");
  EXPECT_EQ(game::LandscapeCsvHeader("campaign_ensemble").value(),
            "policy,replicate,session_seed,payoff_a,payoff_b,"
            "detections_a,detections_b\n");
}

TEST(CampaignShardsTest, CsvIsDeterministicAcrossThreadCounts) {
  ASSERT_TRUE(RegisterCampaignEnsembleSweep().ok());
  Result<std::string> serial = game::LandscapeCsv("campaign_ensemble", 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  int rows = 0;
  for (char c : *serial) rows += (c == '\n');
  EXPECT_EQ(rows, 49);  // header + 48 grid cells
  EXPECT_EQ(serial->find("policy,replicate"), 0u);
  EXPECT_NE(serial->find("honest/honest,0,"), std::string::npos);
  EXPECT_NE(serial->find("opportunist/honest,15,"), std::string::npos);

  Result<std::string> threaded = game::LandscapeCsv("campaign_ensemble", 4);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(*serial, *threaded)
      << "campaign ensemble must be bit-identical across thread counts";
}

TEST(CampaignShardsTest, RecordIndexOutOfRangeFails) {
  ASSERT_TRUE(RegisterCampaignEnsembleSweep().ok());
  common::ShardSweepSpec spec =
      game::LandscapeSweepSpec("campaign_ensemble").value();
  EXPECT_TRUE(spec.record(0).ok());
  EXPECT_TRUE(spec.record(47).ok());
  EXPECT_FALSE(spec.record(48).ok());
}

}  // namespace
}  // namespace hsis::core

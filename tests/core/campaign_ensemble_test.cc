// Determinism suite for the campaign ensemble engine: bit-identical
// cells and means at threads = 1, 2, and hardware concurrency; a golden
// test freezing the threads = 1 output against values recorded from the
// pre-ensemble serial `RunCampaign` loop; and a manual-loop equivalence
// check tying the ensemble to the pre-existing serial API.

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>

#include "core/campaign.h"

namespace hsis::core {
namespace {

uint64_t Bits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

Result<HonestSharingSession> MakeSession(uint64_t seed) {
  SessionConfig config;
  config.audit_frequency = 0.5;
  config.penalty = 30;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  config.seed = seed;
  HSIS_ASSIGN_OR_RETURN(HonestSharingSession s,
                        HonestSharingSession::Create(config));
  HSIS_RETURN_IF_ERROR(s.AddParty("alice"));
  HSIS_RETURN_IF_ERROR(s.AddParty("bob"));
  HSIS_RETURN_IF_ERROR(s.IssueTuples("alice", {"u", "v", "a1", "a2"}));
  HSIS_RETURN_IF_ERROR(s.IssueTuples("bob", {"u", "v", "b1", "b2", "b3"}));
  return s;
}

CampaignPolicyPair ProberPair() {
  return {"prober/honest",
          [] { return PersistentProberPolicy({"b1", "b2", "miss"}, 2); },
          HonestPolicy};
}

CampaignEnsembleConfig BaseConfig() {
  CampaignEnsembleConfig config;
  config.rounds = 12;
  config.replicates = 4;
  config.base_seed = 20260806;
  config.economics.honest_benefit = 10;
  config.economics.gain_per_probe_hit = 5;
  config.economics.loss_per_leaked_tuple = 4;
  config.threads = 1;
  return config;
}

TEST(CampaignEnsembleTest, MatchesPreEnsembleSerialGolden) {
  // Party-A payoffs (value and IEEE-754 bit pattern) recorded from the
  // pre-ensemble serial implementation: a plain loop calling
  // `RunCampaign` with `Rng::ForIndex(20260806, cell)` and a session
  // seeded by that stream's first draw. Any change to seed derivation,
  // session construction, or accounting order shows up here.
  struct Golden {
    double payoff_a;
    uint64_t payoff_a_bits;
    double payoff_b;
    int detected;
    size_t stolen;
  };
  const Golden kGolden[] = {
      {80, 0x4054000000000000ULL, 56, 4, 16},
      {20, 0x4034000000000000ULL, 56, 6, 16},
      {-10, 0xc024000000000000ULL, 56, 7, 16},
      {50, 0x4049000000000000ULL, 56, 5, 16},
  };

  for (int threads : {1, 2, 0}) {
    CampaignEnsembleConfig config = BaseConfig();
    config.threads = threads;
    auto ensemble = RunCampaignEnsemble(MakeSession, "alice", "bob",
                                        {ProberPair()}, config);
    ASSERT_TRUE(ensemble.ok());
    ASSERT_EQ(ensemble->cells.size(), std::size(kGolden));
    for (size_t i = 0; i < std::size(kGolden); ++i) {
      const CampaignCellResult& cell = ensemble->cells[i];
      EXPECT_EQ(Bits(cell.result.a.realized_payoff), kGolden[i].payoff_a_bits)
          << "cell " << i << " expected " << kGolden[i].payoff_a << " got "
          << cell.result.a.realized_payoff << " (threads=" << threads << ")";
      EXPECT_DOUBLE_EQ(cell.result.b.realized_payoff, kGolden[i].payoff_b)
          << i;
      EXPECT_EQ(cell.result.a.times_detected, kGolden[i].detected) << i;
      EXPECT_EQ(cell.result.a.tuples_stolen, kGolden[i].stolen) << i;
    }
  }
}

TEST(CampaignEnsembleTest, BitIdenticalAcrossThreadCounts) {
  std::vector<CampaignPolicyPair> policies = {
      {"honest/honest", HonestPolicy, HonestPolicy},
      ProberPair(),
      {"opportunist/honest",
       [] { return OpportunisticProberPolicy({"b1", "b2", "miss"}, 2, 0.3); },
       HonestPolicy},
  };
  CampaignEnsembleConfig config = BaseConfig();
  config.replicates = 6;

  config.threads = 1;
  auto serial =
      RunCampaignEnsemble(MakeSession, "alice", "bob", policies, config);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 0}) {
    config.threads = threads;
    auto parallel =
        RunCampaignEnsemble(MakeSession, "alice", "bob", policies, config);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->cells.size(), parallel->cells.size());
    for (size_t i = 0; i < serial->cells.size(); ++i) {
      const CampaignCellResult& s = serial->cells[i];
      const CampaignCellResult& p = parallel->cells[i];
      EXPECT_EQ(s.policy_index, p.policy_index) << i;
      EXPECT_EQ(s.replicate, p.replicate) << i;
      EXPECT_EQ(s.session_seed, p.session_seed) << i;
      EXPECT_EQ(Bits(s.result.a.realized_payoff),
                Bits(p.result.a.realized_payoff))
          << i;
      EXPECT_EQ(Bits(s.result.b.realized_payoff),
                Bits(p.result.b.realized_payoff))
          << i;
      EXPECT_EQ(Bits(s.result.a.penalties_paid),
                Bits(p.result.a.penalties_paid))
          << i;
      EXPECT_EQ(s.result.a.times_audited, p.result.a.times_audited) << i;
      EXPECT_EQ(s.result.a.times_detected, p.result.a.times_detected) << i;
      EXPECT_EQ(s.result.a.tuples_stolen, p.result.a.tuples_stolen) << i;
      EXPECT_EQ(s.result.b.tuples_leaked, p.result.b.tuples_leaked) << i;
    }
    ASSERT_EQ(serial->mean_payoff_a.size(), parallel->mean_payoff_a.size());
    for (size_t p = 0; p < serial->mean_payoff_a.size(); ++p) {
      EXPECT_EQ(Bits(serial->mean_payoff_a[p]), Bits(parallel->mean_payoff_a[p]))
          << p;
      EXPECT_EQ(Bits(serial->mean_payoff_b[p]), Bits(parallel->mean_payoff_b[p]))
          << p;
    }
  }
}

TEST(CampaignEnsembleTest, MatchesManualSerialLoop) {
  // The ensemble at any thread count must equal the hand-rolled serial
  // grid over the pre-existing `RunCampaign` API.
  CampaignEnsembleConfig config = BaseConfig();
  auto ensemble = RunCampaignEnsemble(MakeSession, "alice", "bob",
                                      {ProberPair()}, config);
  ASSERT_TRUE(ensemble.ok());
  for (size_t i = 0; i < ensemble->cells.size(); ++i) {
    Rng rng = Rng::ForIndex(config.base_seed, i);
    uint64_t session_seed = rng.NextUint64();
    HonestSharingSession session =
        std::move(MakeSession(session_seed).value());
    CheatPolicy prober = PersistentProberPolicy({"b1", "b2", "miss"}, 2);
    CampaignResult manual =
        std::move(RunCampaign(session, "alice", "bob", config.rounds, prober,
                              HonestPolicy(), config.economics, rng)
                      .value());
    EXPECT_EQ(ensemble->cells[i].session_seed, session_seed) << i;
    EXPECT_EQ(Bits(ensemble->cells[i].result.a.realized_payoff),
              Bits(manual.a.realized_payoff))
        << i;
    EXPECT_EQ(Bits(ensemble->cells[i].result.b.realized_payoff),
              Bits(manual.b.realized_payoff))
        << i;
  }
}

TEST(CampaignEnsembleTest, Validation) {
  CampaignEnsembleConfig config = BaseConfig();
  EXPECT_FALSE(RunCampaignEnsemble(nullptr, "alice", "bob", {ProberPair()},
                                   config)
                   .ok());
  EXPECT_FALSE(RunCampaignEnsemble(MakeSession, "alice", "bob", {}, config)
                   .ok());
  EXPECT_FALSE(RunCampaignEnsemble(MakeSession, "alice", "bob",
                                   {{"broken", nullptr, HonestPolicy}}, config)
                   .ok());
  config.rounds = 0;
  EXPECT_FALSE(RunCampaignEnsemble(MakeSession, "alice", "bob",
                                   {ProberPair()}, config)
                   .ok());
  config = BaseConfig();
  config.replicates = 0;
  EXPECT_FALSE(RunCampaignEnsemble(MakeSession, "alice", "bob",
                                   {ProberPair()}, config)
                   .ok());
}

TEST(CampaignEnsembleTest, ErrorsIndependentOfThreadCount) {
  // A failing session factory aborts the ensemble with the same error
  // no matter how many threads raced to report one.
  CampaignSessionFactory flaky =
      [](uint64_t seed) -> Result<HonestSharingSession> {
    if (seed % 2 == 0) return Status::Internal("even seeds refused");
    return MakeSession(seed);
  };
  CampaignEnsembleConfig config = BaseConfig();
  config.replicates = 8;
  Status first = Status::OK();
  for (int threads : {1, 2, 0}) {
    config.threads = threads;
    auto ensemble =
        RunCampaignEnsemble(flaky, "alice", "bob", {ProberPair()}, config);
    ASSERT_FALSE(ensemble.ok());
    if (threads == 1) {
      first = ensemble.status();
    } else {
      EXPECT_EQ(ensemble.status().code(), first.code());
      EXPECT_EQ(ensemble.status().message(), first.message());
    }
  }
}

}  // namespace
}  // namespace hsis::core

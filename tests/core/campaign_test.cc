#include "core/campaign.h"

#include <gtest/gtest.h>

namespace hsis::core {
namespace {

HonestSharingSession MakeSession(double frequency, double penalty) {
  SessionConfig config;
  config.audit_frequency = frequency;
  config.penalty = penalty;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  config.seed = 5;
  HonestSharingSession s =
      std::move(HonestSharingSession::Create(config).value());
  EXPECT_TRUE(s.AddParty("rowi").ok());
  EXPECT_TRUE(s.AddParty("colie").ok());
  EXPECT_TRUE(s.IssueTuples("rowi", {"u", "v", "r1", "r2"}).ok());
  EXPECT_TRUE(s.IssueTuples("colie", {"u", "v", "c1", "c2", "c3"}).ok());
  return s;
}

CampaignEconomics Econ() {
  CampaignEconomics econ;
  econ.honest_benefit = 10;
  econ.gain_per_probe_hit = 5;
  econ.loss_per_leaked_tuple = 4;
  return econ;
}

TEST(CampaignTest, HonestCampaignEarnsBenefitOnly) {
  HonestSharingSession s = MakeSession(1.0, 50);
  Rng rng(1);
  Result<CampaignResult> r = RunCampaign(s, "rowi", "colie", 20,
                                         HonestPolicy(), HonestPolicy(),
                                         Econ(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->a.exchanges, 20);
  EXPECT_EQ(r->a.times_detected, 0);
  EXPECT_EQ(r->a.tuples_stolen, 0u);
  EXPECT_DOUBLE_EQ(r->a.realized_payoff, 20 * 10.0);
  EXPECT_DOUBLE_EQ(r->a.average_payoff(), 10.0);
  EXPECT_EQ(r->a.times_audited, 20);  // f = 1
}

TEST(CampaignTest, ProberStealsAndGetsFined) {
  HonestSharingSession s = MakeSession(1.0, 50);
  Rng rng(2);
  // Probe pool contains 2 of Colie's private tuples + 2 misses.
  CheatPolicy prober =
      PersistentProberPolicy({"c1", "c2", "miss1", "miss2"}, 4);
  Result<CampaignResult> r = RunCampaign(s, "rowi", "colie", 10, prober,
                                         HonestPolicy(), Econ(), rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->a.times_detected, 10);  // always caught at f = 1
  EXPECT_DOUBLE_EQ(r->a.penalties_paid, 500.0);
  EXPECT_EQ(r->a.tuples_stolen, 20u);  // 2 hits per round
  EXPECT_EQ(r->b.tuples_leaked, 20u);
  // Rowi: 10*(10 + 2*5 - 50), Colie: 10*(10 - 2*4).
  EXPECT_DOUBLE_EQ(r->a.realized_payoff, 10 * (10 + 10 - 50));
  EXPECT_DOUBLE_EQ(r->b.realized_payoff, 10 * (10 - 8));
}

TEST(CampaignTest, DeterrenceFlipsTheSign) {
  // Below the threshold cheating profits; above it it does not —
  // measured through the full stack, in expectation over many rounds.
  Rng rng(3);
  CampaignEconomics econ = Econ();
  const int kRounds = 400;

  auto average_cheat_payoff = [&](double frequency, double penalty) {
    HonestSharingSession s = MakeSession(frequency, penalty);
    CheatPolicy prober = PersistentProberPolicy({"c1", "c2", "c3"}, 3);
    CampaignResult r =
        std::move(RunCampaign(s, "rowi", "colie", kRounds, prober,
                              HonestPolicy(), econ, rng)
                      .value());
    return r.a.average_payoff();
  };
  // Gain per cheat = 3 hits * 5 = 15 on top of B = 10.
  double lax = average_cheat_payoff(0.1, 30);     // E[penalty] = 3 < 15
  double strict = average_cheat_payoff(0.8, 30);  // E[penalty] = 24 > 15
  EXPECT_GT(lax, 10.0);
  EXPECT_LT(strict, 10.0);
}

TEST(CampaignTest, OpportunisticPolicyCheatsAtRate) {
  HonestSharingSession s = MakeSession(1.0, 50);
  Rng rng(4);
  CheatPolicy sometimes = OpportunisticProberPolicy({"c1"}, 1, 0.3);
  Result<CampaignResult> r = RunCampaign(s, "rowi", "colie", 300, sometimes,
                                         HonestPolicy(), Econ(), rng);
  ASSERT_TRUE(r.ok());
  // Detected exactly when it cheated (f = 1): ~30% of rounds.
  EXPECT_NEAR(static_cast<double>(r->a.times_detected) / 300, 0.3, 0.07);
}

TEST(CampaignTest, PersistentProberCyclesPool) {
  Rng rng(5);
  CheatPolicy prober = PersistentProberPolicy({"x", "y", "z"}, 2);
  CheatPlan round0 = prober(0, rng);
  CheatPlan round1 = prober(1, rng);
  EXPECT_EQ(round0.fabricate, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(round1.fabricate, (std::vector<std::string>{"z", "x"}));
}

TEST(CampaignTest, EmptyPoolMeansHonest) {
  Rng rng(6);
  CheatPolicy prober = PersistentProberPolicy({}, 3);
  EXPECT_TRUE(prober(0, rng).IsHonest());
}

TEST(CampaignTest, Validation) {
  HonestSharingSession s = MakeSession(1.0, 50);
  Rng rng(7);
  EXPECT_FALSE(RunCampaign(s, "rowi", "colie", 0, HonestPolicy(),
                           HonestPolicy(), Econ(), rng)
                   .ok());
  EXPECT_FALSE(RunCampaign(s, "rowi", "colie", 5, nullptr, HonestPolicy(),
                           Econ(), rng)
                   .ok());
  EXPECT_FALSE(RunCampaign(s, "rowi", "ghost", 5, HonestPolicy(),
                           HonestPolicy(), Econ(), rng)
                   .ok());
}

}  // namespace
}  // namespace hsis::core

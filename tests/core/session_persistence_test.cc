#include <gtest/gtest.h>

#include "core/honest_sharing_session.h"

namespace hsis::core {
namespace {

SessionConfig Config() {
  SessionConfig config;
  config.audit_frequency = 1.0;
  config.penalty = 30;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  config.seed = 77;
  return config;
}

HonestSharingSession Fresh() {
  return std::move(HonestSharingSession::Create(Config()).value());
}

TEST(SessionPersistenceTest, SaveLoadRoundTrip) {
  HonestSharingSession original = Fresh();
  ASSERT_TRUE(original.AddParty("rowi").ok());
  ASSERT_TRUE(original.AddParty("colie").ok());
  ASSERT_TRUE(original.IssueTuples("rowi", {"a", "b", "u"}).ok());
  ASSERT_TRUE(original.IssueTuples("colie", {"u", "c"}).ok());
  Bytes blob = original.SaveState();

  HonestSharingSession restored = Fresh();
  ASSERT_TRUE(restored.LoadState(blob).ok());

  // Datasets round-tripped.
  EXPECT_EQ(*restored.TrueData("rowi"),
            sovereign::Dataset::FromStrings({"a", "b", "u"}));
  EXPECT_EQ(*restored.TrueData("colie"),
            sovereign::Dataset::FromStrings({"u", "c"}));

  // The restored device still validates honest reports (HV_i intact).
  ExchangeResult r = std::move(restored.RunExchange("rowi", "colie").value());
  EXPECT_FALSE(r.a.detected);
  EXPECT_FALSE(r.b.detected);
  EXPECT_EQ(r.a.intersection, sovereign::Dataset::FromStrings({"u"}));
}

TEST(SessionPersistenceTest, RestoredSessionStillCatchesCheats) {
  HonestSharingSession original = Fresh();
  ASSERT_TRUE(original.AddParty("p1").ok());
  ASSERT_TRUE(original.AddParty("p2").ok());
  ASSERT_TRUE(original.IssueTuples("p1", {"x"}).ok());
  ASSERT_TRUE(original.IssueTuples("p2", {"x", "y"}).ok());
  Bytes blob = original.SaveState();

  HonestSharingSession restored = Fresh();
  ASSERT_TRUE(restored.LoadState(blob).ok());
  CheatPlan cheat;
  cheat.fabricate = {"y"};
  ExchangeResult r =
      std::move(restored.RunExchange("p1", "p2", cheat, {}).value());
  EXPECT_TRUE(r.a.detected);
  EXPECT_FALSE(r.b.detected);
}

TEST(SessionPersistenceTest, PenaltiesSurviveRestart) {
  HonestSharingSession original = Fresh();
  ASSERT_TRUE(original.AddParty("p1").ok());
  ASSERT_TRUE(original.AddParty("p2").ok());
  ASSERT_TRUE(original.IssueTuples("p1", {"x"}).ok());
  ASSERT_TRUE(original.IssueTuples("p2", {"x"}).ok());
  CheatPlan cheat;
  cheat.fabricate = {"fake"};
  ASSERT_TRUE(original.RunExchange("p1", "p2", cheat, {}).ok());
  ASSERT_EQ(original.TotalPenalties("p1"), 30.0);

  HonestSharingSession restored = Fresh();
  ASSERT_TRUE(restored.LoadState(original.SaveState()).ok());
  EXPECT_EQ(restored.TotalPenalties("p1"), 30.0);
}

TEST(SessionPersistenceTest, SessionCanGrowAfterRestore) {
  HonestSharingSession original = Fresh();
  ASSERT_TRUE(original.AddParty("p1").ok());
  ASSERT_TRUE(original.AddParty("p2").ok());
  ASSERT_TRUE(original.IssueTuples("p1", {"before"}).ok());
  ASSERT_TRUE(original.IssueTuples("p2", {"before"}).ok());

  HonestSharingSession restored = Fresh();
  ASSERT_TRUE(restored.LoadState(original.SaveState()).ok());
  ASSERT_TRUE(restored.IssueTuples("p1", {"after"}).ok());
  ASSERT_TRUE(restored.AddParty("p3").ok());
  ASSERT_TRUE(restored.IssueTuples("p3", {"before", "after"}).ok());

  ExchangeResult r = std::move(restored.RunExchange("p1", "p3").value());
  EXPECT_FALSE(r.a.detected);
  EXPECT_EQ(r.a.intersection,
            sovereign::Dataset::FromStrings({"before", "after"}));
}

TEST(SessionPersistenceTest, LoadRequiresFreshSession) {
  HonestSharingSession original = Fresh();
  ASSERT_TRUE(original.AddParty("p1").ok());
  Bytes blob = original.SaveState();

  HonestSharingSession busy = Fresh();
  ASSERT_TRUE(busy.AddParty("existing").ok());
  EXPECT_EQ(busy.LoadState(blob).code(), StatusCode::kFailedPrecondition);
}

TEST(SessionPersistenceTest, RejectsMalformedState) {
  HonestSharingSession session = Fresh();
  EXPECT_FALSE(session.LoadState(Bytes{}).ok());
  EXPECT_FALSE(session.LoadState(Bytes(6, 0x01)).ok());

  // Wrong version.
  HonestSharingSession original = Fresh();
  ASSERT_TRUE(original.AddParty("p").ok());
  Bytes blob = original.SaveState();
  Bytes wrong_version = blob;
  wrong_version[3] = 99;
  HonestSharingSession target = Fresh();
  EXPECT_FALSE(target.LoadState(wrong_version).ok());

  // Truncated.
  Bytes truncated(blob.begin(), blob.end() - 3);
  HonestSharingSession target2 = Fresh();
  EXPECT_FALSE(target2.LoadState(truncated).ok());
}

TEST(SessionPersistenceTest, EmptySessionRoundTrips) {
  HonestSharingSession original = Fresh();
  Bytes blob = original.SaveState();
  HonestSharingSession restored = Fresh();
  EXPECT_TRUE(restored.LoadState(blob).ok());
}

}  // namespace
}  // namespace hsis::core

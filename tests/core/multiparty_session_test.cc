#include <gtest/gtest.h>

#include "core/honest_sharing_session.h"

namespace hsis::core {
namespace {

HonestSharingSession MakeConsortium(double frequency = 1.0) {
  SessionConfig config;
  config.audit_frequency = frequency;
  config.penalty = 30;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  config.seed = 99;
  HonestSharingSession s =
      std::move(HonestSharingSession::Create(config).value());
  EXPECT_TRUE(s.AddParty("p0").ok());
  EXPECT_TRUE(s.AddParty("p1").ok());
  EXPECT_TRUE(s.AddParty("p2").ok());
  EXPECT_TRUE(s.IssueTuples("p0", {"a", "b", "c", "d"}).ok());
  EXPECT_TRUE(s.IssueTuples("p1", {"b", "c", "d", "e"}).ok());
  EXPECT_TRUE(s.IssueTuples("p2", {"c", "d", "e", "f"}).ok());
  return s;
}

TEST(MultiPartySessionTest, HonestExchangeGlobalIntersection) {
  HonestSharingSession s = MakeConsortium();
  Result<MultiExchangeResult> r =
      s.RunMultiPartyExchange({"p0", "p1", "p2"});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->parties.size(), 3u);
  sovereign::Dataset expected = sovereign::Dataset::FromStrings({"c", "d"});
  for (const ExchangeStats& stats : r->parties) {
    EXPECT_EQ(stats.intersection, expected);
    EXPECT_TRUE(stats.audited);
    EXPECT_FALSE(stats.detected);
    EXPECT_EQ(stats.leaked_tuples, 0u);
  }
}

TEST(MultiPartySessionTest, OneCheaterCaughtOthersPass) {
  HonestSharingSession s = MakeConsortium();
  std::vector<CheatPlan> cheats(3);
  cheats[1].fabricate = {"f"};  // p1 probes for a tuple only p2 has... p0 lacks it
  Result<MultiExchangeResult> r =
      s.RunMultiPartyExchange({"p0", "p1", "p2"}, cheats);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->parties[0].detected);
  EXPECT_TRUE(r->parties[1].detected);
  EXPECT_EQ(r->parties[1].penalty_paid, 30.0);
  EXPECT_FALSE(r->parties[2].detected);
  // "f" is not held by p0, so it cannot reach the global intersection.
  EXPECT_EQ(r->parties[1].probe_hits, 0u);
}

TEST(MultiPartySessionTest, ProbeHitsRequireUnanimity) {
  // In the n-party intersection a probe only "hits" when every other
  // party holds the value — probing is much weaker than in 2-party.
  HonestSharingSession s = MakeConsortium();
  std::vector<CheatPlan> cheats(3);
  cheats[0].fabricate = {"e"};  // p1 and p2 both hold "e"; p0 does not
  Result<MultiExchangeResult> r =
      s.RunMultiPartyExchange({"p0", "p1", "p2"}, cheats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->parties[0].probe_hits, 1u);
  EXPECT_TRUE(r->parties[0].detected);
  // Both victims had their tuple exposed.
  EXPECT_EQ(r->parties[1].leaked_tuples, 1u);
  EXPECT_EQ(r->parties[2].leaked_tuples, 1u);
}

TEST(MultiPartySessionTest, WithholdingShrinksGlobalResult) {
  HonestSharingSession s = MakeConsortium();
  std::vector<CheatPlan> cheats(3);
  cheats[2].withhold = 4;  // p2 reports nothing
  Result<MultiExchangeResult> r =
      s.RunMultiPartyExchange({"p0", "p1", "p2"}, cheats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->parties[2].detected);
  EXPECT_EQ(r->parties[0].intersection_size, 0u);
}

TEST(MultiPartySessionTest, Validation) {
  HonestSharingSession s = MakeConsortium();
  EXPECT_FALSE(s.RunMultiPartyExchange({"p0"}).ok());
  EXPECT_FALSE(s.RunMultiPartyExchange({"p0", "ghost"}).ok());
  EXPECT_FALSE(s.RunMultiPartyExchange({"p0", "p0"}).ok());
  std::vector<CheatPlan> wrong_arity(2);
  EXPECT_FALSE(
      s.RunMultiPartyExchange({"p0", "p1", "p2"}, wrong_arity).ok());
}

TEST(MultiPartySessionTest, PairwiseAndMultiwayAgree) {
  HonestSharingSession s = MakeConsortium();
  Result<MultiExchangeResult> multi = s.RunMultiPartyExchange({"p0", "p1"});
  Result<ExchangeResult> pair = s.RunExchange("p0", "p1");
  ASSERT_TRUE(multi.ok() && pair.ok());
  EXPECT_EQ(multi->parties[0].intersection, pair->a.intersection);
}

}  // namespace
}  // namespace hsis::core

// End-to-end integration: the whole paper in one scenario.
//
// A mechanism designer picks audit terms from estimated economics; a
// session is stood up with attested hardware; tuples flow through the
// generators; honest and adversarial campaigns run over the real
// protocol; the realized economics match the game-theoretic prediction;
// the deployment survives a restart.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/campaign.h"
#include "core/honest_sharing_session.h"
#include "core/mechanism_designer.h"
#include "game/equilibrium.h"
#include "game/honesty_games.h"
#include "game/landscape.h"
#include "sim/workload.h"

namespace hsis::core {
namespace {

TEST(IntegrationTest, FullLifecycle) {
  // --- 1. Economics & mechanism design -------------------------------
  const double kB = 10, kF = 25, kL = 8;
  MechanismDesigner designer =
      std::move(MechanismDesigner::Create(kB, kF).value());
  const double frequency = 0.4;
  // The campaign's cheater keeps its stolen gains even when caught (it
  // already saw the intersection), so the operator sizes the fine to
  // cover the realized per-round gain G = 5 probes * 3/hit = 15:
  // P > G/f — which also clears the game-theoretic threshold.
  const double penalty =
      std::max(designer.MinPenalty(frequency).value(), 15.0 / frequency) + 5;
  ASSERT_EQ(designer.Classify(frequency, penalty),
            game::DeviceEffectiveness::kTransformative);

  // The designed game really has (H,H) as its unique equilibrium.
  game::NormalFormGame designed_game = std::move(
      game::MakeSymmetricAuditedGame(kB, kF, kL, frequency, penalty).value());
  auto ne = game::PureNashEquilibria(designed_game);
  ASSERT_EQ(ne.size(), 1u);
  ASSERT_EQ(game::ProfileLabel(ne[0]), "HH");

  // --- 2. Deployment --------------------------------------------------
  SessionConfig config;
  config.audit_frequency = frequency;
  config.penalty = penalty;
  config.group = &crypto::PrimeGroup::SmallTestGroup();
  config.seed = 20060101;
  HonestSharingSession session =
      std::move(HonestSharingSession::Create(config).value());

  // Parties verify the device before trusting it.
  Rng attest_rng(1);
  Bytes challenge = attest_rng.RandomBytes(16);
  auto report = std::move(session.Attest(challenge).value());
  ASSERT_TRUE(audit::SecureCoprocessor::VerifyAttestation(
      report, session.expected_code_hash(), session.device_endorsement_key()));

  // --- 3. Data onboarding through the tuple generators ----------------
  Rng rng(7);
  sim::TwoFirmWorkload workload = sim::MakeTwoFirmWorkload(25, 25, 12, rng);
  ASSERT_TRUE(session.AddParty("rowi").ok());
  ASSERT_TRUE(session.AddParty("colie").ok());
  ASSERT_TRUE(session.IssueTuples("rowi", workload.firm_a).ok());
  ASSERT_TRUE(session.IssueTuples("colie", workload.firm_b).ok());

  // --- 4. Honest collaboration ----------------------------------------
  CampaignEconomics econ;
  econ.honest_benefit = kB;
  econ.gain_per_probe_hit = 3;
  econ.loss_per_leaked_tuple = 2;
  Rng campaign_rng(11);
  CampaignResult honest = std::move(
      RunCampaign(session, "rowi", "colie", 50, HonestPolicy(),
                  HonestPolicy(), econ, campaign_rng)
          .value());
  EXPECT_EQ(honest.a.times_detected, 0);
  EXPECT_DOUBLE_EQ(honest.a.average_payoff(), kB);

  // --- 5. An adversarial campaign is irrational -----------------------
  CheatPolicy prober =
      PersistentProberPolicy(sim::MakeProbeList(workload.b_private, 25, 1.0,
                                                campaign_rng),
                             5);
  CampaignResult attacked = std::move(
      RunCampaign(session, "rowi", "colie", 300, prober, HonestPolicy(), econ,
                  campaign_rng)
          .value());
  // The probes landed (stolen tuples) but detection at frequency f...
  EXPECT_GT(attacked.a.tuples_stolen, 0u);
  EXPECT_NEAR(static_cast<double>(attacked.a.times_detected) / 300, frequency,
              0.08);
  // ...makes cheating pay less than honesty, as designed.
  EXPECT_LT(attacked.a.average_payoff(), kB);
  EXPECT_GT(session.TotalPenalties("rowi"), 0.0);

  // --- 6. Restart durability ------------------------------------------
  Bytes blob = session.SaveState();
  HonestSharingSession restarted =
      std::move(HonestSharingSession::Create(config).value());
  ASSERT_TRUE(restarted.LoadState(blob).ok());
  ExchangeResult post = std::move(
      restarted.RunExchange("rowi", "colie").value());
  EXPECT_FALSE(post.a.detected);
  EXPECT_FALSE(post.b.detected);
  sovereign::Dataset expected =
      sovereign::Dataset::FromStrings(workload.common);
  EXPECT_EQ(post.a.intersection, expected);
}

}  // namespace
}  // namespace hsis::core

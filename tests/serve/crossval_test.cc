// Cross-validation of the three serving paths: the analytic layer
// (core::MechanismDesigner through serve::AnswerQuery), the batch SoA
// kernel (game::kernel::EvalDevicePoints), and the memoized path —
// every answer a client can receive must be bit-identical regardless
// of which path served it, including at operating points within
// kPayoffEpsilon of a regime flip and at every thread count.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "game/equilibrium.h"
#include "game/kernel.h"
#include "game/thresholds.h"
#include "serve/query_service.h"
#include "serve/stream.h"

namespace hsis::serve {
namespace {

/// Bit-level equality: distinguishes -0.0 from +0.0 and compares
/// infinities exactly, which EXPECT_DOUBLE_EQ does not.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ at the bit level";
}

void ExpectAnswersBitEqual(const QueryAnswer& a, const QueryAnswer& b) {
  EXPECT_EQ(a.effectiveness, b.effectiveness);
  EXPECT_EQ(a.honest_is_dominant, b.honest_is_dominant);
  EXPECT_TRUE(BitEqual(a.min_frequency, b.min_frequency));
  EXPECT_TRUE(BitEqual(a.min_penalty, b.min_penalty));
  EXPECT_TRUE(BitEqual(a.zero_penalty_frequency, b.zero_penalty_frequency));
}

/// The dense property-test grid of the acceptance criteria: every
/// (B, F, f, P) combination the serving tier accepts.
std::vector<QueryRequest> PropertyGrid() {
  std::vector<QueryRequest> grid;
  for (double b : {0.0, 1.0, 10.0, 49.5}) {
    for (double gap : {0.5, 5.0, 15.0, 90.0}) {
      for (double f : {0.0, 0.05, 0.3, 0.6, 0.95, 1.0}) {
        for (double p : {0.0, 1.0, 40.0, 1e6}) {
          grid.push_back(QueryRequest{b, b + gap, f, p, 2});
        }
      }
    }
  }
  return grid;
}

TEST(CrossValidationTest, BatchPathIsBitEqualToTheAnalyticPath) {
  QueryService service = std::move(QueryService::Create({}).value());
  std::vector<QueryRequest> grid = PropertyGrid();
  game::kernel::DeviceAnswersSoA batch;
  ASSERT_TRUE(service.AnswerBatch(grid.data(), grid.size(), batch).ok());
  for (size_t i = 0; i < grid.size(); ++i) {
    QueryAnswer analytic = service.Answer(grid[i]).value();
    EXPECT_EQ(batch.effectiveness[i], analytic.effectiveness) << "slot " << i;
    EXPECT_TRUE(BitEqual(batch.min_frequency[i], analytic.min_frequency))
        << "slot " << i;
    EXPECT_TRUE(BitEqual(batch.min_penalty[i], analytic.min_penalty))
        << "slot " << i;
    EXPECT_TRUE(BitEqual(batch.zero_penalty_frequency[i],
                         analytic.zero_penalty_frequency))
        << "slot " << i;
  }
}

TEST(CrossValidationTest, CachedPathIsBitEqualToTheAnalyticPath) {
  QueryService service = std::move(QueryService::Create({}).value());
  for (const QueryRequest& request : PropertyGrid()) {
    QueryAnswer analytic = service.Answer(request).value();
    // Twice: once computed through the kernel (miss), once replayed
    // from the cache (hit) — all three must agree bit for bit.
    ExpectAnswersBitEqual(service.AnswerCached(request).value(), analytic);
    ExpectAnswersBitEqual(service.AnswerCached(request).value(), analytic);
  }
  CacheStats stats = service.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(CrossValidationTest, BatchCachedPathMatchesBatchUncached) {
  QueryServiceConfig config;
  QueryService cached = std::move(QueryService::Create(config).value());
  QueryService uncached = std::move(QueryService::Create(config).value());
  std::vector<QueryRequest> grid = PropertyGrid();
  game::kernel::DeviceAnswersSoA a, b;
  ASSERT_TRUE(cached.AnswerBatchCached(grid.data(), grid.size(), a).ok());
  ASSERT_TRUE(uncached.AnswerBatch(grid.data(), grid.size(), b).ok());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a.effectiveness[i], b.effectiveness[i]) << "slot " << i;
    EXPECT_TRUE(BitEqual(a.min_frequency[i], b.min_frequency[i]));
    EXPECT_TRUE(BitEqual(a.min_penalty[i], b.min_penalty[i]));
    EXPECT_TRUE(
        BitEqual(a.zero_penalty_frequency[i], b.zero_penalty_frequency[i]));
  }
}

TEST(CrossValidationTest, ThreadCountNeverChangesBatchAnswers) {
  QueryServiceConfig serial_config, parallel_config;
  parallel_config.threads = 4;
  QueryService serial = std::move(QueryService::Create(serial_config).value());
  QueryService parallel =
      std::move(QueryService::Create(parallel_config).value());
  std::vector<QueryRequest> grid = PropertyGrid();
  game::kernel::DeviceAnswersSoA a, b;
  ASSERT_TRUE(serial.AnswerBatch(grid.data(), grid.size(), a).ok());
  ASSERT_TRUE(parallel.AnswerBatch(grid.data(), grid.size(), b).ok());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a.effectiveness[i], b.effectiveness[i]);
    EXPECT_TRUE(BitEqual(a.min_frequency[i], b.min_frequency[i]));
    EXPECT_TRUE(BitEqual(a.min_penalty[i], b.min_penalty[i]));
    EXPECT_TRUE(
        BitEqual(a.zero_penalty_frequency[i], b.zero_penalty_frequency[i]));
  }
}

// The quantization satellite: operating points within kPayoffEpsilon
// of a regime flip must classify identically through the analytic,
// batch, and (lossless) cached paths — the cache key must not merge
// distinct sides of the boundary.
TEST(CrossValidationTest, EpsilonBoundaryPointsClassifyIdenticallyEverywhere) {
  const double kB = 10, kF = 25;
  QueryService service = std::move(QueryService::Create({}).value());
  for (double p : {0.0, 10.0, 40.0, 200.0}) {
    // The boundary frequency at penalty p, then points straddling it at
    // sub-epsilon offsets.
    const double f_star = game::CriticalFrequency(kB, kF, p);
    for (double offset :
         {-2 * game::kPayoffEpsilon, -game::kPayoffEpsilon,
          -game::kPayoffEpsilon / 2, 0.0, game::kPayoffEpsilon / 2,
          game::kPayoffEpsilon, 2 * game::kPayoffEpsilon}) {
      QueryRequest request{kB, kF, f_star + offset, p, 2};
      if (request.frequency < 0 || request.frequency > 1) continue;
      QueryAnswer analytic = service.Answer(request).value();
      game::kernel::DeviceAnswersSoA batch;
      ASSERT_TRUE(service.AnswerBatch(&request, 1, batch).ok());
      EXPECT_EQ(batch.effectiveness[0], analytic.effectiveness)
          << "f = f* + " << offset;
      ExpectAnswersBitEqual(service.AnswerCached(request).value(), analytic);
      // Distinct boundary neighbours must occupy distinct cache slots
      // in lossless mode.
      QueryRequest shifted = request;
      shifted.frequency = f_star - offset;
      if (offset != 0.0 && shifted.frequency != request.frequency) {
        EXPECT_FALSE(MakeQueryKey(request, 0) == MakeQueryKey(shifted, 0));
      }
    }
  }
}

TEST(CrossValidationTest, QuantizedCacheServesTheSnappedPointsAnswer) {
  QueryServiceConfig config;
  config.cache.quantum = 1e-3;
  QueryService service = std::move(QueryService::Create(config).value());
  QueryRequest request{10.0 + 2e-4, 25.0, 0.3, 40.0, 2};
  QueryAnswer served = service.AnswerCached(request).value();
  // The served answer is the analytic answer of the canonical point,
  // not of the raw request.
  QueryRequest canonical = SnapRequest(request, config.cache.quantum);
  QueryService plain = std::move(QueryService::Create({}).value());
  ExpectAnswersBitEqual(served, plain.Answer(canonical).value());
  // Every member of the equivalence class serves those same bytes.
  QueryRequest sibling = request;
  sibling.benefit = 10.0 - 3e-4;
  ExpectAnswersBitEqual(service.AnswerCached(sibling).value(), served);
}

TEST(CrossValidationTest, SyntheticStreamServesConsistentlyAcrossPaths) {
  StreamConfig stream_config;
  stream_config.count = 5000;
  stream_config.domain = 64;
  std::vector<QueryRequest> stream =
      MakeSyntheticStream(stream_config).value();
  QueryService service = std::move(QueryService::Create({}).value());
  game::kernel::DeviceAnswersSoA cached_answers, batch_answers;
  ASSERT_TRUE(service
                  .AnswerBatchCached(stream.data(), stream.size(),
                                     cached_answers)
                  .ok());
  ASSERT_TRUE(
      service.AnswerBatch(stream.data(), stream.size(), batch_answers).ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(cached_answers.effectiveness[i], batch_answers.effectiveness[i]);
    EXPECT_TRUE(BitEqual(cached_answers.min_penalty[i],
                         batch_answers.min_penalty[i]));
    // The serving-tier output contract, checked over the whole stream:
    // no path ever emits a frequency outside [0, 1].
    EXPECT_GE(cached_answers.min_frequency[i], 0.0);
    EXPECT_LE(cached_answers.min_frequency[i], 1.0);
    EXPECT_GE(cached_answers.zero_penalty_frequency[i], 0.0);
    EXPECT_LE(cached_answers.zero_penalty_frequency[i], 1.0);
  }
  // One miss per distinct catalog point drawn, everything else hits.
  CacheStats stats = service.Stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_EQ(stats.misses, stats.entries);
  EXPECT_EQ(stats.hits + stats.misses, 5000u);
  EXPECT_GT(stats.hits, stats.misses);
}

}  // namespace
}  // namespace hsis::serve

#include "serve/query.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/mechanism_designer.h"
#include "game/thresholds.h"
#include "serve/derivation.h"
#include "serve/query_service.h"

namespace hsis::serve {
namespace {

constexpr double kB = 10, kF = 25;

TEST(ValidateQueryRequestTest, AcceptsTheCanonicalPoint) {
  EXPECT_TRUE(ValidateQueryRequest({kB, kF, 0.3, 40, 2}).ok());
  EXPECT_TRUE(ValidateQueryRequest({0, 1, 0, 0, 2}).ok());
  EXPECT_TRUE(ValidateQueryRequest({kB, kF, 1.0, 0, 17}).ok());
}

TEST(ValidateQueryRequestTest, NamesTheOffendingField) {
  auto message = [](const QueryRequest& request) {
    return ValidateQueryRequest(request).ToString();
  };
  EXPECT_NE(message({-1, kF, 0.3, 40, 2}).find("benefit"), std::string::npos);
  EXPECT_NE(message({kB, kB, 0.3, 40, 2}).find("cheating gain"),
            std::string::npos);
  EXPECT_NE(message({kB, kF, -0.1, 40, 2}).find("frequency"),
            std::string::npos);
  EXPECT_NE(message({kB, kF, 1.1, 40, 2}).find("frequency"),
            std::string::npos);
  EXPECT_NE(message({kB, kF, 0.3, -1, 2}).find("penalty"), std::string::npos);
  EXPECT_NE(message({kB, kF, 0.3, 40, 1}).find("n >= 2"), std::string::npos);
  const double kInf = std::numeric_limits<double>::infinity();
  EXPECT_NE(message({kInf, kF, 0.3, 40, 2}).find("finite"), std::string::npos);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(message({kB, kF, kNan, 40, 2}).find("finite"), std::string::npos);
}

TEST(AnswerQueryTest, MatchesTheMechanismDesignerBitForBit) {
  core::MechanismDesigner designer =
      std::move(core::MechanismDesigner::Create(kB, kF).value());
  for (double f : {0.05, 0.2, 0.3, 0.6, 0.9}) {
    for (double p : {0.0, 10.0, 40.0, 200.0}) {
      QueryAnswer answer = AnswerQuery({kB, kF, f, p, 2}).value();
      EXPECT_EQ(answer.effectiveness, designer.Classify(f, p));
      EXPECT_EQ(answer.min_frequency, designer.MinFrequency(p));
      EXPECT_EQ(answer.min_penalty, designer.MinPenalty(f).value());
      EXPECT_EQ(answer.zero_penalty_frequency, designer.ZeroPenaltyFrequency());
      EXPECT_EQ(answer.honest_is_dominant,
                answer.effectiveness ==
                    game::DeviceEffectiveness::kTransformative);
    }
  }
}

TEST(AnswerQueryTest, NeverAuditedMeansInfiniteMinPenalty) {
  QueryAnswer answer = AnswerQuery({kB, kF, 0.0, 1000, 2}).value();
  EXPECT_TRUE(std::isinf(answer.min_penalty));
  EXPECT_GT(answer.min_penalty, 0);
  EXPECT_FALSE(answer.honest_is_dominant);
}

TEST(AnswerQueryTest, RejectsNonFiniteMargin) {
  EXPECT_FALSE(
      AnswerQuery({kB, kF, 0.3, 40, 2},
                  std::numeric_limits<double>::infinity())
          .ok());
}

TEST(AnswerFromKernelTest, DominanceTracksTheTransformativeRegime) {
  game::kernel::DeviceAnswerKernel kernel;
  kernel.effectiveness = game::DeviceEffectiveness::kTransformative;
  kernel.min_frequency = 0.25;
  kernel.min_penalty = 12.5;
  kernel.zero_penalty_frequency = 0.6;
  QueryAnswer answer = AnswerFromKernel(kernel);
  EXPECT_TRUE(answer.honest_is_dominant);
  EXPECT_EQ(answer.min_frequency, 0.25);
  EXPECT_EQ(answer.min_penalty, 12.5);
  EXPECT_EQ(answer.zero_penalty_frequency, 0.6);
  kernel.effectiveness = game::DeviceEffectiveness::kEffective;
  EXPECT_FALSE(AnswerFromKernel(kernel).honest_is_dominant);
}

TEST(QueryServiceTest, CreateRejectsBadConfigs) {
  QueryServiceConfig config;
  config.margin = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(QueryService::Create(config).ok());
  config = QueryServiceConfig{};
  config.threads = -1;
  EXPECT_FALSE(QueryService::Create(config).ok());
  config = QueryServiceConfig{};
  config.cache.shards = 0;
  EXPECT_FALSE(QueryService::Create(config).ok());
}

TEST(QueryServiceTest, ServedFrequenciesStayInTheUnitInterval) {
  // The designer clamp (core::MechanismDesigner::MinFrequency) is the
  // serving tier's guarantee; exercise the extremes that used to escape
  // it: enormous penalties (negative critical frequency) and P = 0.
  QueryService service = std::move(QueryService::Create({}).value());
  for (double p : {0.0, 1.0, 1e6, 1e15}) {
    QueryAnswer answer = service.Answer({kB, kF, 0.5, p, 2}).value();
    EXPECT_GE(answer.min_frequency, 0.0);
    EXPECT_LE(answer.min_frequency, 1.0);
    EXPECT_GE(answer.zero_penalty_frequency, 0.0);
    EXPECT_LE(answer.zero_penalty_frequency, 1.0);
  }
}

TEST(DerivationTest, ExplainsTheServedAnswerDeterministically) {
  QueryService service = std::move(QueryService::Create({}).value());
  QueryRequest request{kB, kF, 0.3, 40, 5};
  Derivation derivation = service.Explain(request).value();
  ASSERT_EQ(derivation.steps.size(), 5u);
  QueryAnswer answer = service.Answer(request).value();
  EXPECT_EQ(derivation.honest_is_dominant, answer.honest_is_dominant);
  // The verdict restates the regime and mentions the party count.
  EXPECT_NE(derivation.conclusion.find("transformative"), std::string::npos);
  EXPECT_NE(derivation.conclusion.find("5 parties"), std::string::npos);
  // Deterministic: two builds render byte-identically.
  EXPECT_EQ(DerivationToText(derivation),
            DerivationToText(service.Explain(request).value()));
}

TEST(DerivationTest, RegimeLineMatchesTheClassificationEverywhere) {
  QueryService service = std::move(QueryService::Create({}).value());
  for (double f : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    for (double p : {0.0, 10.0, 40.0}) {
      QueryRequest request{kB, kF, f, p, 2};
      QueryAnswer answer = service.Answer(request).value();
      Derivation derivation = service.Explain(request).value();
      switch (answer.effectiveness) {
        case game::DeviceEffectiveness::kTransformative:
        case game::DeviceEffectiveness::kHighlyEffective:
          EXPECT_NE(derivation.steps[1].inequality.find(" > "),
                    std::string::npos);
          break;
        case game::DeviceEffectiveness::kEffective:
          EXPECT_NE(derivation.steps[1].inequality.find(" = "),
                    std::string::npos);
          break;
        case game::DeviceEffectiveness::kIneffective:
          EXPECT_NE(derivation.steps[1].inequality.find(" < "),
                    std::string::npos);
          break;
      }
    }
  }
}

TEST(DerivationTest, NeverAuditedStepSaysSo) {
  QueryService service = std::move(QueryService::Create({}).value());
  Derivation derivation = service.Explain({kB, kF, 0.0, 40, 2}).value();
  EXPECT_NE(derivation.steps[2].conclusion.find("never audited"),
            std::string::npos);
}

}  // namespace
}  // namespace hsis::serve

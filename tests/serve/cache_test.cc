#include "serve/cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serve/query.h"

namespace hsis::serve {
namespace {

QueryRequest Point(double benefit, double cheat_gain, double frequency,
                   double penalty, int n = 2) {
  return QueryRequest{benefit, cheat_gain, frequency, penalty, n};
}

QueryAnswer Tagged(double tag) {
  QueryAnswer answer;
  answer.min_penalty = tag;
  return answer;
}

TEST(CacheConfigTest, CreateRejectsBadConfigs) {
  CacheConfig config;
  config.quantum = -1;
  EXPECT_FALSE(AnswerCache::Create(config).ok());
  config = CacheConfig{};
  config.quantum = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AnswerCache::Create(config).ok());
  config = CacheConfig{};
  config.shards = 0;
  EXPECT_FALSE(AnswerCache::Create(config).ok());
}

TEST(QueryKeyTest, ExactModeKeysOnBitPatterns) {
  QueryRequest a = Point(10, 25, 0.3, 40);
  EXPECT_EQ(MakeQueryKey(a, 0), MakeQueryKey(a, 0));
  // The next representable frequency is a different point.
  QueryRequest b = a;
  b.frequency = std::nextafter(b.frequency, 1.0);
  EXPECT_FALSE(MakeQueryKey(a, 0) == MakeQueryKey(b, 0));
  // The party count is part of the key.
  QueryRequest c = a;
  c.n = 3;
  EXPECT_FALSE(MakeQueryKey(a, 0) == MakeQueryKey(c, 0));
  // Exact mode never rewrites the request.
  QueryRequest snapped = SnapRequest(a, 0);
  EXPECT_EQ(snapped.benefit, a.benefit);
  EXPECT_EQ(snapped.frequency, a.frequency);
}

TEST(QueryKeyTest, BothZeroSpellingsShareAKey) {
  QueryRequest plus = Point(0.0, 25, 0.3, 40);
  QueryRequest minus = plus;
  minus.benefit = -0.0;  // valid (B >= 0) but a distinct bit pattern
  EXPECT_TRUE(MakeQueryKey(plus, 0) == MakeQueryKey(minus, 0));
}

TEST(QueryKeyTest, QuantizedModeCollapsesNearbyPoints) {
  const double kQuantum = 1e-3;
  QueryRequest a = Point(10, 25, 0.3, 40);
  QueryRequest b = Point(10 + 4e-4, 25 - 4e-4, 0.3 + 4e-4, 40 - 4e-4);
  EXPECT_TRUE(MakeQueryKey(a, kQuantum) == MakeQueryKey(b, kQuantum));
  // ...but points a full quantum apart stay distinct.
  QueryRequest c = Point(10 + 2e-3, 25, 0.3, 40);
  EXPECT_FALSE(MakeQueryKey(a, kQuantum) == MakeQueryKey(c, kQuantum));
  // Snapping lands every member of the class on the same canonical
  // request, so the cached answer is arrival-order independent.
  QueryRequest snap_a = SnapRequest(a, kQuantum);
  QueryRequest snap_b = SnapRequest(b, kQuantum);
  EXPECT_EQ(snap_a.benefit, snap_b.benefit);
  EXPECT_EQ(snap_a.cheat_gain, snap_b.cheat_gain);
  EXPECT_EQ(snap_a.frequency, snap_b.frequency);
  EXPECT_EQ(snap_a.penalty, snap_b.penalty);
}

TEST(QueryKeyTest, SnappingKeepsRequestsServable) {
  const double kQuantum = 0.5;
  // Snapping would collapse F onto B; the canonical point must keep
  // the F > B gap open.
  QueryRequest tight = Point(10.1, 10.3, 0.99, 40);
  QueryRequest snapped = SnapRequest(tight, kQuantum);
  EXPECT_TRUE(ValidateQueryRequest(snapped).ok());
  EXPECT_GT(snapped.cheat_gain, snapped.benefit);
  // Frequencies snap back into [0, 1].
  QueryRequest edge = Point(10, 25, 0.9, 40);
  EXPECT_LE(SnapRequest(edge, 0.4).frequency, 1.0);
}

TEST(AnswerCacheTest, CountsHitsAndMisses) {
  AnswerCache cache = std::move(AnswerCache::Create({}).value());
  QueryKey key = MakeQueryKey(Point(10, 25, 0.3, 40), 0);
  QueryAnswer out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, Tagged(25.0));
  EXPECT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.min_penalty, 25.0);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(AnswerCacheTest, EvictsOldestFirstWhenFull) {
  CacheConfig config;
  config.shards = 1;  // single shard so the FIFO order is global
  config.capacity_per_shard = 2;
  AnswerCache cache = std::move(AnswerCache::Create(config).value());
  QueryKey k1 = MakeQueryKey(Point(1, 2, 0.1, 1), 0);
  QueryKey k2 = MakeQueryKey(Point(2, 3, 0.2, 2), 0);
  QueryKey k3 = MakeQueryKey(Point(3, 4, 0.3, 3), 0);
  cache.Insert(k1, Tagged(1));
  cache.Insert(k2, Tagged(2));
  cache.Insert(k3, Tagged(3));  // evicts k1
  QueryAnswer out;
  EXPECT_FALSE(cache.Lookup(k1, &out));
  EXPECT_TRUE(cache.Lookup(k2, &out));
  EXPECT_TRUE(cache.Lookup(k3, &out));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(AnswerCacheTest, ReinsertRefreshesWithoutEvicting) {
  CacheConfig config;
  config.shards = 1;
  config.capacity_per_shard = 2;
  AnswerCache cache = std::move(AnswerCache::Create(config).value());
  QueryKey k1 = MakeQueryKey(Point(1, 2, 0.1, 1), 0);
  QueryKey k2 = MakeQueryKey(Point(2, 3, 0.2, 2), 0);
  cache.Insert(k1, Tagged(1));
  cache.Insert(k2, Tagged(2));
  cache.Insert(k1, Tagged(100));  // overwrite, no capacity pressure
  QueryAnswer out;
  EXPECT_TRUE(cache.Lookup(k1, &out));
  EXPECT_EQ(out.min_penalty, 100.0);
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

TEST(AnswerCacheTest, ClearDropsEntriesButKeepsCounters) {
  AnswerCache cache = std::move(AnswerCache::Create({}).value());
  QueryKey key = MakeQueryKey(Point(10, 25, 0.3, 40), 0);
  cache.Insert(key, Tagged(1));
  QueryAnswer out;
  EXPECT_TRUE(cache.Lookup(key, &out));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(key, &out));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(AnswerCacheTest, UnboundedModeNeverEvicts) {
  CacheConfig config;
  config.shards = 2;
  config.capacity_per_shard = 0;  // unbounded
  AnswerCache cache = std::move(AnswerCache::Create(config).value());
  for (int i = 0; i < 1000; ++i) {
    cache.Insert(MakeQueryKey(Point(i, i + 1, 0.5, i), 0), Tagged(i));
  }
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1000u);
}

}  // namespace
}  // namespace hsis::serve
